//! The fault-degradation experiment: delivered throughput versus injected
//! read-fault rate, for the embedded and separate I/O designs, measured on
//! the real pipeline and predicted by the fault-aware DES.
//!
//! Two claims are exercised. First, under *unrecoverable* per-CPI faults
//! the delivered throughput falls with the surviving-CPI fraction — the
//! real pipeline (flaky reads, `SkipCpi` policy) and the DES (random
//! per-CPI faults at the same rate) must agree on that fraction within the
//! documented tolerance band ([`TOLERANCE`]), since both draw faults
//! independently per CPI from their own seeded streams. Second, under
//! *recoverable* faults (cleared within the retry budget) the separate-I/O
//! design degrades more gracefully: its retries burn time on the dedicated
//! read task, where `iread` overlap hides them from the pipeline's critical
//! path, while the embedded design pays them inside the Doppler task.

use crate::config::{FailurePolicy, RetryPolicy, StapConfig};
use crate::desmodel::{DesExperiment, DesFaultModel, FaultSource};
use crate::io_strategy::{IoStrategy, TailStructure};
use crate::system::StapSystem;
use stap_kernels::cube::CubeDims;
use stap_model::machines::MachineModel;
use stap_pfs::{Fault, FaultPlan, FaultWindow};

/// Documented tolerance band on the delivered-throughput fraction: the
/// real run and the DES draw per-CPI faults from different seeded streams,
/// so their surviving fractions differ by binomial noise — at 32 CPIs and
/// rates up to 0.3 the standard deviation is below 0.09, and the suite
/// asserts agreement within this band.
pub const TOLERANCE: f64 = 0.18;

/// One rate point of the degradation curve.
#[derive(Debug, Clone)]
pub struct DegradationRow {
    /// Injected per-CPI read-fault probability.
    pub rate: f64,
    /// Real pipeline, embedded I/O: delivered fraction of the fault-free
    /// delivered throughput.
    pub real_embedded: f64,
    /// Real pipeline, separate I/O task: delivered fraction.
    pub real_separate: f64,
    /// DES prediction, embedded I/O: delivered fraction.
    pub des_embedded: f64,
    /// DES prediction, separate I/O task: delivered fraction.
    pub des_separate: f64,
}

/// Recoverable-fault slot-throughput ratios (DES): how much of the
/// fault-free throughput each design keeps when every faulted CPI recovers
/// within the retry budget.
#[derive(Debug, Clone)]
pub struct RecoverableRow {
    /// Injected per-CPI fault probability.
    pub rate: f64,
    /// Embedded design: throughput fraction of fault-free.
    pub embedded: f64,
    /// Separate-I/O design: throughput fraction of fault-free.
    pub separate: f64,
}

/// The small real-mode configuration used for all degradation cells.
fn real_config(io: IoStrategy, cpis: u64) -> StapConfig {
    StapConfig {
        dims: CubeDims::new(16, 4, 64),
        io,
        cpis,
        warmup: 2,
        fanout: 2,
        ..StapConfig::default()
    }
}

/// Measures the real pipeline's delivered fraction at `rate`: flaky reads
/// on every CPI file, single attempt (no retries), `SkipCpi` drops.
fn real_fraction(io: IoStrategy, rate: f64, cpis: u64, seed: u64) -> f64 {
    let mut cfg = real_config(io, cpis);
    if rate > 0.0 {
        let mut plan = FaultPlan::new(seed);
        for slot in 0..cfg.fanout {
            plan = plan.with(Fault::Flaky {
                file: StapConfig::file_name(slot),
                p: rate,
                window: FaultWindow::always(),
            });
        }
        cfg.fault_plan = Some(plan);
        cfg.failure_policy =
            FailurePolicy::SkipCpi { retry: RetryPolicy::none(), max_consecutive: cpis as u32 };
    }
    let out = StapSystem::prepare(cfg).expect("prepare").run().expect("degraded run");
    let steady = cpis - out.warmup;
    let dropped = out.dropped.iter().filter(|g| g.cpi >= out.warmup).count() as u64;
    (steady - dropped.min(steady)) as f64 / steady as f64
}

/// DES cell at paper scale with the given fault model (None = fault-free).
fn des_cell(io: IoStrategy, faults: Option<DesFaultModel>) -> crate::desmodel::DesResult {
    let mut exp = DesExperiment::new(MachineModel::paragon(64), io, TailStructure::Split, 50);
    exp.faults = faults;
    exp.run()
}

/// DES delivered fraction at `rate` under unrecoverable per-CPI faults.
fn des_fraction(io: IoStrategy, rate: f64, seed: u64) -> f64 {
    if rate <= 0.0 {
        return 1.0;
    }
    let clean = des_cell(io, None);
    let faulted = des_cell(
        io,
        Some(DesFaultModel::transient(
            FaultSource::Random { rate, seed },
            u32::MAX,
            0.002,
            1,
            0.002,
        )),
    );
    faulted.delivered_throughput / clean.delivered_throughput
}

/// The degradation curve over `rates` (each in `[0, 1]`).
pub fn fault_degradation(rates: &[f64]) -> Vec<DegradationRow> {
    const CPIS: u64 = 32;
    const SEED: u64 = 1801;
    rates
        .iter()
        .map(|&rate| DegradationRow {
            rate,
            real_embedded: real_fraction(IoStrategy::Embedded, rate, CPIS, SEED),
            real_separate: real_fraction(IoStrategy::SeparateTask, rate, CPIS, SEED),
            des_embedded: des_fraction(IoStrategy::Embedded, rate, SEED),
            des_separate: des_fraction(IoStrategy::SeparateTask, rate, SEED),
        })
        .collect()
}

/// DES slot-throughput ratios under *recoverable* faults: every faulted
/// CPI fails once, then the retry succeeds.
pub fn recoverable_degradation(rates: &[f64]) -> Vec<RecoverableRow> {
    let cell = |io: IoStrategy, rate: f64| -> f64 {
        if rate <= 0.0 {
            return 1.0;
        }
        let clean = des_cell(io, None);
        let faulted = des_cell(
            io,
            Some(DesFaultModel::transient(
                FaultSource::Random { rate, seed: 1801 },
                1,
                0.01,
                2,
                0.01,
            )),
        );
        faulted.throughput / clean.throughput
    };
    rates
        .iter()
        .map(|&rate| RecoverableRow {
            rate,
            embedded: cell(IoStrategy::Embedded, rate),
            separate: cell(IoStrategy::SeparateTask, rate),
        })
        .collect()
}

/// Renders the `results/fault_degradation.txt` artifact.
pub fn render_degradation(rows: &[DegradationRow], recoverable: &[RecoverableRow]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "Fault degradation: delivered throughput vs injected read-fault rate");
    let _ = writeln!(s, "(fractions of the fault-free delivered throughput)");
    let _ = writeln!(s);
    let _ = writeln!(s, "Unrecoverable per-CPI faults, SkipCpi policy:");
    let _ = writeln!(s, "  real pipeline: flaky reads at p = rate, single attempt, drops recorded");
    let _ = writeln!(s, "  DES (Paragon sf=64, 50 nodes): random per-CPI faults at the same rate");
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "{:<8}{:>12}{:>12}{:>12}{:>12}",
        "rate", "real emb", "real sep", "DES emb", "DES sep"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8.2}{:>12.3}{:>12.3}{:>12.3}{:>12.3}",
            r.rate, r.real_embedded, r.real_separate, r.des_embedded, r.des_separate
        );
    }
    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "Tolerance band: |real - DES| <= {TOLERANCE} per cell (independent seeded draws)."
    );
    let _ = writeln!(s);
    let _ = writeln!(s, "Recoverable faults (cleared within the retry budget), DES prediction:");
    let _ = writeln!(s, "  retry time is paid on the read-bearing task; the separate-I/O design");
    let _ = writeln!(s, "  hides it behind iread overlap, the embedded design pays it in Doppler.");
    let _ = writeln!(s);
    let _ = writeln!(s, "{:<8}{:>12}{:>12}", "rate", "embedded", "separate");
    for r in recoverable {
        let _ = writeln!(s, "{:<8.2}{:>12.3}{:>12.3}", r.rate, r.embedded, r.separate);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn des_conformance_within_the_documented_band() {
        // The conformance suite: DES-predicted delivered fraction vs the
        // real pipeline's measured degradation, per strategy and rate.
        for rate in [0.1, 0.3] {
            for io in [IoStrategy::Embedded, IoStrategy::SeparateTask] {
                let real = real_fraction(io, rate, 32, 1801);
                let des = des_fraction(io, rate, 1801);
                assert!(
                    (real - des).abs() <= TOLERANCE,
                    "{io:?} rate {rate}: real {real:.3} vs DES {des:.3} outside band {TOLERANCE}"
                );
                assert!(real < 1.0, "{io:?} rate {rate}: faults visibly degrade the real run");
                assert!(des < 1.0);
            }
        }
    }

    #[test]
    fn fault_free_row_is_flat() {
        let rows = fault_degradation(&[0.0]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(
            (r.real_embedded, r.real_separate, r.des_embedded, r.des_separate),
            (1.0, 1.0, 1.0, 1.0)
        );
    }

    #[test]
    fn separate_io_degrades_no_worse_under_recoverable_faults() {
        for r in recoverable_degradation(&[0.1, 0.3]) {
            assert!(
                r.separate >= r.embedded - 1e-9,
                "rate {}: separate {:.4} vs embedded {:.4}",
                r.rate,
                r.separate,
                r.embedded
            );
            assert!(r.embedded <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn render_includes_every_rate_and_the_band() {
        let rows = fault_degradation(&[0.0]);
        let rec = recoverable_degradation(&[0.0]);
        let text = render_degradation(&rows, &rec);
        assert!(text.contains("0.00"));
        assert!(text.contains("Tolerance band"));
        assert!(text.contains("Recoverable"));
    }
}
