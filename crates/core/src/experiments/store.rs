//! The smart-storage-tier study behind `results/store_cache.txt`.
//!
//! The paper tunes two knobs against the I/O bottleneck: the stripe
//! factor and where the read lives (embedded vs separate task). The
//! storage tier adds two more — a server-side read cache (`cached:{MB}`)
//! and server-issued read-ahead (`prefetch:{D}`) — and this module maps
//! where each one wins. The sweep prices every strategy through the DES,
//! which shares its `stap_model::cachetier` cost model with the planner's
//! `plan --io auto` search, so the crossover shown here is exactly the
//! one the planner navigates. The second half is the tier's correctness
//! claim, executed for real: cached and out-of-core runs produce
//! bit-identical detections to a plain resident run, with the
//! out-of-core scratch provably bounded by the footprint meter.

use super::ingest::detection_keys;
use crate::config::StapConfig;
use crate::desmodel::{DesExperiment, DesResult};
use crate::io_strategy::{IoStrategy, TailStructure};
use crate::system::StapSystem;
use stap_model::cachetier::{CacheTierModel, STAGING_FANOUT};
use stap_model::machines::MachineModel;
use stap_model::workload::ShapeParams;
use stap_pipeline::ClockSpec;
use stap_store::CubeAccess;
use std::fmt::Write as _;

/// Compute nodes for every sweep cell — the paper's largest configuration,
/// where the stripe servers (not the nodes) are the binding resource.
const SWEEP_NODES: usize = 100;

/// The strategy menu the sweep scores (the same one `plan --io auto`
/// searches, minus the separate-I/O design already covered by Table 2).
fn sweep_ios() -> Vec<IoStrategy> {
    vec![
        IoStrategy::Embedded,
        IoStrategy::Cached { mb: 32 },
        IoStrategy::Cached { mb: 64 },
        IoStrategy::Cached { mb: 128 },
        IoStrategy::Prefetch { depth: 2 },
        IoStrategy::Prefetch { depth: 4 },
    ]
}

/// Steady-state cache temperature of a strategy over the paper-default
/// cube: `warm` means the `STAGING_FANOUT`-file working set fits and every
/// steady read hits; `cold` means reads still hit the stripe servers
/// (overlapped by server-side read-ahead).
fn cache_state(io: IoStrategy, cube_bytes: usize) -> &'static str {
    match io {
        IoStrategy::Cached { mb } => {
            if CacheTierModel::cached((mb as usize) << 20, cube_bytes, STAGING_FANOUT).warm {
                "warm"
            } else {
                "cold"
            }
        }
        IoStrategy::Prefetch { .. } => "cold",
        IoStrategy::Embedded | IoStrategy::SeparateTask => "-",
    }
}

/// One DES cell of the sweep.
fn cell(machine: MachineModel, io: IoStrategy) -> DesResult {
    DesExperiment::new(machine, io, TailStructure::Split, SWEEP_NODES).run()
}

/// Runs the full machine x strategy sweep.
fn sweep() -> Vec<(IoStrategy, DesResult)> {
    let mut out = Vec::new();
    for machine in [MachineModel::paragon(16), MachineModel::paragon(64), MachineModel::sp()] {
        for io in sweep_ios() {
            out.push((io, cell(machine.clone(), io)));
        }
    }
    out
}

/// Renders the full report: the DES strategy sweep and the executed
/// resident / cached / out-of-core parity check.
pub fn store_cache_report() -> String {
    let cube_bytes = ShapeParams::paper_default().cube_bytes();
    let mut out = String::new();
    let _ = writeln!(out, "Smart storage tier: cache size x read-ahead x stripe factor");
    let _ = writeln!(
        out,
        "DES sweep at {SWEEP_NODES} compute nodes, paper-default {} MiB cube;",
        cube_bytes >> 20
    );
    let _ = writeln!(out, "every strategy is priced by the same stap-model cachetier model");
    let _ = writeln!(out, "the planner searches under `ppstap plan --io auto`.");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<28}{:<14}{:>6}{:>13}{:>12}{:>9}",
        "machine", "io", "cache", "tput(CPI/s)", "latency(s)", "io-util"
    );
    for (io, r) in sweep() {
        let _ = writeln!(
            out,
            "{:<28}{:<14}{:>6}{:>13.3}{:>12.4}{:>9.3}",
            r.machine,
            io.describe(),
            cache_state(io, cube_bytes),
            r.throughput,
            r.latency,
            r.io_utilization
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Reading: the cache capacity threshold sits at the staging working");
    let _ = writeln!(
        out,
        "set ({STAGING_FANOUT} files x {} MiB = {} MiB): cached:32 never warms and",
        cube_bytes >> 20,
        (STAGING_FANOUT * cube_bytes) >> 20
    );
    let _ = writeln!(out, "behaves like read-ahead, while cached:64 and up serve steady-state");
    let _ = writeln!(out, "reads from server memory. Where the client overlaps reads anyway");
    let _ = writeln!(out, "(Paragon iread, sf=64) the warm cache only re-prices a read that");
    let _ = writeln!(out, "compute already hides, so classic embedded I/O keeps the front.");
    let _ = writeln!(out, "The tier wins where the paper's machines cannot hide the read:");
    let _ = writeln!(out, "on the narrow sf=16 stripe the warm cache lifts throughput past");
    let _ = writeln!(out, "the stripe-server ceiling, and on the SP (synchronous PIOFS, no");
    let _ = writeln!(out, "iread) both caching and server read-ahead beat the serialized");
    let _ = writeln!(out, "read+compute front task — with nothing left to restripe, the");
    let _ = writeln!(out, "cache is the only strategy that removes the read from the path.");
    let _ = writeln!(out);

    // Executed parity: the same tiny configuration through three data
    // planes — plain resident, warm server cache, and out-of-core chunks
    // under a hard scratch bound.
    let resident = StapConfig::default();
    let cached = StapConfig { io: IoStrategy::Cached { mb: 8 }, ..resident.clone() };
    // An 8-row chunk keeps the provable scratch bound at 5.3x under the
    // cube: genuinely out-of-core, not resident by another name.
    let ooc = StapConfig { access: CubeAccess::OutOfCore { chunk_rows: 8 }, ..resident.clone() };

    let run = |cfg: StapConfig| {
        let sys = StapSystem::prepare(cfg).expect("system prepares");
        sys.run_with_clock(ClockSpec::virtual_default()).expect("run completes")
    };
    let base = run(resident.clone());
    let cached_out = run(cached);
    let ooc_out = run(ooc.clone());

    let identical = detection_keys(&base) == detection_keys(&cached_out)
        && detection_keys(&base) == detection_keys(&ooc_out);
    let detections: usize = base.reports.iter().map(|r| r.detections.len()).sum();
    let _ = writeln!(
        out,
        "Executed parity, resident vs cached:8 vs out-of-core ({} CPIs, {} detections):",
        resident.cpis, detections
    );
    let _ = writeln!(
        out,
        "  bit-identical detections: {}",
        if identical { "yes" } else { "NO — storage tier corrupts data" }
    );
    let st = cached_out.store.expect("cached run routes through the tier");
    let _ = writeln!(
        out,
        "  cache hit-rate: {:.1}% ({} hits / {} lookups, {} inserts, {} evictions)",
        100.0 * st.hit_rate,
        st.hits,
        st.hits + st.misses,
        st.inserts,
        st.evictions
    );
    let ooc_st = ooc_out.store.expect("out-of-core run routes through the tier");
    let (peak, bound) = ooc_st.footprint.expect("out-of-core run meters its scratch");
    let cube = ooc.dims.bytes() as u64;
    let _ = writeln!(
        out,
        "  ooc footprint: peak {peak} B <= bound {bound} B; cube {cube} B = {:.1}x the bound",
        cube as f64 / bound as f64
    );
    let _ = writeln!(out, "The tier is invisible to detections; only where the staging bytes");
    let _ = writeln!(out, "live (server cache, bounded chunks, or node memory) changes.");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Best throughput among cells of `machine` satisfying `pick`.
    fn best(cells: &[(IoStrategy, DesResult)], machine: &str, pick: fn(IoStrategy) -> bool) -> f64 {
        cells
            .iter()
            .filter(|(io, r)| r.machine.contains(machine) && pick(*io))
            .map(|(_, r)| r.throughput)
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn crossover_cache_wins_without_overlap_and_loses_to_wide_iread() {
        let cells = sweep();
        let warm = |io: IoStrategy| matches!(io, IoStrategy::Cached { mb } if mb >= 64);
        let classic = |io: IoStrategy| io == IoStrategy::Embedded;
        // SP: no iread, so the serialized read+compute front loses to the
        // warm cache outright.
        assert!(
            best(&cells, "IBM SP", warm) > 1.05 * best(&cells, "IBM SP", classic),
            "warm cache must beat the SP's synchronous embedded read"
        );
        // Narrow Paragon stripe: 100 nodes outrun 16 stripe servers; the
        // warm cache lifts the ceiling the paper measured.
        assert!(
            best(&cells, "sf=16", warm) > 1.05 * best(&cells, "sf=16", classic),
            "warm cache must lift the sf=16 stripe-server ceiling"
        );
        // Wide stripe with iread: the read is already hidden, so classic
        // embedded I/O stays at least competitive (the crossover).
        assert!(
            best(&cells, "sf=64", classic) > 0.95 * best(&cells, "sf=64", warm),
            "classic embedded I/O must stay competitive once iread hides the read"
        );
    }

    #[test]
    fn undersized_cache_prices_like_prefetch() {
        let cube = ShapeParams::paper_default().cube_bytes();
        assert_eq!(cache_state(IoStrategy::Cached { mb: 32 }, cube), "cold");
        assert_eq!(cache_state(IoStrategy::Cached { mb: 64 }, cube), "warm");
        let cold = cell(MachineModel::sp(), IoStrategy::Cached { mb: 32 });
        let ra = cell(MachineModel::sp(), IoStrategy::Prefetch { depth: 2 });
        let ratio = cold.throughput / ra.throughput;
        assert!((0.95..1.05).contains(&ratio), "cold cache == read-ahead, got ratio {ratio}");
    }

    #[test]
    fn report_confirms_parity_and_bounded_footprint() {
        let r = store_cache_report();
        assert!(r.contains("bit-identical detections: yes"), "parity must hold:\n{r}");
        assert!(r.contains("cache hit-rate:"), "hit-rate line present:\n{r}");
        assert!(r.contains("ooc footprint: peak"), "footprint line present:\n{r}");
        for io in ["cached:32", "cached:64", "cached:128", "prefetch:2", "prefetch:4"] {
            assert!(r.contains(io), "strategy {io} missing from the sweep:\n{r}");
        }
    }
}
