//! Plain-text rendering of the reproduced tables and bar-chart figures,
//! laid out like the paper's.

use crate::desmodel::DesResult;
use crate::experiments::tables::{Fig8Data, Table, Table4};
use std::fmt::Write as _;

/// Renders one grid table in the paper's layout: one block per node case,
/// one column per machine, rows = per-task (nodes, time) pairs, then
/// throughput and latency.
pub fn render_table(t: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", t.title);
    let machines = t.machines();
    for (case_idx, &case) in t.cases.iter().enumerate() {
        let cell0 = &t.cells[0][case_idx];
        let _ = writeln!(out, "\ncase {}: total number of compute nodes = {}", case_idx + 1, case);
        // Header.
        let _ = write!(out, "{:<16}", "task");
        for m in &machines {
            let _ = write!(out, "{:>28}", truncate(m, 27));
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<16}", "");
        for _ in &machines {
            let _ = write!(out, "{:>16}{:>12}", "nodes", "T_i (s)");
        }
        let _ = writeln!(out);
        // Task rows (all machines share the task list).
        for row_idx in 0..cell0.tasks.len() {
            let _ = write!(out, "{:<16}", cell0.tasks[row_idx].label);
            for (m_idx, _) in machines.iter().enumerate() {
                let task = &t.cells[m_idx][case_idx].tasks[row_idx];
                let _ = write!(out, "{:>16}{:>12.4}", task.nodes, task.time);
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<16}", "throughput");
        for (m_idx, _) in machines.iter().enumerate() {
            let _ = write!(out, "{:>28.3}", t.cells[m_idx][case_idx].throughput);
        }
        let _ = writeln!(out, "  (CPIs/s)");
        let _ = write!(out, "{:<16}", "latency");
        for (m_idx, _) in machines.iter().enumerate() {
            let _ = write!(out, "{:>28.4}", t.cells[m_idx][case_idx].latency);
        }
        let _ = writeln!(out, "  (s)");
    }
    out
}

/// Renders the bar-chart "figure" view of a grid (Figures 5/6/7): ASCII
/// bars of throughput and latency per machine and node case.
pub fn render_figure(title: &str, t: &Table) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let tput_max = grid_max(t, |c| c.throughput);
    let lat_max = grid_max(t, |c| c.latency);
    for (m_idx, machine) in t.machines().iter().enumerate() {
        let _ = writeln!(out, "\n{machine}");
        for (c_idx, &case) in t.cases.iter().enumerate() {
            let cell = &t.cells[m_idx][c_idx];
            let _ = writeln!(
                out,
                "  {case:>4} nodes  throughput {:>8.3} |{}",
                cell.throughput,
                bar(cell.throughput, tput_max, 36)
            );
            let _ = writeln!(
                out,
                "              latency    {:>8.4} |{}",
                cell.latency,
                bar(cell.latency, lat_max, 36)
            );
        }
    }
    out
}

/// Renders Table 4 (percentage latency improvement).
pub fn render_table4(t: &Table4) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4. Percentage of latency improvement when the pulse compression and CFAR tasks are combined into a single task."
    );
    let _ = write!(out, "{:<30}", "machine");
    for &c in &t.cases {
        let _ = write!(out, "{:>12}", format!("{c} nodes"));
    }
    let _ = writeln!(out);
    for (m, row) in t.machines.iter().zip(&t.improvement_pct) {
        let _ = write!(out, "{:<30}", truncate(m, 29));
        for v in row {
            let _ = write!(out, "{:>11.1}%", v);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders Figure 8: the with/without-combining comparison.
pub fn render_fig8(f: &Fig8Data) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8. Performance comparison of the pipeline system with and without task combining."
    );
    let tput_max =
        grid_max(&f.split, |c| c.throughput).max(grid_max(&f.combined, |c| c.throughput));
    let lat_max = grid_max(&f.split, |c| c.latency).max(grid_max(&f.combined, |c| c.latency));
    for (m_idx, machine) in f.split.machines().iter().enumerate() {
        let _ = writeln!(out, "\n{machine}");
        for (c_idx, &case) in f.split.cases.iter().enumerate() {
            let s = &f.split.cells[m_idx][c_idx];
            let c = &f.combined.cells[m_idx][c_idx];
            let _ = writeln!(out, "  {case:>4} nodes:");
            let _ = writeln!(
                out,
                "    throughput  7 tasks {:>8.3} |{}",
                s.throughput,
                bar(s.throughput, tput_max, 32)
            );
            let _ = writeln!(
                out,
                "                6 tasks {:>8.3} |{}",
                c.throughput,
                bar(c.throughput, tput_max, 32)
            );
            let _ = writeln!(
                out,
                "    latency     7 tasks {:>8.4} |{}",
                s.latency,
                bar(s.latency, lat_max, 32)
            );
            let _ = writeln!(
                out,
                "                6 tasks {:>8.4} |{}",
                c.latency,
                bar(c.latency, lat_max, 32)
            );
        }
    }
    out
}

fn grid_max(t: &Table, f: impl Fn(&DesResult) -> f64) -> f64 {
    t.cells.iter().flat_map(|row| row.iter()).map(f).fold(0.0, f64::max)
}

fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

/// Renders the `phases` section of a machine-readable run report (see
/// `StapRunOutput::run_report_json`) back into the paper-style per-stage
/// phase table, so archived reports can be summarized without re-running.
///
/// Fleet run reports (`ppstap serve --json`) carry a root `missions` array
/// instead; those render as the per-mission fleet table.
pub fn render_phase_report(report_json: &str) -> Result<String, String> {
    let root = stap_trace::json::parse(report_json)?;
    if let Some(missions) = root.get("missions").and_then(|m| m.as_array()) {
        return render_mission_rows(missions);
    }
    let rows = root
        .get("phases")
        .and_then(|p| p.as_array())
        .ok_or_else(|| "report has no `phases` (or `missions`) array".to_string())?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16}{:>7}  {:<8}{:>8}{:>12}{:>12}",
        "task", "nodes", "phase", "count", "sum(s)", "mean(s)"
    );
    for row in rows {
        let str_of = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("phases row is missing string field `{k}`"))
        };
        let num_of = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("phases row is missing numeric field `{k}`"))
        };
        let (task, phase) = (str_of("task")?, str_of("phase")?);
        let (nodes, count, sum) = (num_of("nodes")?, num_of("count")?, num_of("sum")?);
        let mean = if count > 0.0 { sum / count } else { 0.0 };
        let _ = writeln!(
            out,
            "{:<16}{:>7}  {:<8}{:>8}{:>12.6}{:>12.6}",
            truncate(&task, 15),
            nodes as u64,
            phase,
            count as u64,
            sum,
            mean
        );
    }
    Ok(out)
}

/// Renders a fleet report's `missions` array as the per-mission table:
/// queue wait, plan, delivered throughput, drops, SLA verdict, outcome.
fn render_mission_rows(rows: &[stap_trace::json::Json]) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4}{:<12}{:>4}{:>9}{:>9}{:>9}{:>7}{:>6}  {:<10} {:<30}",
        "id", "mission", "pri", "wait(s)", "run(s)", "CPI/s", "drops", "sla", "outcome", "plan"
    );
    for row in rows {
        let str_of = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("missions row is missing string field `{k}`"))
        };
        let num_of = |k: &str| {
            row.get(k)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missions row is missing numeric field `{k}`"))
        };
        let sla = match row.get("sla") {
            None | Some(stap_trace::json::Json::Null) => "-",
            Some(v) => match v.get("met") {
                Some(stap_trace::json::Json::Bool(true)) => "met",
                _ => "MISS",
            },
        };
        let _ = writeln!(
            out,
            "{:<4}{:<12}{:>4}{:>9.3}{:>9.3}{:>9.3}{:>7}{:>6}  {:<10} {:<30}",
            num_of("mission")? as u64,
            truncate(&str_of("name")?, 11),
            num_of("priority")? as u64,
            num_of("queue_wait")?,
            num_of("end")? - num_of("start")?,
            num_of("throughput")?,
            num_of("drops")? as u64,
            sla,
            str_of("outcome")?,
            truncate(&str_of("plan")?, 30),
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desmodel::TaskRow;
    use stap_model::workload::TaskId;

    fn fake_result(machine: &str, tput: f64, lat: f64) -> DesResult {
        DesResult {
            machine: machine.to_string(),
            total_nodes: 10,
            tasks: vec![TaskRow {
                label: "Doppler filter".into(),
                id: TaskId::Doppler,
                nodes: 10,
                time: 1.0 / tput,
                phases: Default::default(),
            }],
            throughput: tput,
            latency: lat,
            io_utilization: 0.5,
            dropped: Vec::new(),
            retries: 0,
            delivered_throughput: tput,
        }
    }

    fn fake_table() -> Table {
        Table {
            title: "Table X.".into(),
            cells: vec![
                vec![fake_result("M1", 2.0, 1.0), fake_result("M1", 4.0, 0.5)],
                vec![fake_result("M2", 3.0, 0.8), fake_result("M2", 6.0, 0.4)],
            ],
            cases: vec![25, 50],
        }
    }

    #[test]
    fn table_rendering_contains_all_cells() {
        let s = render_table(&fake_table());
        assert!(s.contains("Table X."));
        assert!(s.contains("case 1: total number of compute nodes = 25"));
        assert!(s.contains("case 2: total number of compute nodes = 50"));
        assert!(s.contains("Doppler filter"));
        assert!(s.contains("throughput"));
        assert!(s.contains("latency"));
    }

    #[test]
    fn figure_bars_scale_with_value() {
        let s = render_figure("Figure Y.", &fake_table());
        assert!(s.contains("Figure Y."));
        // The 6.0-throughput bar must be the longest.
        let longest = s
            .lines()
            .filter(|l| l.contains("throughput"))
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .max()
            .unwrap();
        let six_line = s.lines().find(|l| l.contains("6.000")).expect("6.0 line present");
        assert_eq!(six_line.chars().filter(|&c| c == '#').count(), longest);
    }

    #[test]
    fn table4_rendering() {
        let t4 = Table4 {
            machines: vec!["M1".into()],
            cases: vec![25, 50],
            improvement_pct: vec![vec![9.3, 6.1]],
        };
        let s = render_table4(&t4);
        assert!(s.contains("9.3%"));
        assert!(s.contains("25 nodes"));
    }

    #[test]
    fn bar_clamps_and_handles_zero_max() {
        assert_eq!(bar(10.0, 5.0, 4), "####");
        assert_eq!(bar(1.0, 0.0, 4), "");
        assert_eq!(bar(0.0, 5.0, 4), "");
    }

    #[test]
    fn phase_report_renders_run_report_json() {
        let report = r#"{
            "phases": [
                {"stage": 0, "task": "Doppler filter", "nodes": 2, "phase": "read",
                 "count": 4, "sum": 0.008, "min": 0.001, "max": 0.003,
                 "p50": 0.002, "p99": 0.003},
                {"stage": 0, "task": "Doppler filter", "nodes": 2, "phase": "compute",
                 "count": 4, "sum": 0.040, "min": 0.009, "max": 0.011,
                 "p50": 0.010, "p99": 0.011}
            ]
        }"#;
        let table = render_phase_report(report).expect("valid report");
        assert!(table.contains("Doppler filter"));
        assert!(table.contains("read"));
        assert!(table.contains("0.010000"), "mean column missing: {table}");
        assert!(render_phase_report("{}").is_err());
        assert!(render_phase_report("not json").is_err());
    }

    #[test]
    fn phase_report_renders_fleet_mission_tables() {
        let report = r#"{
            "mode": "serve", "makespan": 4.0,
            "missions": [
                {"mission": 0, "name": "alpha", "priority": 2, "requested_nodes": 25,
                 "plan": "sf=64 embedded/split n=25", "submit": 0.0, "start": 0.5,
                 "end": 3.0, "queue_wait": 0.5, "read_contention": 2.0,
                 "throughput": 1.9, "latency": 0.55, "drops": 1, "retries": 0,
                 "sla": {"met": true, "bound": 0.6, "actual": 0.55},
                 "outcome": "done"},
                {"mission": 1, "name": "beta", "priority": 0, "requested_nodes": 25,
                 "plan": "sf=64 separate/split n=29", "submit": 0.0, "start": 3.0,
                 "end": 4.0, "queue_wait": 3.0, "read_contention": 1.0,
                 "throughput": 2.2, "latency": 0.40, "drops": 0, "retries": 0,
                 "sla": null, "outcome": "done"}
            ]
        }"#;
        let table = render_phase_report(report).expect("valid fleet report");
        assert!(table.contains("alpha") && table.contains("beta"), "{table}");
        assert!(table.contains("met"), "SLA verdict column: {table}");
        assert!(table.contains("sf=64 embedded/split"), "plan column: {table}");
        assert!(table.contains("queue") || table.contains("wait(s)"), "{table}");
        // A malformed mission row is a typed error, not a panic.
        let bad = r#"{"missions": [{"mission": 0}]}"#;
        assert!(render_phase_report(bad).unwrap_err().contains("missing"));
    }
}
