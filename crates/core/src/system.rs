//! Assembling and running the real STAP pipeline system.
//!
//! [`StapSystem::prepare`] stages the radar data: it mounts the configured
//! parallel file system, synthesizes `fanout` CPI cubes from the scene, and
//! writes them round-robin into the CPI files (the paper's radar-side
//! discipline). [`StapSystem::run`] then launches the pipeline — one thread
//! per node — and returns measured timings plus the detection reports.

use crate::config::{SourceSpec, StapConfig, StreamSettings, WatchdogPolicy};
use crate::io_strategy::{IoStrategy, TailStructure};
use crate::messages::Gap;
use crate::stages::adaptive::{BeamformStage, WeightStage};
use crate::stages::front::{DopplerStage, ReadStage};
use crate::stages::tail::{CfarStage, CombinedTailStage, PulseStage, ReportSink};
use crate::stages::{FaultStats, QualityTap, Roles, StapPlan};
use parking_lot::Mutex;
use stap_ingest::{
    BackpressurePolicy, CpiRing, FileSource, Frontend, FrontendConfig, FrontendReport, RingStats,
    StreamSource,
};
use stap_kernels::report::DetectionReport;
use stap_model::workload::{ShapeParams, StapWorkload, TaskId};
use stap_pfs::{IoCounters, OpenMode, Pfs};
use stap_pipeline::runner::{Pipeline, StageFactory};
use stap_pipeline::timing::PipelineReport;
use stap_pipeline::topology::{StageId, Topology};
use stap_pipeline::{ClockSpec, CpiSource, PipelineError, WatchdogSpec};
use stap_radar::CubeGenerator;
use stap_store::{CubeAccess, StoreConfig, StoreSource};
use std::sync::Arc;
use std::time::Duration;

/// What the streaming staging tier did during one run (absent for
/// file-backed runs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestReport {
    /// The backpressure policy in force.
    pub policy: BackpressurePolicy,
    /// Staging-ring counters (conservation-checked).
    pub ring: RingStats,
    /// The run-local frontend's report (None when the ring was attached
    /// by an external owner such as `stap-serve`).
    pub frontend: Option<FrontendReport>,
}

/// What the smart storage tier (`stap-store`) did during one run
/// (absent unless the run routed reads through the tier).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreReport {
    /// Reads served from the tier's cache.
    pub hits: u64,
    /// Reads that went through to the stripe servers.
    pub misses: u64,
    /// Cube extents inserted into the cache.
    pub inserts: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Inserts staged ahead of demand by the prefetcher.
    pub readaheads: u64,
    /// `hits / (hits + misses)` over this run (0 when idle).
    pub hit_rate: f64,
    /// Out-of-core scratch accounting as `(peak, bound)` bytes — present
    /// only for [`CubeAccess::OutOfCore`] runs.
    pub footprint: Option<(u64, u64)>,
}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct StapRunOutput {
    /// Measured per-stage, per-phase timing.
    pub timing: PipelineReport,
    /// One detection report per surviving CPI, ascending (dropped CPIs
    /// have no report — see `dropped`).
    pub reports: Vec<DetectionReport>,
    /// The pipeline's source stage (read task or Doppler).
    pub source: StageId,
    /// The pipeline's sink stage (CFAR or the combined tail).
    pub sink: StageId,
    /// CPIs dropped under the `SkipCpi` policy, ascending by CPI.
    pub dropped: Vec<Gap>,
    /// Total read retries across all nodes.
    pub retries: u64,
    /// CPIs the run pushed through (surviving + dropped).
    pub cpis: u64,
    /// Leading CPIs excluded from steady-state metrics.
    pub warmup: u64,
    /// File-system operation counters accumulated over the run.
    pub io: IoCounters,
    /// Staging-tier counters for stream-fed runs (None for file-fed).
    pub ingest: Option<IngestReport>,
    /// Storage-tier counters for runs routed through `stap-store`
    /// (cached/prefetch strategies or out-of-core access).
    pub store: Option<StoreReport>,
}

impl StapRunOutput {
    /// Measured steady-state throughput (CPIs/second), counting every CPI
    /// slot the sink turned over — including dropped ones.
    pub fn throughput(&self) -> f64 {
        self.timing.throughput(self.sink)
    }

    /// Steady-state throughput of *delivered* reports (CPIs/second): the
    /// slot rate scaled by the fraction of post-warmup CPIs that survived.
    pub fn delivered_throughput(&self) -> f64 {
        let steady = self.cpis.saturating_sub(self.warmup);
        if steady == 0 {
            return 0.0;
        }
        let dropped =
            (self.dropped.iter().filter(|g| g.cpi >= self.warmup).count() as u64).min(steady);
        self.throughput() * (steady - dropped) as f64 / steady as f64
    }

    /// Measured mean end-to-end latency (seconds).
    pub fn latency(&self) -> f64 {
        self.timing.latency(self.source, self.sink)
    }

    /// The machine-readable run report: headline metrics, file-system
    /// operation counters, and the full per-stage phase statistics (the
    /// same registry the `--trace text` table prints), as one JSON object.
    pub fn run_report_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"cpis\": {},\n  \"warmup\": {},\n", self.cpis, self.warmup));
        s.push_str(&format!(
            "  \"metrics\": {{\"throughput\": {:.9}, \"delivered_throughput\": {:.9}, \
             \"latency\": {:.9}, \"retries\": {}, \"dropped\": {}}},\n",
            self.throughput(),
            self.delivered_throughput(),
            self.latency(),
            self.retries,
            self.dropped.len()
        ));
        let io = &self.io;
        s.push_str(&format!(
            "  \"io\": {{\"sync_reads\": {}, \"cpi_reads\": {}, \"async_posts\": {}, \
             \"async_done\": {}, \"writes\": {}, \"bytes_read\": {}, \"bytes_written\": {}, \
             \"injected_failures\": {}}},\n",
            io.sync_reads,
            io.cpi_reads,
            io.async_posts,
            io.async_done,
            io.writes,
            io.bytes_read,
            io.bytes_written,
            io.injected_failures
        ));
        if let Some(ing) = &self.ingest {
            let fe = ing.frontend;
            s.push_str(&format!(
                "  \"ingest\": {{\"policy\": \"{}\", \"capacity\": {}, \"accepted\": {}, \
                 \"delivered\": {}, \"dropped\": {}, \"rejected\": {}, \"peak_depth\": {}, \
                 \"mean_occupancy\": {:.6}, \"frontend_pushed\": {}, \"closed_early\": {}}},\n",
                ing.policy.label(),
                ing.ring.capacity,
                ing.ring.accepted,
                ing.ring.delivered,
                ing.ring.dropped,
                ing.ring.rejected,
                ing.ring.peak_depth,
                ing.ring.mean_occupancy(),
                fe.map_or(0, |f| f.pushed),
                fe.is_some_and(|f| f.closed_early),
            ));
        }
        if let Some(st) = &self.store {
            s.push_str(&format!(
                "  \"store\": {{\"cache_hits\": {}, \"cache_misses\": {}, \"inserts\": {}, \
                 \"evictions\": {}, \"readaheads\": {}, \"hit_rate\": {:.6}",
                st.hits, st.misses, st.inserts, st.evictions, st.readaheads, st.hit_rate,
            ));
            if let Some((peak, bound)) = st.footprint {
                s.push_str(&format!(", \"footprint_peak\": {peak}, \"footprint_bound\": {bound}"));
            }
            s.push_str("},\n");
        }
        s.push_str("  \"phases\": ");
        s.push_str(&self.timing.registry().to_json());
        s.push_str("\n}\n");
        s
    }
}

/// Streaming runtime state of a stream-fed system: the staging ring, the
/// concrete source (for per-run resets), and whether this system owns the
/// producer side (spawning a frontend per run) or consumes an externally
/// attached ring.
struct StreamRuntime {
    ring: Arc<CpiRing>,
    source: Arc<StreamSource>,
    settings: StreamSettings,
    owned: bool,
}

/// A prepared STAP pipeline system.
pub struct StapSystem {
    plan: Arc<StapPlan>,
    pipeline: Pipeline,
    sink_stage: StageId,
    source_stage: StageId,
    reports: ReportSink,
    fs: Pfs,
    stream: Option<StreamRuntime>,
    store: Option<Arc<StoreSource>>,
}

impl StapSystem {
    /// Mounts the file system, stages the radar data and wires the
    /// pipeline.
    pub fn prepare(config: StapConfig) -> Result<Self, PipelineError> {
        let fs = Pfs::mount(config.fs.clone());

        // Radar side: synthesize one cube per round-robin slot and write it
        // range-major (each reader's slab is then one contiguous extent).
        let mut generator =
            CubeGenerator::new(config.dims, config.scene.clone(), config.waveform_len, config.seed)
                .with_motion(config.motion.clone());
        let mut files = Vec::with_capacity(config.fanout);
        for slot in 0..config.fanout {
            let f = fs.gopen(&StapConfig::file_name(slot), OpenMode::Async);
            let cube = generator.next_cube();
            f.write_at(0, &cube.to_range_major_bytes()).map_err(|e| PipelineError::Stage {
                stage: "prepare".into(),
                message: format!("staging write of {}: {e}", StapConfig::file_name(slot)),
            })?;
            files.push(f);
        }
        let waveform = generator.waveform().to_vec();

        // Arm the fault schedule only after the data is staged: injected
        // faults apply to the pipeline's CPI-addressed reads, never to the
        // radar-side staging writes above.
        if let Some(fault_plan) = &config.fault_plan {
            fs.install_fault_plan(fault_plan.clone());
        }

        // Bin classification shared by every stage.
        let nbins = config.nbins();
        let bc = config.doppler.bins;
        let easy_bins = bc.easy_bins(nbins);
        let hard_bins = bc.hard_bins(nbins);

        // Topology.
        let n = config.nodes;
        let mut topo = Topology::new();
        let read = (config.io == IoStrategy::SeparateTask)
            .then(|| topo.add_stage("parallel read", n.read));
        let doppler = topo.add_stage("Doppler filter", n.doppler);
        let easy_weight = topo.add_stage("easy weight", n.easy_weight);
        let hard_weight = topo.add_stage("hard weight", n.hard_weight);
        let easy_bf = topo.add_stage("easy BF", n.easy_bf);
        let hard_bf = topo.add_stage("hard BF", n.hard_bf);
        let (pulse, cfar) = match config.tail {
            TailStructure::Split => {
                let pc = topo.add_stage("pulse compr", n.pulse);
                let cf = topo.add_stage("CFAR", n.cfar);
                (pc, Some(cf))
            }
            TailStructure::Combined => {
                // "the number of nodes assigned to this single task is equal
                // to the sum of the nodes assigned to the two original
                // tasks".
                let pc = topo.add_stage("PC + CFAR", n.pulse + n.cfar);
                (pc, None)
            }
        };
        if let Some(r) = read {
            topo.add_edge(r, doppler);
        }
        topo.add_edge(doppler, easy_bf);
        topo.add_edge(doppler, hard_bf);
        topo.add_edge(doppler, easy_weight);
        topo.add_edge(doppler, hard_weight);
        topo.add_temporal_edge(easy_weight, easy_bf);
        topo.add_temporal_edge(hard_weight, hard_bf);
        topo.add_edge(easy_bf, pulse);
        topo.add_edge(hard_bf, pulse);
        if let Some(cf) = cfar {
            topo.add_edge(pulse, cf);
        }
        topo.validate()?;

        let roles =
            Roles { read, doppler, easy_weight, hard_weight, easy_bf, hard_bf, pulse, cfar };

        // The data-plane seam: file- and stream-fed runs differ only in
        // which `CpiSource` the front stages fetch through. Every CPI is
        // fetched (in disjoint extents) by each node of the front stage,
        // so the stream source caches each cube for that many readers.
        let readers = if config.io == IoStrategy::SeparateTask {
            config.nodes.read
        } else {
            config.nodes.doppler
        };
        let mut stream = None;
        let mut store: Option<Arc<StoreSource>> = None;
        let source: Arc<dyn CpiSource> = match &config.source {
            // A cached/prefetch strategy or out-of-core access routes the
            // file reads through the smart storage tier; otherwise the
            // plain file source reads the stripe servers directly.
            SourceSpec::File
                if config.io.uses_store_tier() || config.access != CubeAccess::Resident =>
            {
                let cube_bytes = config.dims.bytes();
                let row_bytes = config.dims.channels * config.dims.pulses * 8;
                // Each front node streams at most one chunk of scratch at a
                // time, plus one for the background fill worker — that is
                // the provable peak the meter enforces.
                let chunk_rows = match config.access {
                    CubeAccess::OutOfCore { chunk_rows } => chunk_rows,
                    CubeAccess::Resident => config.dims.ranges.max(1),
                };
                let src = Arc::new(StoreSource::new(
                    files.clone(),
                    StoreConfig {
                        cache_bytes: config.io.cache_bytes(cube_bytes),
                        readahead_depth: config.io.readahead_depth(),
                        access: config.access,
                        footprint_bound: ((readers + 1) * chunk_rows * row_bytes) as u64,
                        row_bytes,
                    },
                ));
                store = Some(Arc::clone(&src));
                src
            }
            SourceSpec::File => Arc::new(FileSource::new(files.clone())),
            SourceSpec::Stream(settings) => {
                let (ring, owned) = match &settings.attach {
                    Some(ring) => (Arc::clone(ring), false),
                    None => (Arc::new(CpiRing::new("run", settings.depth, settings.policy)), true),
                };
                let src =
                    Arc::new(StreamSource::new(Arc::clone(&ring), readers, settings.strict_lag));
                stream = Some(StreamRuntime {
                    ring,
                    source: Arc::clone(&src),
                    settings: settings.clone(),
                    owned,
                });
                src
            }
        };

        let tap = config.quality_tap.then(|| Arc::new(QualityTap::default()));
        let plan = Arc::new(StapPlan {
            config,
            roles,
            easy_bins,
            hard_bins,
            files,
            source,
            waveform,
            stats: FaultStats::default(),
            tap,
            pools: crate::stages::CommPools::default(),
        });
        let reports: ReportSink = Arc::new(Mutex::new(Vec::new()));

        // Stage factories, in topology (stage-id) order.
        let mut factories: Vec<StageFactory> = Vec::new();
        let cfg = &plan.config;
        if read.is_some() {
            let p = Arc::clone(&plan);
            let nodes = cfg.nodes.read;
            factories.push(Box::new(move |local| {
                Box::new(ReadStage::new(Arc::clone(&p), local, nodes))
            }));
        }
        {
            let p = Arc::clone(&plan);
            let nodes = cfg.nodes.doppler;
            factories.push(Box::new(move |local| {
                Box::new(DopplerStage::new(Arc::clone(&p), local, nodes))
            }));
        }
        for (hard, nodes) in [(false, cfg.nodes.easy_weight), (true, cfg.nodes.hard_weight)] {
            let p = Arc::clone(&plan);
            factories.push(Box::new(move |local| {
                Box::new(WeightStage::new(Arc::clone(&p), local, nodes, hard))
            }));
        }
        for (hard, nodes) in [(false, cfg.nodes.easy_bf), (true, cfg.nodes.hard_bf)] {
            let p = Arc::clone(&plan);
            factories.push(Box::new(move |local| {
                Box::new(BeamformStage::new(Arc::clone(&p), local, nodes, hard))
            }));
        }
        match cfg.tail {
            TailStructure::Split => {
                let p = Arc::clone(&plan);
                factories.push(Box::new(move |_local| Box::new(PulseStage::new(Arc::clone(&p)))));
                let p = Arc::clone(&plan);
                let sink = Arc::clone(&reports);
                let nodes = cfg.nodes.cfar;
                factories.push(Box::new(move |local| {
                    Box::new(CfarStage::new(Arc::clone(&p), local, nodes, Arc::clone(&sink)))
                }));
            }
            TailStructure::Combined => {
                let p = Arc::clone(&plan);
                let sink = Arc::clone(&reports);
                let nodes = cfg.nodes.pulse + cfg.nodes.cfar;
                factories.push(Box::new(move |local| {
                    Box::new(CombinedTailStage::new(
                        Arc::clone(&p),
                        local,
                        nodes,
                        Arc::clone(&sink),
                    ))
                }));
            }
        }

        let pipeline = Pipeline::new(topo, factories);
        let source_stage = read.unwrap_or(doppler);
        let sink_stage = cfar.unwrap_or(pulse);
        Ok(Self { plan, pipeline, sink_stage, source_stage, reports, fs, stream, store })
    }

    /// The smart storage tier, when this system routes reads through one
    /// (cached/prefetch strategies or out-of-core access). Exposes the
    /// live files for online restriping.
    pub fn store_source(&self) -> Option<&Arc<StoreSource>> {
        self.store.as_ref()
    }

    /// The staging ring of a stream-fed system (None for file-fed).
    pub fn staging_ring(&self) -> Option<&Arc<CpiRing>> {
        self.stream.as_ref().map(|s| &s.ring)
    }

    /// The shared plan (bins, roles, files).
    pub fn plan(&self) -> &StapPlan {
        &self.plan
    }

    /// The detection-quality tap (None unless the run configuration set
    /// `quality_tap`). Holds the last completed run's captures.
    pub fn quality_tap(&self) -> Option<&Arc<QualityTap>> {
        self.plan.tap.as_ref()
    }

    /// The underlying file system (diagnostics: stripe distribution etc.).
    pub fn fs(&self) -> &Pfs {
        &self.fs
    }

    /// The pipeline topology.
    pub fn topology(&self) -> &Topology {
        self.pipeline.topology()
    }

    /// Per-stage watchdog deadlines: `factor ×` the predicted per-CPI
    /// stage time from the paper's workload model at a deliberately
    /// pessimistic sustained rate, clamped below by the policy's floor
    /// (which also absorbs injected slow-read latency on small shapes).
    fn watchdog_spec(&self, policy: WatchdogPolicy) -> WatchdogSpec {
        const FLOPS_PER_SEC: f64 = 1e8;
        const IO_BYTES_PER_SEC: f64 = 20e6;
        let cfg = &self.plan.config;
        let nbins = cfg.nbins();
        let shape = ShapeParams {
            pulses: cfg.dims.pulses,
            channels: cfg.dims.channels,
            ranges: cfg.dims.ranges,
            hard_fraction: self.plan.hard_bins.len() as f64 / nbins as f64,
            beams: cfg.beams.len(),
            training_stride: stap_kernels::covariance::TrainingConfig::default().range_stride,
            waveform_len: cfg.waveform_len,
        };
        let w = StapWorkload::derive(shape);
        let io_secs = cfg.dims.bytes() as f64 / IO_BYTES_PER_SEC;
        let n = cfg.nodes;
        let sec =
            |flops: f64, nodes: usize, io: f64| (flops / FLOPS_PER_SEC + io) / nodes.max(1) as f64;
        let mut times: Vec<f64> = Vec::new();
        if self.plan.separate_io() {
            times.push(sec(0.0, n.read, io_secs));
            times.push(sec(w.flops(TaskId::Doppler), n.doppler, 0.0));
        } else {
            times.push(sec(w.flops(TaskId::Doppler), n.doppler, io_secs));
        }
        times.push(sec(w.flops(TaskId::EasyWeight), n.easy_weight, 0.0));
        times.push(sec(w.flops(TaskId::HardWeight), n.hard_weight, 0.0));
        times.push(sec(w.flops(TaskId::EasyBeamform), n.easy_bf, 0.0));
        times.push(sec(w.flops(TaskId::HardBeamform), n.hard_bf, 0.0));
        match cfg.tail {
            TailStructure::Split => {
                times.push(sec(w.flops(TaskId::PulseCompression), n.pulse, 0.0));
                times.push(sec(w.flops(TaskId::Cfar), n.cfar, 0.0));
            }
            TailStructure::Combined => {
                let flops = w.flops(TaskId::PulseCompression) + w.flops(TaskId::Cfar);
                times.push(sec(flops, n.pulse + n.cfar, 0.0));
            }
        }
        let deadlines = times
            .into_iter()
            .map(|t| Duration::from_secs_f64((t * policy.factor).min(3600.0)).max(policy.floor))
            .collect();
        WatchdogSpec { deadlines }
    }

    /// Runs the configured number of CPIs and collects outputs, timing
    /// phases against the wall clock.
    pub fn run(&self) -> Result<StapRunOutput, PipelineError> {
        self.run_with_clock(ClockSpec::Wall)
    }

    /// [`Self::run`] with an explicit trace clock: pass a virtual clock for
    /// bit-reproducible trace output (timestamps count clock observations,
    /// not elapsed seconds).
    pub fn run_with_clock(&self, clocks: ClockSpec) -> Result<StapRunOutput, PipelineError> {
        self.reports.lock().clear();
        self.plan.stats.reset();
        if let Some(tap) = &self.plan.tap {
            tap.reset();
        }
        // Replay the fault schedule identically on every run of this
        // system: attempt counters restart from zero, and the I/O
        // counters cover exactly this run.
        self.fs.reset_fault_attempts();
        self.fs.reset_io_counters();
        let cfg = &self.plan.config;

        // Stream-fed and system-owned: reset the staging tier and spawn
        // the radar frontend for exactly this run's CPIs. An attached
        // ring is produced into (and closed) by its external owner.
        let frontend = match &self.stream {
            Some(sr) if sr.owned => {
                sr.ring.reopen();
                sr.source.reset();
                Some(Frontend::spawn(
                    Arc::clone(&sr.ring),
                    FrontendConfig {
                        dims: cfg.dims,
                        scene: cfg.scene.clone(),
                        motion: cfg.motion.clone(),
                        waveform_len: cfg.waveform_len,
                        seed: cfg.seed,
                        fanout: cfg.fanout,
                        count: cfg.cpis,
                        rate: sr.settings.rate,
                    },
                ))
            }
            _ => None,
        };

        // Cache counters accumulate for the life of the tier (the cache
        // itself stays warm across runs); report this run's delta.
        let store_before = self.store.as_ref().map(|s| s.stats().snapshot());

        let spec = cfg.watchdog.map(|policy| self.watchdog_spec(policy));
        let run = self.pipeline.run_configured(cfg.cpis, cfg.warmup, spec.as_ref(), clocks);

        // Tear the staging tier down before propagating any run error:
        // closing the ring is what unblocks a producer parked on a full
        // ring, so a failed run never leaks a stuck frontend thread.
        let ingest = self.stream.as_ref().map(|sr| {
            if sr.owned {
                sr.ring.close();
            }
            // Join before snapshotting so the counters are final.
            let fe = frontend.map(Frontend::join);
            IngestReport { policy: sr.ring.policy(), ring: sr.ring.stats(), frontend: fe }
        });

        let store = self.store.as_ref().map(|s| {
            let (h0, m0, i0, e0, r0) = store_before.unwrap_or_default();
            let (h, m, i, e, r) = s.stats().snapshot();
            let (hits, misses) = (h - h0, m - m0);
            StoreReport {
                hits,
                misses,
                inserts: i - i0,
                evictions: e - e0,
                readaheads: r - r0,
                hit_rate: if hits + misses > 0 {
                    hits as f64 / (hits + misses) as f64
                } else {
                    0.0
                },
                footprint: s.footprint().map(|meter| (meter.peak(), meter.bound())),
            }
        });

        let timing = run?;
        let mut reports = std::mem::take(&mut *self.reports.lock());
        reports.sort_by_key(|r| r.cpi);
        Ok(StapRunOutput {
            timing,
            reports,
            source: self.source_stage,
            sink: self.sink_stage,
            dropped: self.plan.stats.dropped(),
            retries: self.plan.stats.retries(),
            cpis: cfg.cpis,
            warmup: cfg.warmup,
            io: self.fs.io_counters(),
            ingest,
            store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> StapConfig {
        StapConfig { cpis: 3, warmup: 1, ..StapConfig::default() }
    }

    #[test]
    fn prepare_stages_files_on_the_pfs() {
        let sys = StapSystem::prepare(tiny_config()).unwrap();
        assert_eq!(sys.plan().files.len(), 4);
        for f in &sys.plan().files {
            assert_eq!(f.len() as usize, sys.plan().config.dims.bytes());
        }
        // Data really striped across servers.
        let counts = sys.fs().server_unit_counts();
        assert!(counts.iter().filter(|&&c| c > 0).count() > 1);
    }

    #[test]
    fn run_report_json_carries_metrics_io_and_phases() {
        let sys = StapSystem::prepare(tiny_config()).unwrap();
        let out = sys.run_with_clock(ClockSpec::virtual_default()).unwrap();
        assert!(out.io.total_reads() > 0, "the run must issue file-system reads");
        assert!(out.io.bytes_read > 0);
        let report = out.run_report_json();
        let json = stap_trace::json::parse(&report).expect("report parses as JSON");
        assert_eq!(json.get("cpis").and_then(|v| v.as_f64()), Some(3.0));
        let metrics = json.get("metrics").expect("metrics section");
        assert!(metrics.get("throughput").and_then(|v| v.as_f64()).expect("tput") > 0.0);
        let io = json.get("io").expect("io section");
        assert!(io.get("bytes_read").and_then(|v| v.as_f64()).expect("bytes") > 0.0);
        let phases = json.get("phases").and_then(|v| v.as_array()).expect("phases section");
        assert!(!phases.is_empty(), "phase registry embedded");
        assert!(phases.iter().any(|e| e.get("phase").and_then(|p| p.as_str()) == Some("read")));
    }

    #[test]
    fn stream_fed_run_matches_file_fed_detections() {
        type Keys = Vec<(u64, Vec<(usize, usize, usize, u64)>)>;
        fn keys(reports: &[DetectionReport]) -> Keys {
            reports
                .iter()
                .map(|r| {
                    let mut dets: Vec<_> = r
                        .detections
                        .iter()
                        .map(|d| (d.beam, d.bin, d.range, d.power.to_bits()))
                        .collect();
                    dets.sort_unstable();
                    (r.cpi, dets)
                })
                .collect()
        }
        let file_out = StapSystem::prepare(tiny_config())
            .unwrap()
            .run_with_clock(ClockSpec::virtual_default())
            .unwrap();
        assert!(file_out.ingest.is_none(), "file-fed runs carry no ingest section");

        let cfg =
            StapConfig { source: SourceSpec::Stream(StreamSettings::default()), ..tiny_config() };
        let sys = StapSystem::prepare(cfg).unwrap();
        let out = sys.run_with_clock(ClockSpec::virtual_default()).unwrap();
        assert_eq!(keys(&out.reports), keys(&file_out.reports), "bit-equal detection records");

        let ingest = out.ingest.expect("stream-fed runs report staging counters");
        assert!(ingest.ring.conserves());
        assert_eq!(ingest.ring.delivered, 3);
        assert_eq!(ingest.frontend.expect("owned frontend").pushed, 3);
        assert!(out.run_report_json().contains("\"ingest\""));

        // A second run of the same system reopens the ring and replays.
        let again = sys.run_with_clock(ClockSpec::virtual_default()).unwrap();
        assert_eq!(keys(&again.reports), keys(&file_out.reports));
    }

    #[test]
    fn topology_matches_strategy() {
        let sys = StapSystem::prepare(tiny_config()).unwrap();
        assert_eq!(sys.topology().stage_count(), 7);
        let sep = StapSystem::prepare(StapConfig { io: IoStrategy::SeparateTask, ..tiny_config() })
            .unwrap();
        assert_eq!(sep.topology().stage_count(), 8);
        let comb =
            StapSystem::prepare(StapConfig { tail: TailStructure::Combined, ..tiny_config() })
                .unwrap();
        assert_eq!(comb.topology().stage_count(), 6);
    }
}
