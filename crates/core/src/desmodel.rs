//! Virtual-time simulation of the STAP pipeline on the calibrated machine
//! models — the engine behind every reproduced table and figure.
//!
//! Each task instance `(task, cpi)` is an event-driven activity: it starts
//! once all its inputs have arrived (spatial inputs from the same CPI,
//! temporal inputs from the previous one) and its own previous instance has
//! finished; it completes after its modeled execution time. File reads go
//! through a per-server FCFS resource ([`stap_des::FcfsResource`]) with one
//! server per stripe directory, so I/O contention — the paper's central
//! subject — emerges from queueing rather than being assumed.
//!
//! Asynchronous reads (Paragon PFS, `M_ASYNC` + `iread`) are posted when
//! the *previous* Doppler instance starts, overlapping the read with a full
//! iteration of compute+send; synchronous reads (SP PIOFS) serialize with
//! the computation, exactly as in the paper's discussion of why the SP
//! scales poorly.

use crate::io_strategy::{IoStrategy, TailStructure};
use stap_des::{Engine, FcfsResource, SimTime, Tally};
use stap_model::analytic::{latency as eq_latency, throughput as eq_throughput, TaskTime};
use stap_model::assignment::{assign_nodes, SEPARATE_IO_NODES};
use stap_model::machines::MachineModel;
use stap_model::tasktime::{combined_task_time_cap, comm_time, comm_time_cap, task_time_cap};
use stap_model::workload::{ShapeParams, StapWorkload, TaskId};
use stap_pfs::layout::StripeLayout;
use stap_pfs::timing::parallel_read_completion;
use stap_pfs::FaultWindow;
use stap_pfs::OpenMode;
use stap_pipeline::timing::{Phase, Span};
use std::collections::HashMap;

/// Simulated storage-tier cache in front of the embedded read (the DES
/// twin of `stap_model::cachetier::CacheTierModel`, so `serve --sim` and
/// `plan` price `cached:{MB}` / `prefetch:{D}` identically).
#[derive(Debug, Clone, Copy)]
struct CacheSim {
    /// Seconds to serve one cube from the server cache.
    hit_time: f64,
    /// CPI index from which every read hits (`Some(fanout)` when the
    /// working set fits the cache: one pass through the round-robin
    /// staging files warms it); `None` = never warm (prefetch-only).
    warm_after: Option<u64>,
}

/// Maps a storage-tier strategy onto its simulated cache, pricing it with
/// the shared `stap_model::cachetier` cost model.
fn cache_sim(io: IoStrategy, cube_bytes: usize) -> Option<CacheSim> {
    use stap_model::cachetier::{hit_time, CacheTierModel, STAGING_FANOUT};
    match io {
        IoStrategy::Cached { mb } => {
            let tier = CacheTierModel::cached((mb as usize) << 20, cube_bytes, STAGING_FANOUT);
            Some(CacheSim {
                hit_time: tier.hit_time,
                warm_after: tier.warm.then_some(STAGING_FANOUT as u64),
            })
        }
        IoStrategy::Prefetch { .. } => {
            Some(CacheSim { hit_time: hit_time(cube_bytes), warm_after: None })
        }
        IoStrategy::Embedded | IoStrategy::SeparateTask => None,
    }
}

/// How a task's instance duration is determined.
#[derive(Debug, Clone, Copy)]
enum DurKind {
    /// Constant `T_i` (compute + comm + overhead), seconds.
    Fixed(f64),
    /// Embedded read in the Doppler task: read + compute(+send+overhead),
    /// with async overlap when the file system allows it. A storage-tier
    /// cache, when present, serves warm reads from server memory (no
    /// stripe-server submission) and overlaps cold misses with compute
    /// regardless of client `iread` support — the read-ahead is issued by
    /// the I/O servers.
    ReadEmbedded { compute: f64, send: f64, overhead: f64, overlap: bool, cache: Option<CacheSim> },
}

/// Predicted per-phase seconds of one task instance, in pipeline order
/// (read, receive, compute, send). Parallelization overhead is folded into
/// `compute` — the simulator has no separate phase for it and the real
/// pipeline's tracer observes it inside the compute span too.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// File-system read seconds (read-bearing tasks only).
    pub read: f64,
    /// Receive-side communication seconds.
    pub recv: f64,
    /// Compute seconds (including overhead `V_i`).
    pub compute: f64,
    /// Send-side communication seconds.
    pub send: f64,
}

impl PhaseBreakdown {
    /// Sum of the four phases.
    pub fn total(&self) -> f64 {
        self.read + self.recv + self.compute + self.send
    }

    /// A non-read task's breakdown from its Eq. 6 cost components.
    fn from_costs(c: stap_model::TaskCosts) -> Self {
        Self { read: 0.0, recv: c.recv, compute: c.compute + c.overhead, send: c.send }
    }
}

/// One simulated task.
#[derive(Debug, Clone)]
struct SimTask {
    label: String,
    /// `TaskId` used for the analytic latency/throughput cross-check
    /// (combined tail reports as `PulseCompression`).
    id: TaskId,
    nodes: usize,
    dur: DurKind,
    /// Predicted phase split of one instance (steady state, fault-free).
    phases: PhaseBreakdown,
    /// Spatial predecessors (same CPI), indices into the task vector.
    spatial_preds: Vec<usize>,
    /// Temporal predecessors (previous CPI).
    temporal_preds: Vec<usize>,
}

/// Which simulated CPIs suffer a read fault.
#[derive(Debug, Clone)]
pub enum FaultSource {
    /// Each CPI's read fails independently with probability `rate`,
    /// deterministically derived from `seed` (same draw every run).
    Random {
        /// Per-CPI fault probability in `[0, 1]`.
        rate: f64,
        /// Seed of the deterministic per-CPI draw.
        seed: u64,
    },
    /// Reads fail during these CPI windows.
    Windows(Vec<FaultWindow>),
}

impl FaultSource {
    /// Deterministic verdict: is CPI `cpi` faulted?
    fn faulted(&self, cpi: u64) -> bool {
        match self {
            FaultSource::Random { rate, seed } => {
                // splitmix64 of (seed, cpi) → uniform in [0, 1).
                let mut z = seed
                    .wrapping_add(cpi.wrapping_mul(0x9e37_79b9_7f4a_7c15))
                    .wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^= z >> 31;
                ((z >> 11) as f64 / (1u64 << 53) as f64) < *rate
            }
            FaultSource::Windows(ws) => ws.iter().any(|w| w.contains(cpi)),
        }
    }
}

/// A permanent fleet-level event applied in virtual time, mirroring the
/// real file system's `server-loss:IDX@T` / `node:IDX@A..B` fault specs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEvent {
    /// Stripe server `server` is permanently lost from CPI `from` onward:
    /// the surviving servers absorb its share of every later read.
    ServerLoss {
        /// Index of the lost stripe server.
        server: usize,
        /// First CPI whose read observes the loss.
        from: u64,
    },
    /// The compute node hosting a pipeline stage crashes while CPI `at`
    /// is in flight. What happens next depends on the provisioned
    /// [`Redundancy`]: replica promotion, checkpoint replay, or — bare —
    /// the pipeline instance dies and every later CPI is lost.
    NodeCrash {
        /// Index of the crashed node (identity only; the consequence is
        /// the same whichever stage the node hosted).
        node: usize,
        /// CPI in flight when the node died.
        at: u64,
    },
}

/// Redundancy provisioned against fleet-level node crashes — the thing
/// the tri-criteria planner spends nodes or time on to buy survival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redundancy {
    /// No provisioning: a node crash kills the pipeline instance and all
    /// later CPIs are lost.
    None,
    /// `spares` warm standby nodes: each crash promotes one spare at a
    /// bounded time cost; the run survives up to `spares` crashes.
    Replicated {
        /// Warm standby nodes available for promotion.
        spares: u32,
    },
    /// Pipeline state checkpointed every `interval` CPIs: every crash is
    /// survivable, at a steady checkpoint cost plus a bounded replay of
    /// at most `interval` CPIs per crash.
    Checkpointed {
        /// CPIs between checkpoints (≥ 1).
        interval: u64,
    },
}

impl Redundancy {
    /// Short label for report columns (`"-"`, `"rep:2"`, `"ckpt:8"`).
    pub fn label(&self) -> String {
        match self {
            Redundancy::None => "-".into(),
            Redundancy::Replicated { spares } => format!("rep:{spares}"),
            Redundancy::Checkpointed { interval } => format!("ckpt:{interval}"),
        }
    }

    /// Extra nodes this redundancy reserves on top of the plan's pipeline
    /// nodes (spares are real nodes; checkpointing spends time, not nodes).
    pub fn spare_nodes(&self) -> usize {
        match self {
            Redundancy::Replicated { spares } => *spares as usize,
            _ => 0,
        }
    }
}

/// Fault injection for the simulated read path, mirroring the real
/// pipeline's `SkipCpi` failure policy in virtual time: a faulted CPI's
/// read fails `fail_attempts` times (each failure costs `detect` seconds
/// plus exponential backoff); if the retry budget clears the fault the
/// read proceeds, otherwise the CPI is dropped and every downstream task
/// merely forwards the gap bubble at a small fraction of its nominal time.
///
/// On top of the transient model, `fleet` schedules permanent
/// infrastructure losses and `redundancy` decides whether the pipeline
/// survives them — see [`FleetEvent`] and [`Redundancy`].
#[derive(Debug, Clone)]
pub struct DesFaultModel {
    /// Which CPIs fault.
    pub source: FaultSource,
    /// Failed attempts before a faulted CPI's read would succeed
    /// (`u32::MAX` = never within any realistic budget).
    pub fail_attempts: u32,
    /// Seconds to notice one failed attempt.
    pub detect: f64,
    /// Retry budget after the first failure (the `SkipCpi` retry knob).
    pub retry_attempts: u32,
    /// Base backoff seconds before the first retry; doubles per retry.
    pub backoff: f64,
    /// Permanent fleet-level events applied on top of the transient model.
    pub fleet: Vec<FleetEvent>,
    /// Redundancy provisioned against [`FleetEvent::NodeCrash`].
    pub redundancy: Redundancy,
}

/// Fraction of a task's nominal time charged to forward a gap bubble.
const GAP_FORWARD_FRACTION: f64 = 0.05;

/// Detection multiplier for a permanent server loss: noticing that a
/// stripe server is gone (vs one failed attempt) costs this many `detect`
/// periods before reads re-route to the survivors.
const SERVER_FAILOVER_DETECT_FACTOR: f64 = 5.0;

/// Promoting a warm replica after a node crash costs this many nominal
/// source-task periods (state transfer + pipeline re-entry). Public so the
/// planner's expected-throughput pricing uses the same number the DES
/// charges.
pub const REPLICA_PROMOTE_PERIODS: f64 = 2.0;

/// Restoring from a checkpoint costs this many nominal source-task
/// periods on top of replaying the CPIs since the last checkpoint.
pub const CHECKPOINT_RESTORE_PERIODS: f64 = 1.0;

/// Writing one checkpoint costs this fraction of a nominal source-task
/// period — the steady-state price of checkpointed redundancy, paid every
/// `interval` CPIs whether or not a crash ever happens.
pub const CHECKPOINT_COST_FRACTION: f64 = 0.25;

/// Per-CPI consequence of the fault model.
#[derive(Debug, Clone, Copy, Default)]
struct CpiFault {
    /// Extra seconds charged at the read-bearing task (detection+backoff).
    extra: f64,
    /// The CPI is dropped: downstream tasks only forward the bubble.
    dropped: bool,
    /// Retries consumed on this CPI.
    retries: u64,
}

impl DesFaultModel {
    /// A purely transient model: no fleet-level events, no redundancy.
    pub fn transient(
        source: FaultSource,
        fail_attempts: u32,
        detect: f64,
        retry_attempts: u32,
        backoff: f64,
    ) -> Self {
        Self {
            source,
            fail_attempts,
            detect,
            retry_attempts,
            backoff,
            fleet: Vec::new(),
            redundancy: Redundancy::None,
        }
    }

    /// Whether the model carries anything beyond per-CPI transients.
    fn has_fleet_consequences(&self) -> bool {
        !self.fleet.is_empty() || matches!(self.redundancy, Redundancy::Checkpointed { .. })
    }

    /// Applies fleet-level events (and the steady checkpoint tax) on top
    /// of the per-CPI transient consequences.
    ///
    /// - `ServerLoss` charges a one-off failover stall at its onset CPI
    ///   and scales every later read by `sf / (sf - lost)`: the surviving
    ///   stripe servers absorb the dead server's share of each cube.
    /// - `NodeCrash` consults the provisioned redundancy: a spare is
    ///   promoted ([`REPLICA_PROMOTE_PERIODS`]), a checkpoint is restored
    ///   and up to `interval` CPIs replayed, or — bare — every CPI from
    ///   the crash onward is dropped (the pipeline instance is dead).
    ///
    /// `nominal` is the source task's nominal per-CPI time, the unit that
    /// prices promotion, restore, and replay.
    fn apply_fleet(
        &self,
        cpis: u64,
        stripe_factor: usize,
        nominal: f64,
        faults: &mut [CpiFault],
        read_scale: &mut [f64],
    ) {
        // Steady checkpoint tax, paid at every checkpoint CPI.
        if let Redundancy::Checkpointed { interval } = self.redundancy {
            let k = interval.max(1);
            let mut j = k - 1;
            while j < cpis {
                faults[j as usize].extra += CHECKPOINT_COST_FRACTION * nominal;
                j += k;
            }
        }
        // Server losses: failover stall at onset, degraded reads after.
        let mut losses: Vec<u64> = self
            .fleet
            .iter()
            .filter_map(|e| match e {
                FleetEvent::ServerLoss { from, .. } => Some(*from),
                FleetEvent::NodeCrash { .. } => None,
            })
            .collect();
        losses.sort_unstable();
        for (nth, &from) in losses.iter().enumerate() {
            if from < cpis {
                faults[from as usize].extra += SERVER_FAILOVER_DETECT_FACTOR * self.detect;
            }
            // Never scale past "one server left".
            let lost = (nth + 1).min(stripe_factor.saturating_sub(1));
            let scale = stripe_factor as f64 / (stripe_factor - lost) as f64;
            for s in read_scale.iter_mut().skip(from as usize) {
                *s = scale;
            }
        }
        // Node crashes, in CPI order so spares deplete chronologically.
        let mut crashes: Vec<u64> = self
            .fleet
            .iter()
            .filter_map(|e| match e {
                FleetEvent::NodeCrash { at, .. } => Some(*at),
                FleetEvent::ServerLoss { .. } => None,
            })
            .collect();
        crashes.sort_unstable();
        let mut spares_left = match self.redundancy {
            Redundancy::Replicated { spares } => spares,
            _ => 0,
        };
        for at in crashes {
            if at >= cpis {
                continue;
            }
            match self.redundancy {
                Redundancy::Replicated { .. } if spares_left > 0 => {
                    spares_left -= 1;
                    faults[at as usize].extra += REPLICA_PROMOTE_PERIODS * nominal;
                }
                Redundancy::Checkpointed { interval } => {
                    let replay = at % interval.max(1);
                    faults[at as usize].extra +=
                        (CHECKPOINT_RESTORE_PERIODS + replay as f64) * nominal;
                }
                // Bare (or spares exhausted): the instance dies and every
                // CPI from the crash onward is lost.
                _ => {
                    for f in faults.iter_mut().skip(at as usize) {
                        f.dropped = true;
                    }
                }
            }
        }
    }

    /// Exponential backoff before retry `attempt`, capped like the real
    /// pipeline's `RetryPolicy`.
    fn backoff_for(&self, attempt: u32) -> f64 {
        self.backoff * f64::from(1u32 << attempt.min(6))
    }

    /// The consequence for CPI `cpi`.
    fn consequence(&self, cpi: u64) -> CpiFault {
        if !self.source.faulted(cpi) {
            return CpiFault::default();
        }
        let budget = self.retry_attempts;
        if self.fail_attempts <= budget {
            // The retry budget clears the fault: charge the failed
            // attempts and their backoffs, then the read proceeds.
            let failing = self.fail_attempts;
            let extra = f64::from(failing) * self.detect
                + (0..failing).map(|k| self.backoff_for(k)).sum::<f64>();
            CpiFault { extra, dropped: false, retries: u64::from(failing) }
        } else {
            // Budget exhausted: every attempt failed, the CPI is dropped.
            let extra = f64::from(budget + 1) * self.detect
                + (0..budget).map(|k| self.backoff_for(k)).sum::<f64>();
            CpiFault { extra, dropped: true, retries: u64::from(budget) }
        }
    }
}

/// Configuration of one virtual-time experiment cell.
#[derive(Debug, Clone)]
pub struct DesExperiment {
    /// The machine to run on.
    pub machine: MachineModel,
    /// CPI cube geometry and algorithm parameters.
    pub shape: ShapeParams,
    /// I/O design.
    pub io: IoStrategy,
    /// Tail structure.
    pub tail: TailStructure,
    /// Total compute nodes for the seven tasks (the separate-I/O design
    /// adds [`SEPARATE_IO_NODES`] readers on top, as in the paper's
    /// Table 2).
    pub compute_nodes: usize,
    /// CPIs to simulate.
    pub cpis: u64,
    /// Leading CPIs excluded from steady-state statistics.
    pub warmup: u64,
    /// Optional explicit node assignment over [`TaskId::SEVEN`]; when
    /// `None`, nodes are assigned proportionally to workload. The paper's
    /// §6.2 corollary (combining can improve *both* metrics) only arises
    /// under non-proportional assignments where a tail task paces the
    /// pipeline.
    pub assignment_override: Option<stap_model::assignment::Assignment>,
    /// Transient read faults applied in virtual time (None = fault-free).
    pub faults: Option<DesFaultModel>,
}

impl DesExperiment {
    /// A cell with the paper's defaults (64 CPIs, 8 warmup).
    pub fn new(
        machine: MachineModel,
        io: IoStrategy,
        tail: TailStructure,
        compute_nodes: usize,
    ) -> Self {
        Self {
            machine,
            shape: ShapeParams::paper_default(),
            io,
            tail,
            compute_nodes,
            cpis: 64,
            warmup: 8,
            assignment_override: None,
            faults: None,
        }
    }
}

/// One task-instance execution interval captured by a traced run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Task index in pipeline order.
    pub task: usize,
    /// CPI sequence number.
    pub cpi: u64,
    /// Virtual start time (s).
    pub start: f64,
    /// Virtual end time (s).
    pub end: f64,
}

/// Per-task outcome.
#[derive(Debug, Clone)]
pub struct TaskRow {
    /// Table label.
    pub label: String,
    /// Task identity for equation cross-checks.
    pub id: TaskId,
    /// Nodes assigned.
    pub nodes: usize,
    /// Mean steady-state instance time `T_i` (seconds).
    pub time: f64,
    /// Predicted phase split of one instance (model, not measurement).
    pub phases: PhaseBreakdown,
}

/// Outcome of one experiment cell.
#[derive(Debug, Clone)]
pub struct DesResult {
    /// Machine name.
    pub machine: String,
    /// Total nodes including any dedicated readers.
    pub total_nodes: usize,
    /// Per-task rows, pipeline order.
    pub tasks: Vec<TaskRow>,
    /// Measured steady-state throughput (CPIs/second).
    pub throughput: f64,
    /// Measured mean end-to-end latency (seconds).
    pub latency: f64,
    /// I/O server utilization over the run.
    pub io_utilization: f64,
    /// CPIs dropped by the fault model, ascending.
    pub dropped: Vec<u64>,
    /// Read retries charged by the fault model.
    pub retries: u64,
    /// Steady-state throughput of *delivered* CPIs (slot rate scaled by
    /// the surviving fraction; equals `throughput` when nothing dropped).
    pub delivered_throughput: f64,
}

impl DesResult {
    /// Eq. 1/3 applied to the measured mean task times (cross-check).
    pub fn analytic_throughput(&self) -> f64 {
        let tt: Vec<TaskTime> =
            self.tasks.iter().map(|t| TaskTime { task: t.id, time: t.time }).collect();
        eq_throughput(&tt)
    }

    /// Eq. 2/4/12 applied to the measured mean task times (cross-check).
    pub fn analytic_latency(&self) -> f64 {
        let tt: Vec<TaskTime> =
            self.tasks.iter().map(|t| TaskTime { task: t.id, time: t.time }).collect();
        eq_latency(&tt)
    }
}

struct SimState {
    tasks: Vec<SimTask>,
    /// Remaining unsatisfied inputs per (task, cpi).
    remaining: HashMap<(usize, u64), usize>,
    /// Latest input arrival per (task, cpi).
    arrival: HashMap<(usize, u64), SimTime>,
    /// End of the previous instance per task (None before cpi 0 completes).
    prev_end: Vec<Option<SimTime>>,
    /// Number of completed instances per task (instance `j` may only start
    /// once `completed == j`, keeping a task's instances strictly serial).
    completed: Vec<u64>,
    /// Start of the previous instance per task (for async read posting).
    prev_start: Vec<Option<SimTime>>,
    /// Next instance index allowed to start per task.
    next_cpi: Vec<u64>,
    io: FcfsResource,
    io_layout: StripeLayout,
    io_service_latency: f64,
    io_bandwidth: f64,
    cube_bytes: usize,
    cpis: u64,
    warmup: u64,
    durations: Vec<Tally>,
    source_start: Vec<SimTime>,
    sink_end: Vec<SimTime>,
    source_idx: usize,
    sink_idx: usize,
    trace: Option<Vec<TraceEntry>>,
    /// Precomputed per-CPI fault consequences (empty = fault-free).
    faults: Vec<CpiFault>,
    /// Per-CPI read service-time multiplier (empty = all 1.0): after a
    /// permanent server loss the survivors absorb the dead server's share,
    /// so every later read is scaled by `sf / (sf - lost)`.
    read_scale: Vec<f64>,
}

impl SimState {
    fn deps_count(&self, i: usize, j: u64) -> usize {
        let t = &self.tasks[i];
        t.spatial_preds.len() + if j > 0 { t.temporal_preds.len() } else { 0 }
    }

    /// Posts the whole-file read of CPI `j` at `post` and returns its
    /// completion time. `read_scale` stretches the service after a
    /// permanent server loss.
    fn read_done(&mut self, post: SimTime, j: u64) -> SimTime {
        let scale = self.read_scale.get(j as usize).copied().unwrap_or(1.0);
        let mut done = post;
        for req in self.io_layout.map_extent(0, self.cube_bytes) {
            let service = SimTime::from_secs_f64(
                scale * (self.io_service_latency + req.len as f64 / self.io_bandwidth),
            );
            let (_, d) = self.io.submit_to(req.server, post, service);
            done = done.max(d);
        }
        done
    }

    /// Duration of instance `(i, j)` starting at `t0`.
    fn duration(&mut self, i: usize, j: u64, t0: SimTime) -> SimTime {
        let fault = self.faults.get(j as usize).copied().unwrap_or_default();
        if fault.dropped {
            // The read-bearing task burns its retry budget (detection +
            // backoff) and gives up; everyone downstream merely forwards
            // the gap bubble at a small fraction of nominal time.
            if i == self.source_idx {
                return SimTime::from_secs_f64(fault.extra);
            }
            let nominal = match self.tasks[i].dur {
                DurKind::Fixed(secs) => secs,
                DurKind::ReadEmbedded { compute, send, overhead, .. } => compute + send + overhead,
            };
            return SimTime::from_secs_f64(GAP_FORWARD_FRACTION * nominal);
        }
        let base = match self.tasks[i].dur {
            DurKind::Fixed(secs) => SimTime::from_secs_f64(secs),
            DurKind::ReadEmbedded { compute, send, overhead, overlap, cache: Some(c) } => {
                let _ = overlap; // the store tier forces server-side overlap
                if c.warm_after.is_some_and(|n| j >= n) {
                    // Warm hit: the cube comes off the server cache at
                    // copy bandwidth; the stripe servers stay idle.
                    SimTime::from_secs_f64(c.hit_time + compute + send + overhead)
                } else {
                    // Cold miss: the server-side prefetcher posted the
                    // read when the previous CPI started, so it overlaps
                    // compute even without client `iread`; the cube still
                    // crosses the cache copy on its way up.
                    let post = self.prev_start[i].unwrap_or(t0);
                    let read_done = self.read_done(post, j);
                    let work = read_done.max(t0 + SimTime::from_secs_f64(c.hit_time + compute));
                    work.saturating_sub(t0) + SimTime::from_secs_f64(send + overhead)
                }
            }
            DurKind::ReadEmbedded { compute, send, overhead, overlap, cache: None } => {
                let post = if overlap { self.prev_start[i].unwrap_or(t0) } else { t0 };
                let read_done = self.read_done(post, j);
                let work = if overlap {
                    // iread: the read proceeds concurrently with compute.
                    read_done.max(t0 + SimTime::from_secs_f64(compute))
                } else {
                    // Synchronous read, then compute.
                    read_done.max(t0) + SimTime::from_secs_f64(compute)
                };
                work.saturating_sub(t0) + SimTime::from_secs_f64(send + overhead)
            }
        };
        if i == self.source_idx && fault.extra > 0.0 {
            // Transient fault cleared within the retry budget: the read
            // succeeds after charging detection time and backoff.
            base + SimTime::from_secs_f64(fault.extra)
        } else {
            base
        }
    }
}

fn try_start(eng: &mut Engine<SimState>, st: &mut SimState, i: usize, j: u64) {
    if j >= st.cpis || st.next_cpi[i] != j {
        return;
    }
    // Rendezvous backpressure: a producer's send for instance j-1 completes
    // only when the consumer posts its receive (i.e. starts j-1), so the
    // producer may begin instance j only once every spatial consumer has
    // started instance j-1. This bounds run-ahead to one CPI, like the
    // blocking large-message sends of NX/MPL.
    for k in 0..st.tasks.len() {
        if st.tasks[k].spatial_preds.contains(&i) && st.next_cpi[k] < j {
            return;
        }
    }
    if st.remaining.get(&(i, j)).copied().unwrap_or_else(|| st.deps_count(i, j)) > 0 {
        return;
    }
    let input_ready = st.arrival.get(&(i, j)).copied().unwrap_or(SimTime::ZERO);
    if st.completed[i] != j {
        return; // previous instance still running
    }
    let own_ready = if j == 0 {
        SimTime::ZERO
    } else {
        st.prev_end[i].expect("completed == j > 0 implies a recorded end")
    };
    let t0 = input_ready.max(own_ready).max(eng.now());
    let dur = st.duration(i, j, t0);
    let end = t0 + dur;
    st.next_cpi[i] = j + 1;
    st.prev_start[i] = Some(t0);
    if j >= st.warmup {
        st.durations[i].record(dur.as_secs_f64());
    }
    if i == st.source_idx {
        st.source_start[j as usize] = t0;
    }
    if let Some(trace) = st.trace.as_mut() {
        trace.push(TraceEntry { task: i, cpi: j, start: t0.as_secs_f64(), end: end.as_secs_f64() });
    }
    eng.schedule_at(end, move |eng, st| on_complete(eng, st, i, j));
    // Starting this instance releases the rendezvous hold on our producers.
    let preds = st.tasks[i].spatial_preds.clone();
    for p in preds {
        let next = st.next_cpi[p];
        try_start(eng, st, p, next);
    }
}

fn on_complete(eng: &mut Engine<SimState>, st: &mut SimState, i: usize, j: u64) {
    let now = eng.now();
    st.prev_end[i] = Some(now);
    st.completed[i] = j + 1;
    if i == st.sink_idx {
        st.sink_end[j as usize] = now;
    }
    // Notify consumers: spatial successors at the same CPI, temporal
    // successors at the next CPI; also our own next instance.
    let n = st.tasks.len();
    for k in 0..n {
        if st.tasks[k].spatial_preds.contains(&i) {
            deliver(eng, st, k, j, now);
        }
        if st.tasks[k].temporal_preds.contains(&i) && j + 1 < st.cpis {
            deliver(eng, st, k, j + 1, now);
        }
    }
    try_start(eng, st, i, j + 1);
}

fn deliver(eng: &mut Engine<SimState>, st: &mut SimState, k: usize, j: u64, at: SimTime) {
    let rem = st.remaining.entry((k, j)).or_insert_with(|| {
        let t = &st.tasks[k];
        t.spatial_preds.len() + if j > 0 { t.temporal_preds.len() } else { 0 }
    });
    *rem = rem.saturating_sub(1);
    let a = st.arrival.entry((k, j)).or_insert(SimTime::ZERO);
    *a = (*a).max(at);
    try_start(eng, st, k, j);
}

impl DesExperiment {
    /// Builds the simulated task vector with modeled durations.
    fn build_tasks(&self) -> (Vec<SimTask>, usize) {
        let w = StapWorkload::derive(self.shape);
        let a = self
            .assignment_override
            .clone()
            .unwrap_or_else(|| assign_nodes(&w, &TaskId::SEVEN, self.compute_nodes));
        let p = |t: TaskId| a.nodes_for(t).expect("task assigned");
        let m = &self.machine;
        // Aggregate per-task capacity: the node count on homogeneous pools,
        // the packed classes' summed rates when the assignment carries a
        // class breakdown (planner output on heterogeneous machines).
        let cap = |t: TaskId| a.capacity_for(t, &m.classes).expect("task assigned");
        let read_nodes = if self.io == IoStrategy::SeparateTask { SEPARATE_IO_NODES } else { 0 };
        let df_pred = read_nodes;
        let df_succ = p(TaskId::EasyWeight)
            + p(TaskId::HardWeight)
            + p(TaskId::EasyBeamform)
            + p(TaskId::HardBeamform);

        // Static estimate of one CPI cube's read completion, used for the
        // predicted phase split of whichever task carries the read.
        let read_est =
            parallel_read_completion(&m.fs, &[(0, self.shape.cube_bytes())], m.open_mode);

        let mut tasks: Vec<SimTask> = Vec::new();
        // Optional read task (index 0 when present).
        if self.io == IoStrategy::SeparateTask {
            let send = comm_time(m, w.output_bytes(TaskId::Read), read_nodes, p(TaskId::Doppler));
            let overhead = m.overhead(read_nodes);
            tasks.push(SimTask {
                label: "parallel read".into(),
                id: TaskId::Read,
                nodes: read_nodes,
                // The read task also uses `iread` where available: the
                // read for CPI j+1 overlaps the send of CPI j.
                dur: DurKind::ReadEmbedded {
                    compute: 0.0,
                    send,
                    overhead,
                    overlap: m.can_overlap_io(),
                    cache: None,
                },
                phases: PhaseBreakdown { read: read_est, recv: 0.0, compute: overhead, send },
                spatial_preds: vec![],
                temporal_preds: vec![],
            });
        }
        let read_idx = if tasks.is_empty() { None } else { Some(0usize) };

        // Doppler.
        let df_nodes = p(TaskId::Doppler);
        let df_idx = tasks.len();
        let capd = cap(TaskId::Doppler);
        let (df_dur, df_phases) = match self.io {
            IoStrategy::SeparateTask => {
                let c = task_time_cap(m, &w, TaskId::Doppler, capd, df_pred, df_succ);
                (DurKind::Fixed(c.total()), PhaseBreakdown::from_costs(c))
            }
            io => {
                let compute = m.compute_time_cap(w.flops(TaskId::Doppler), capd.compute);
                let send = comm_time_cap(m, w.output_bytes(TaskId::Doppler), capd.net, df_succ);
                let overhead = m.overhead(df_nodes);
                let cache = cache_sim(io, self.shape.cube_bytes());
                // The phase split charges the steady-state read: the hit
                // time once the cache is warm, the striped read otherwise.
                let read_phase = match cache {
                    Some(c) if c.warm_after.is_some() => c.hit_time,
                    _ => read_est,
                };
                (
                    DurKind::ReadEmbedded {
                        compute,
                        send,
                        overhead,
                        overlap: m.can_overlap_io(),
                        cache,
                    },
                    PhaseBreakdown {
                        read: read_phase,
                        recv: 0.0,
                        compute: compute + overhead,
                        send,
                    },
                )
            }
        };
        tasks.push(SimTask {
            label: TaskId::Doppler.label().into(),
            id: TaskId::Doppler,
            nodes: df_nodes,
            dur: df_dur,
            phases: df_phases,
            spatial_preds: read_idx.into_iter().collect(),
            temporal_preds: vec![],
        });

        // Weights (spatial consumers of Doppler output in message timing;
        // their results feed the beamformers temporally).
        let ew_idx = tasks.len();
        let cew = task_time_cap(
            m,
            &w,
            TaskId::EasyWeight,
            cap(TaskId::EasyWeight),
            df_nodes,
            p(TaskId::EasyBeamform),
        );
        tasks.push(SimTask {
            label: TaskId::EasyWeight.label().into(),
            id: TaskId::EasyWeight,
            nodes: p(TaskId::EasyWeight),
            dur: DurKind::Fixed(cew.total()),
            phases: PhaseBreakdown::from_costs(cew),
            spatial_preds: vec![df_idx],
            temporal_preds: vec![],
        });
        let hw_idx = tasks.len();
        let chw = task_time_cap(
            m,
            &w,
            TaskId::HardWeight,
            cap(TaskId::HardWeight),
            df_nodes,
            p(TaskId::HardBeamform),
        );
        tasks.push(SimTask {
            label: TaskId::HardWeight.label().into(),
            id: TaskId::HardWeight,
            nodes: p(TaskId::HardWeight),
            dur: DurKind::Fixed(chw.total()),
            phases: PhaseBreakdown::from_costs(chw),
            spatial_preds: vec![df_idx],
            temporal_preds: vec![],
        });

        // Beamformers: spatial on Doppler, temporal on their weight task.
        let tail_pred_nodes = p(TaskId::EasyBeamform) + p(TaskId::HardBeamform);
        let (pc_nodes, cf_nodes) = (p(TaskId::PulseCompression), p(TaskId::Cfar));
        let tail_first_nodes =
            if self.tail == TailStructure::Combined { pc_nodes + cf_nodes } else { pc_nodes };
        let ebf_idx = tasks.len();
        let cebf = task_time_cap(
            m,
            &w,
            TaskId::EasyBeamform,
            cap(TaskId::EasyBeamform),
            df_nodes,
            tail_first_nodes,
        );
        tasks.push(SimTask {
            label: TaskId::EasyBeamform.label().into(),
            id: TaskId::EasyBeamform,
            nodes: p(TaskId::EasyBeamform),
            dur: DurKind::Fixed(cebf.total()),
            phases: PhaseBreakdown::from_costs(cebf),
            spatial_preds: vec![df_idx],
            temporal_preds: vec![ew_idx],
        });
        let hbf_idx = tasks.len();
        let chbf = task_time_cap(
            m,
            &w,
            TaskId::HardBeamform,
            cap(TaskId::HardBeamform),
            df_nodes,
            tail_first_nodes,
        );
        tasks.push(SimTask {
            label: TaskId::HardBeamform.label().into(),
            id: TaskId::HardBeamform,
            nodes: p(TaskId::HardBeamform),
            dur: DurKind::Fixed(chbf.total()),
            phases: PhaseBreakdown::from_costs(chbf),
            spatial_preds: vec![df_idx],
            temporal_preds: vec![hw_idx],
        });

        // Tail.
        match self.tail {
            TailStructure::Split => {
                let pc_idx = tasks.len();
                let cpc = task_time_cap(
                    m,
                    &w,
                    TaskId::PulseCompression,
                    cap(TaskId::PulseCompression),
                    tail_pred_nodes,
                    cf_nodes,
                );
                tasks.push(SimTask {
                    label: TaskId::PulseCompression.label().into(),
                    id: TaskId::PulseCompression,
                    nodes: pc_nodes,
                    dur: DurKind::Fixed(cpc.total()),
                    phases: PhaseBreakdown::from_costs(cpc),
                    spatial_preds: vec![ebf_idx, hbf_idx],
                    temporal_preds: vec![],
                });
                let ccf = task_time_cap(m, &w, TaskId::Cfar, cap(TaskId::Cfar), pc_nodes, 1);
                tasks.push(SimTask {
                    label: TaskId::Cfar.label().into(),
                    id: TaskId::Cfar,
                    nodes: cf_nodes,
                    dur: DurKind::Fixed(ccf.total()),
                    phases: PhaseBreakdown::from_costs(ccf),
                    spatial_preds: vec![pc_idx],
                    temporal_preds: vec![],
                });
            }
            TailStructure::Combined => {
                let ctail = combined_task_time_cap(
                    m,
                    &w,
                    TaskId::PulseCompression,
                    TaskId::Cfar,
                    cap(TaskId::PulseCompression).merge(cap(TaskId::Cfar)),
                    tail_pred_nodes,
                    1,
                );
                tasks.push(SimTask {
                    label: "PC + CFAR".into(),
                    id: TaskId::PulseCompression,
                    nodes: pc_nodes + cf_nodes,
                    dur: DurKind::Fixed(ctail.total()),
                    phases: PhaseBreakdown::from_costs(ctail),
                    spatial_preds: vec![ebf_idx, hbf_idx],
                    temporal_preds: vec![],
                });
            }
        }
        (tasks, read_nodes)
    }

    /// Runs the experiment cell and also returns the per-instance
    /// execution trace (for Gantt-style visualization).
    pub fn run_traced(&self) -> (DesResult, Vec<TraceEntry>) {
        self.run_inner(true)
    }

    /// Runs the experiment cell.
    pub fn run(&self) -> DesResult {
        self.run_inner(false).0
    }

    fn run_inner(&self, traced: bool) -> (DesResult, Vec<TraceEntry>) {
        let (tasks, read_nodes) = self.build_tasks();
        let n = tasks.len();
        let fs = &self.machine.fs;
        let io_service_latency = fs.request_latency.as_secs_f64()
            + match self.machine.open_mode {
                OpenMode::Async => 0.0,
                OpenMode::Unix => fs.unix_mode_penalty.as_secs_f64(),
            };
        let source_idx = 0usize; // read task when present, else Doppler
        let sink_idx = n - 1;
        let mut faults: Vec<CpiFault> = match &self.faults {
            Some(model) => (0..self.cpis).map(|j| model.consequence(j)).collect(),
            None => Vec::new(),
        };
        let mut read_scale = Vec::new();
        if let Some(model) = &self.faults {
            if model.has_fleet_consequences() {
                read_scale = vec![1.0f64; self.cpis as usize];
                // The source task's nominal per-CPI time prices promotion,
                // restore, and replay in units the pipeline understands.
                let nominal = tasks[source_idx].phases.total();
                model.apply_fleet(
                    self.cpis,
                    fs.stripe_factor,
                    nominal,
                    &mut faults,
                    &mut read_scale,
                );
            }
        }
        let mut st = SimState {
            remaining: HashMap::new(),
            arrival: HashMap::new(),
            prev_end: vec![None; n],
            completed: vec![0; n],
            prev_start: vec![None; n],
            next_cpi: vec![0; n],
            io: FcfsResource::new("stripe servers", fs.stripe_factor),
            io_layout: StripeLayout::new(fs.stripe_unit, fs.stripe_factor),
            io_service_latency,
            io_bandwidth: fs.server_bandwidth,
            cube_bytes: self.shape.cube_bytes(),
            cpis: self.cpis,
            warmup: self.warmup,
            durations: (0..n).map(|_| Tally::new()).collect(),
            source_start: vec![SimTime::ZERO; self.cpis as usize],
            sink_end: vec![SimTime::ZERO; self.cpis as usize],
            source_idx,
            sink_idx,
            trace: traced.then(Vec::new),
            faults,
            read_scale,
            tasks,
        };
        let mut eng = Engine::new();
        // Kick off every task's first instance (those with deps wait).
        eng.schedule_at(SimTime::ZERO, move |eng, st: &mut SimState| {
            for i in 0..st.tasks.len() {
                try_start(eng, st, i, 0);
            }
        });
        let horizon = eng.run(&mut st);

        // Steady-state metrics.
        let w0 = self.warmup as usize;
        let last = self.cpis as usize - 1;
        let tput =
            (last - w0) as f64 / (st.sink_end[last].as_secs_f64() - st.sink_end[w0].as_secs_f64());
        let lat = (w0..=last)
            .map(|j| st.sink_end[j].as_secs_f64() - st.source_start[j].as_secs_f64())
            .sum::<f64>()
            / (last - w0 + 1) as f64;
        let rows: Vec<TaskRow> = st
            .tasks
            .iter()
            .zip(&st.durations)
            .map(|(t, d)| TaskRow {
                label: t.label.clone(),
                id: t.id,
                nodes: t.nodes,
                time: d.mean(),
                phases: t.phases,
            })
            .collect();
        // Fault accounting: dropped CPIs, retries charged, and the
        // delivered (surviving) steady-state throughput.
        let dropped: Vec<u64> = (0..self.cpis)
            .filter(|&j| st.faults.get(j as usize).is_some_and(|f| f.dropped))
            .collect();
        let retries: u64 = st.faults.iter().map(|f| f.retries).sum();
        let steady = self.cpis.saturating_sub(self.warmup);
        let dropped_steady = dropped.iter().filter(|&&j| j >= self.warmup).count() as u64;
        let delivered = if steady > 0 {
            tput * (steady - dropped_steady.min(steady)) as f64 / steady as f64
        } else {
            tput
        };
        let result = DesResult {
            machine: self.machine.name.clone(),
            total_nodes: self.compute_nodes + read_nodes,
            tasks: rows,
            throughput: tput,
            latency: lat,
            io_utilization: st.io.utilization(horizon),
            dropped,
            retries,
            delivered_throughput: delivered,
        };
        (result, st.trace.take().unwrap_or_default())
    }
}

/// Renders a text Gantt chart of a traced run: one lane per task, one
/// character cell per `resolution` seconds, digits = CPI mod 10.
pub fn render_gantt(result: &DesResult, trace: &[TraceEntry], max_time: f64) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let width = 96usize;
    let resolution = max_time / width as f64;
    let _ = writeln!(
        s,
        "Gantt ({}; {:.1} ms per column; digits are CPI numbers mod 10):",
        result.machine,
        resolution * 1e3
    );
    for (i, task) in result.tasks.iter().enumerate() {
        let mut lane = vec![b'.'; width];
        for e in trace.iter().filter(|e| e.task == i && e.start < max_time) {
            let c0 = (e.start / resolution) as usize;
            let c1 = ((e.end / resolution) as usize).min(width - 1);
            let digit = b'0' + (e.cpi % 10) as u8;
            for cell in lane.iter_mut().take(c1 + 1).skip(c0) {
                *cell = digit;
            }
        }
        let _ = writeln!(s, "{:<16}|{}|", task.label, String::from_utf8_lossy(&lane));
    }
    s
}

/// Converts a traced virtual-time run into the same span format the real
/// pipeline's tracer emits: each task instance's interval is split into
/// Read → Recv → Compute → Send spans in pipeline order, proportionally to
/// the task's predicted [`PhaseBreakdown`]. A task with an all-zero
/// breakdown yields a single Compute span covering the whole interval.
///
/// The spans feed the same exporters as measured runs, so a DES prediction
/// can be opened in the Chrome trace viewer or tabulated next to a real
/// trace (`node` is always 0: the simulator models each task's node group
/// as one lane).
pub fn des_spans(result: &DesResult, trace: &[TraceEntry]) -> Vec<Span> {
    const ORDER: [Phase; 4] = [Phase::Read, Phase::Recv, Phase::Compute, Phase::Send];
    let mut spans = Vec::with_capacity(trace.len() * 2);
    for e in trace {
        let Some(row) = result.tasks.get(e.task) else { continue };
        let b = row.phases;
        let weights = [b.read, b.recv, b.compute, b.send];
        let total: f64 = weights.iter().sum();
        let len = e.end - e.start;
        if total <= 0.0 || len <= 0.0 {
            spans.push(Span {
                stage: e.task,
                node: 0,
                cpi: e.cpi,
                attempt: 0,
                phase: Phase::Compute,
                start: e.start,
                end: e.end,
            });
            continue;
        }
        let mut cursor = e.start;
        for (k, (&phase, &wgt)) in ORDER.iter().zip(&weights).enumerate() {
            if wgt <= 0.0 {
                continue;
            }
            // The last non-empty phase absorbs rounding so spans tile the
            // instance interval exactly.
            let end = if weights[k + 1..].iter().all(|&w| w <= 0.0) {
                e.end
            } else {
                cursor + len * wgt / total
            };
            spans.push(Span {
                stage: e.task,
                node: 0,
                cpi: e.cpi,
                attempt: 0,
                phase,
                start: cursor,
                end,
            });
            cursor = end;
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(machine: MachineModel, io: IoStrategy, tail: TailStructure, nodes: usize) -> DesResult {
        DesExperiment::new(machine, io, tail, nodes).run()
    }

    #[test]
    fn phase_breakdowns_attribute_read_to_the_read_bearing_task() {
        let sep = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::SeparateTask,
            TailStructure::Split,
            50,
        );
        let r = sep.run();
        assert!(r.tasks[0].phases.read > 0.0, "separate read task carries the read phase");
        for row in &r.tasks[1..] {
            assert_eq!(row.phases.read, 0.0, "{} must not carry a read phase", row.label);
            // Fixed tasks: the predicted split tiles T_i exactly.
            assert!(
                (row.phases.total() - row.time).abs() < 1e-9 * row.time.max(1.0),
                "{}: {} != {}",
                row.label,
                row.phases.total(),
                row.time
            );
        }
        let emb = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            50,
        );
        let r = emb.run();
        assert!(r.tasks[0].phases.read > 0.0, "embedded design charges the read to Doppler");
    }

    #[test]
    fn des_spans_tile_every_traced_instance() {
        let exp = DesExperiment::new(
            MachineModel::paragon(16),
            IoStrategy::SeparateTask,
            TailStructure::Combined,
            25,
        );
        let (result, trace) = exp.run_traced();
        let spans = des_spans(&result, &trace);
        assert!(!spans.is_empty());
        for e in &trace {
            let mine: Vec<&Span> =
                spans.iter().filter(|s| s.stage == e.task && s.cpi == e.cpi).collect();
            assert!(!mine.is_empty(), "task {} cpi {} has no spans", e.task, e.cpi);
            // Spans appear in pipeline phase order and tile [start, end].
            assert_eq!(mine[0].start, e.start);
            assert_eq!(mine.last().expect("nonempty").end, e.end);
            for pair in mine.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
                assert!(pair[0].phase.index() < pair[1].phase.index());
            }
        }
        // The read task's spans include a Read phase.
        assert!(spans.iter().any(|s| s.stage == 0 && s.phase == Phase::Read));
    }

    #[test]
    fn paragon_sf64_scales_nearly_linearly() {
        let t25 = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 25);
        let t50 = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 50);
        let t100 = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 100);
        assert!(t50.throughput / t25.throughput > 1.6, "{} {}", t25.throughput, t50.throughput);
        assert!(t100.throughput / t50.throughput > 1.5, "{} {}", t50.throughput, t100.throughput);
        // Latency halves-ish each doubling.
        assert!(t50.latency < 0.7 * t25.latency);
        assert!(t100.latency < 0.7 * t50.latency);
    }

    #[test]
    fn paragon_sf16_bottlenecks_at_100_nodes() {
        // The paper: "the throughput scales well in the first two cases,
        // but degrades when the total number of nodes goes up".
        let small =
            cell(MachineModel::paragon(16), IoStrategy::Embedded, TailStructure::Split, 100);
        let large =
            cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 100);
        assert!(
            small.throughput < 0.8 * large.throughput,
            "sf16 {} vs sf64 {}",
            small.throughput,
            large.throughput
        );
        // At 50 nodes the two file systems are approximately the same.
        let s50 = cell(MachineModel::paragon(16), IoStrategy::Embedded, TailStructure::Split, 50);
        let l50 = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 50);
        assert!((s50.throughput / l50.throughput) > 0.9);
        // And the latency is NOT significantly affected by the bottleneck.
        assert!(small.latency < 1.35 * large.latency);
    }

    #[test]
    fn sp_does_not_scale_like_paragon() {
        let sp25 = cell(MachineModel::sp(), IoStrategy::Embedded, TailStructure::Split, 25);
        let sp100 = cell(MachineModel::sp(), IoStrategy::Embedded, TailStructure::Split, 100);
        let pg25 = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 25);
        let pg100 =
            cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 100);
        let sp_speedup = sp100.throughput / sp25.throughput;
        let pg_speedup = pg100.throughput / pg25.throughput;
        assert!(sp_speedup < 0.7 * pg_speedup, "SP speedup {sp_speedup} vs Paragon {pg_speedup}");
    }

    #[test]
    fn separate_io_task_same_throughput_worse_latency() {
        // Paragon (async reads): throughput approximately unchanged, the
        // paper's observation — the max-time task is the same in both
        // designs.
        for m in [MachineModel::paragon(16), MachineModel::paragon(64)] {
            let emb = cell(m.clone(), IoStrategy::Embedded, TailStructure::Split, 50);
            let sep = cell(m, IoStrategy::SeparateTask, TailStructure::Split, 50);
            let ratio = sep.throughput / emb.throughput;
            assert!((0.85..1.15).contains(&ratio), "throughput ratio {ratio}");
            assert!(sep.latency > emb.latency, "{} !> {}", sep.latency, emb.latency);
        }
        // SP (sync-only PIOFS): the embedded design serializes read+compute
        // inside the Doppler task, so offloading the read to its own task
        // can only help throughput — but never at the old latency
        // (documented deviation discussion in EXPERIMENTS.md).
        let emb = cell(MachineModel::sp(), IoStrategy::Embedded, TailStructure::Split, 50);
        let sep = cell(MachineModel::sp(), IoStrategy::SeparateTask, TailStructure::Split, 50);
        let ratio = sep.throughput / emb.throughput;
        assert!((0.9..1.4).contains(&ratio), "SP throughput ratio {ratio}");
        assert!(sep.latency > emb.latency, "{} !> {}", sep.latency, emb.latency);
    }

    #[test]
    fn combining_tail_improves_latency_not_throughput() {
        for nodes in [25usize, 50, 100] {
            let split =
                cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, nodes);
            let comb = cell(
                MachineModel::paragon(64),
                IoStrategy::Embedded,
                TailStructure::Combined,
                nodes,
            );
            assert!(comb.latency < split.latency, "nodes={nodes}");
            assert!(comb.throughput > 0.95 * split.throughput, "nodes={nodes}");
            assert_eq!(comb.total_nodes, split.total_nodes);
        }
    }

    #[test]
    fn latency_improvement_decreases_with_node_count() {
        let pct = |nodes| {
            let split =
                cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, nodes);
            let comb = cell(
                MachineModel::paragon(64),
                IoStrategy::Embedded,
                TailStructure::Combined,
                nodes,
            );
            (split.latency - comb.latency) / split.latency * 100.0
        };
        let (p25, p50, p100) = (pct(25), pct(50), pct(100));
        assert!(p25 > 0.0 && p50 > 0.0 && p100 > 0.0);
        assert!(p25 >= p50 && p50 >= p100, "{p25} {p50} {p100}");
    }

    #[test]
    fn measured_metrics_agree_with_equations() {
        let r = cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 50);
        let a_tput = r.analytic_throughput();
        let a_lat = r.analytic_latency();
        assert!((r.throughput / a_tput - 1.0).abs() < 0.15, "{} vs {}", r.throughput, a_tput);
        assert!((r.latency / a_lat - 1.0).abs() < 0.25, "{} vs {}", r.latency, a_lat);
    }

    #[test]
    fn io_utilization_higher_on_small_stripe_factor() {
        let small =
            cell(MachineModel::paragon(16), IoStrategy::Embedded, TailStructure::Split, 100);
        let large =
            cell(MachineModel::paragon(64), IoStrategy::Embedded, TailStructure::Split, 100);
        assert!(small.io_utilization > large.io_utilization);
    }

    #[test]
    fn trace_intervals_are_serial_per_task_and_complete() {
        let exp = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            25,
        );
        let (result, trace) = exp.run_traced();
        assert_eq!(trace.len() as u64, 7 * exp.cpis, "one entry per instance");
        for task in 0..7 {
            let mut intervals: Vec<_> = trace.iter().filter(|e| e.task == task).collect();
            intervals.sort_by_key(|e| e.cpi);
            for w in intervals.windows(2) {
                assert!(w[0].cpi + 1 == w[1].cpi);
                assert!(w[1].start >= w[0].end - 1e-12, "task {task} instances overlap: {w:?}");
            }
        }
        let g = render_gantt(&result, &trace, 3.0);
        assert!(g.contains("Doppler filter"));
        assert!(g.lines().count() >= 8);
    }

    #[test]
    fn untraced_run_matches_traced_run() {
        let exp = DesExperiment::new(
            MachineModel::sp(),
            IoStrategy::SeparateTask,
            TailStructure::Combined,
            50,
        );
        let plain = exp.run();
        let (traced, _) = exp.run_traced();
        assert_eq!(plain.throughput, traced.throughput);
        assert_eq!(plain.latency, traced.latency);
    }

    #[test]
    fn hetero_class_packing_speeds_up_the_des() {
        // A packed assignment on the mixed pool (every class ≥ 1.0× base)
        // must simulate at least as fast as the same node counts taken at
        // base rate.
        use stap_model::assignment::pack_classes;
        use stap_model::workload::StapWorkload;
        let m = MachineModel::paragon_hetero().with_stripe_factor(64);
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let a = assign_nodes(&w, &TaskId::SEVEN, 100);
        let packed = pack_classes(&w, &a, &m.classes);
        let mut base =
            DesExperiment::new(m.clone(), IoStrategy::Embedded, TailStructure::Split, 100);
        base.assignment_override = Some(a);
        let mut het = base.clone();
        het.assignment_override = Some(packed);
        let (rb, rh) = (base.run(), het.run());
        assert!(rh.throughput >= rb.throughput - 1e-12, "{} < {}", rh.throughput, rb.throughput);
        assert!(rh.latency <= rb.latency + 1e-12, "{} > {}", rh.latency, rb.latency);
    }

    #[test]
    fn determinism() {
        let a = cell(MachineModel::sp(), IoStrategy::Embedded, TailStructure::Split, 25);
        let b = cell(MachineModel::sp(), IoStrategy::Embedded, TailStructure::Split, 25);
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.latency, b.latency);
    }

    fn skip_model(source: FaultSource) -> DesFaultModel {
        DesFaultModel::transient(source, u32::MAX, 0.001, 2, 0.001)
    }

    #[test]
    fn fault_free_model_changes_nothing() {
        let mut exp = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            50,
        );
        let clean = exp.run();
        exp.faults = Some(skip_model(FaultSource::Random { rate: 0.0, seed: 7 }));
        let faulted = exp.run();
        assert_eq!(clean.throughput, faulted.throughput);
        assert_eq!(clean.latency, faulted.latency);
        assert!(faulted.dropped.is_empty());
        assert_eq!(faulted.retries, 0);
        assert_eq!(faulted.delivered_throughput, faulted.throughput);
    }

    #[test]
    fn window_faults_drop_the_exact_cpis() {
        let mut exp = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            50,
        );
        exp.faults = Some(skip_model(FaultSource::Windows(vec![
            FaultWindow::new(12, 13),
            FaultWindow::new(40, 41),
        ])));
        let r = exp.run();
        assert_eq!(r.dropped, vec![12, 40]);
        // Each drop burns the full retry budget.
        assert_eq!(r.retries, 2 * 2);
        assert!(r.delivered_throughput < r.throughput);
    }

    #[test]
    fn retry_budget_clears_transient_faults_without_drops() {
        let mut exp = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            50,
        );
        let mut model = skip_model(FaultSource::Windows(vec![FaultWindow::new(20, 21)]));
        model.fail_attempts = 1; // one failure, then the retry succeeds
        exp.faults = Some(model);
        let r = exp.run();
        assert!(r.dropped.is_empty());
        assert_eq!(r.retries, 1);
        assert_eq!(r.delivered_throughput, r.throughput);
    }

    #[test]
    fn higher_fault_rate_degrades_delivered_throughput() {
        let run_at = |rate: f64| {
            let mut exp = DesExperiment::new(
                MachineModel::paragon(64),
                IoStrategy::Embedded,
                TailStructure::Split,
                50,
            );
            exp.cpis = 256;
            exp.warmup = 16;
            exp.faults = Some(skip_model(FaultSource::Random { rate, seed: 42 }));
            exp.run()
        };
        let clean = run_at(0.0);
        let light = run_at(0.05);
        let heavy = run_at(0.3);
        assert!(light.delivered_throughput < clean.delivered_throughput);
        assert!(heavy.delivered_throughput < light.delivered_throughput);
        assert!(heavy.dropped.len() > light.dropped.len());
    }

    fn fleet_cell(fleet: Vec<FleetEvent>, redundancy: Redundancy) -> DesResult {
        let mut exp = DesExperiment::new(
            MachineModel::paragon(64),
            IoStrategy::Embedded,
            TailStructure::Split,
            50,
        );
        let mut model = skip_model(FaultSource::Random { rate: 0.0, seed: 7 });
        model.fleet = fleet;
        model.redundancy = redundancy;
        exp.faults = Some(model);
        exp.run()
    }

    #[test]
    fn bare_node_crash_truncates_the_run() {
        let clean = fleet_cell(vec![], Redundancy::None);
        let crashed = fleet_cell(vec![FleetEvent::NodeCrash { node: 3, at: 32 }], Redundancy::None);
        // Every CPI from the crash onward is lost. Delivered throughput
        // only shrinks (gap bubbles forward faster than real CPIs, so the
        // raw slot rate rises — the surviving fraction must still win).
        assert_eq!(crashed.dropped, (32..64).collect::<Vec<u64>>());
        assert!(crashed.delivered_throughput < clean.delivered_throughput);
    }

    #[test]
    fn replica_promotion_survives_the_crash() {
        let clean = fleet_cell(vec![], Redundancy::None);
        let crash = vec![FleetEvent::NodeCrash { node: 3, at: 32 }];
        let promoted = fleet_cell(crash.clone(), Redundancy::Replicated { spares: 1 });
        // Nothing dropped: the spare absorbed the crash at a bounded cost.
        assert!(promoted.dropped.is_empty());
        assert!(promoted.delivered_throughput > 0.8 * clean.delivered_throughput);
        // A second crash with only one spare is fatal again.
        let double = vec![
            FleetEvent::NodeCrash { node: 3, at: 20 },
            FleetEvent::NodeCrash { node: 9, at: 40 },
        ];
        let exhausted = fleet_cell(double, Redundancy::Replicated { spares: 1 });
        assert_eq!(exhausted.dropped.first(), Some(&40));
    }

    #[test]
    fn checkpoint_replay_is_bounded_by_the_interval() {
        let crash = vec![FleetEvent::NodeCrash { node: 3, at: 33 }];
        let tight = fleet_cell(crash.clone(), Redundancy::Checkpointed { interval: 4 });
        let loose = fleet_cell(crash, Redundancy::Checkpointed { interval: 32 });
        assert!(tight.dropped.is_empty() && loose.dropped.is_empty());
        // CPI 33 replays 1 CPI under interval 4 but 1 CPI under interval 32
        // too (33 % 32 = 1); distinguish via a crash deep into the window.
        let deep = vec![FleetEvent::NodeCrash { node: 3, at: 31 }];
        let tight_deep = fleet_cell(deep.clone(), Redundancy::Checkpointed { interval: 4 });
        let loose_deep = fleet_cell(deep, Redundancy::Checkpointed { interval: 32 });
        // 31 % 4 = 3 replayed vs 31 % 32 = 31 replayed: the loose interval
        // pays a much larger recovery stall.
        assert!(loose_deep.latency > tight_deep.latency);
    }

    #[test]
    fn server_loss_degrades_reads_without_dropping_cpis() {
        let clean = fleet_cell(vec![], Redundancy::None);
        let lost =
            fleet_cell(vec![FleetEvent::ServerLoss { server: 5, from: 16 }], Redundancy::None);
        assert!(lost.dropped.is_empty());
        // Post-loss reads are served by sf-1 servers: strictly slower.
        assert!(lost.throughput <= clean.throughput);
        assert!(lost.latency >= clean.latency);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let run = || {
            fleet_cell(
                vec![
                    FleetEvent::ServerLoss { server: 2, from: 10 },
                    FleetEvent::NodeCrash { node: 1, at: 30 },
                ],
                Redundancy::Checkpointed { interval: 8 },
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.dropped, b.dropped);
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let run = || {
            let mut exp = DesExperiment::new(
                MachineModel::sp(),
                IoStrategy::SeparateTask,
                TailStructure::Split,
                50,
            );
            exp.faults = Some(skip_model(FaultSource::Random { rate: 0.1, seed: 99 }));
            exp.run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.delivered_throughput, b.delivered_throughput);
    }
}
