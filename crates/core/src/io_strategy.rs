//! The two I/O designs the paper evaluates, and the tail-structure choice
//! introduced by the task-combination study (§6).

/// Where the parallel file read happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStrategy {
    /// First design (paper §4.1, Fig. 3): "embeds the parallel I/O in the
    /// first task of the pipeline, i.e. in the Doppler filter processing
    /// task. The Doppler filter processing task now consists of three
    /// phases: reading data from files, computation, and sending phases."
    Embedded,
    /// Second design (paper §4.1, Fig. 4): "creates a new task for reading
    /// data and this task is added to the beginning of the pipeline." The
    /// pipeline then has eight tasks.
    SeparateTask,
}

impl IoStrategy {
    /// Display label used by the tables.
    pub fn label(self) -> &'static str {
        match self {
            IoStrategy::Embedded => "I/O embedded in Doppler filter task",
            IoStrategy::SeparateTask => "separate I/O task",
        }
    }

    /// Number of pipeline tasks this design yields (with a split tail).
    pub fn task_count(self) -> usize {
        match self {
            IoStrategy::Embedded => 7,
            IoStrategy::SeparateTask => 8,
        }
    }
}

/// Whether pulse compression and CFAR run as two tasks or one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStructure {
    /// Pulse compression and CFAR as separate pipeline tasks.
    Split,
    /// The two tasks combined into one, running on `P_5 + P_6` nodes —
    /// the paper's latency optimization (§6): `T_{5+6} < T_5 + T_6`.
    Combined,
}

impl TailStructure {
    /// Display label used by the tables.
    pub fn label(self) -> &'static str {
        match self {
            TailStructure::Split => "PC and CFAR split",
            TailStructure::Combined => "PC + CFAR combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_match_paper() {
        assert_eq!(IoStrategy::Embedded.task_count(), 7);
        assert_eq!(IoStrategy::SeparateTask.task_count(), 8);
    }

    #[test]
    fn labels_distinct() {
        assert_ne!(IoStrategy::Embedded.label(), IoStrategy::SeparateTask.label());
        assert_ne!(TailStructure::Split.label(), TailStructure::Combined.label());
    }
}
