//! The two I/O designs the paper evaluates, the tail-structure choice
//! introduced by the task-combination study (§6), and the smart-storage
//! strategies the `stap-store` tier adds on top of the embedded design.

/// Where the parallel file read happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStrategy {
    /// First design (paper §4.1, Fig. 3): "embeds the parallel I/O in the
    /// first task of the pipeline, i.e. in the Doppler filter processing
    /// task. The Doppler filter processing task now consists of three
    /// phases: reading data from files, computation, and sending phases."
    Embedded,
    /// Second design (paper §4.1, Fig. 4): "creates a new task for reading
    /// data and this task is added to the beginning of the pipeline." The
    /// pipeline then has eight tasks.
    SeparateTask,
    /// Embedded reads in front of an I/O-server read cache of `mb` MiB
    /// (`stap-store`): once the round-robin staging working set fits, the
    /// steady state serves cubes at copy bandwidth and skips the stripe
    /// servers.
    Cached {
        /// Cache budget in MiB.
        mb: u32,
    },
    /// Embedded reads with server-side read-ahead `depth` cubes deep
    /// (`stap-store`): misses overlap with the previous CPI's compute even
    /// when the client file system has no `iread`.
    Prefetch {
        /// Read-ahead depth in cubes.
        depth: u32,
    },
}

impl IoStrategy {
    /// Display label used by the tables (the strategy kind; parameters
    /// are carried by [`IoStrategy::describe`]).
    pub fn label(self) -> &'static str {
        match self {
            IoStrategy::Embedded => "I/O embedded in Doppler filter task",
            IoStrategy::SeparateTask => "separate I/O task",
            IoStrategy::Cached { .. } => "embedded I/O behind server read cache",
            IoStrategy::Prefetch { .. } => "embedded I/O with server read-ahead",
        }
    }

    /// Compact parameterized form, inverse of [`IoStrategy::parse`]:
    /// `embedded`, `separate`, `cached:64`, `prefetch:4`.
    pub fn describe(self) -> String {
        match self {
            IoStrategy::Embedded => "embedded".to_string(),
            IoStrategy::SeparateTask => "separate".to_string(),
            IoStrategy::Cached { mb } => format!("cached:{mb}"),
            IoStrategy::Prefetch { depth } => format!("prefetch:{depth}"),
        }
    }

    /// Parses the compact form accepted everywhere a strategy is named
    /// (CLI flags, serve scripts): `embedded`, `separate`, `cached:{MB}`,
    /// `prefetch:{D}`.
    pub fn parse(s: &str) -> Result<Self, String> {
        const GRAMMAR: &str = "embedded|separate|cached:MB|prefetch:D";
        match s {
            "embedded" => Ok(IoStrategy::Embedded),
            "separate" => Ok(IoStrategy::SeparateTask),
            _ => {
                if let Some(mb) = s.strip_prefix("cached:") {
                    return match mb.parse::<u32>() {
                        Ok(mb) if mb > 0 => Ok(IoStrategy::Cached { mb }),
                        _ => Err(format!("cache size in {s:?} must be a positive MiB count")),
                    };
                }
                if let Some(depth) = s.strip_prefix("prefetch:") {
                    return match depth.parse::<u32>() {
                        Ok(depth) if depth > 0 => Ok(IoStrategy::Prefetch { depth }),
                        _ => Err(format!("prefetch depth in {s:?} must be a positive cube count")),
                    };
                }
                Err(format!("unknown I/O strategy {s:?} (expected {GRAMMAR})"))
            }
        }
    }

    /// Number of pipeline tasks this design yields (with a split tail).
    /// The storage-tier strategies keep the embedded topology: the smarts
    /// live on the servers, not in an extra pipeline task.
    pub fn task_count(self) -> usize {
        match self {
            IoStrategy::SeparateTask => 8,
            _ => 7,
        }
    }

    /// Whether the strategy runs the `stap-store` tier in front of the
    /// file system (cache and/or prefetcher).
    pub fn uses_store_tier(self) -> bool {
        matches!(self, IoStrategy::Cached { .. } | IoStrategy::Prefetch { .. })
    }

    /// The cache byte budget the strategy implies: the configured cache
    /// for `cached:{MB}`, `in_flight` cubes' worth for `prefetch:{D}`
    /// (read-ahead needs somewhere to land), zero otherwise.
    pub fn cache_bytes(self, cube_bytes: usize) -> usize {
        match self {
            IoStrategy::Cached { mb } => (mb as usize) << 20,
            IoStrategy::Prefetch { depth } => (depth as usize + 1) * cube_bytes,
            _ => 0,
        }
    }

    /// The server-side read-ahead depth the strategy implies.
    pub fn readahead_depth(self) -> u32 {
        match self {
            IoStrategy::Prefetch { depth } => depth,
            // A plain cache still prefetches one ahead: the detector is
            // what keeps the cache warm for cubes never seen before.
            IoStrategy::Cached { .. } => 1,
            _ => 0,
        }
    }
}

/// Whether pulse compression and CFAR run as two tasks or one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStructure {
    /// Pulse compression and CFAR as separate pipeline tasks.
    Split,
    /// The two tasks combined into one, running on `P_5 + P_6` nodes —
    /// the paper's latency optimization (§6): `T_{5+6} < T_5 + T_6`.
    Combined,
}

impl TailStructure {
    /// Display label used by the tables.
    pub fn label(self) -> &'static str {
        match self {
            TailStructure::Split => "PC and CFAR split",
            TailStructure::Combined => "PC + CFAR combined",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_counts_match_paper() {
        assert_eq!(IoStrategy::Embedded.task_count(), 7);
        assert_eq!(IoStrategy::SeparateTask.task_count(), 8);
        assert_eq!(IoStrategy::Cached { mb: 64 }.task_count(), 7, "store tier keeps 7 tasks");
        assert_eq!(IoStrategy::Prefetch { depth: 4 }.task_count(), 7);
    }

    #[test]
    fn labels_distinct() {
        assert_ne!(IoStrategy::Embedded.label(), IoStrategy::SeparateTask.label());
        assert_ne!(TailStructure::Split.label(), TailStructure::Combined.label());
    }

    #[test]
    fn parse_and_describe_round_trip() {
        for s in ["embedded", "separate", "cached:64", "prefetch:4"] {
            assert_eq!(IoStrategy::parse(s).unwrap().describe(), s);
        }
        assert!(IoStrategy::parse("cached:0").is_err());
        assert!(IoStrategy::parse("cached:x").is_err());
        assert!(IoStrategy::parse("prefetch:0").is_err());
        let e = IoStrategy::parse("sideways").unwrap_err();
        assert!(e.contains("embedded|separate"), "{e}");
    }

    #[test]
    fn store_tier_parameters() {
        let cube = 1 << 20;
        assert_eq!(IoStrategy::Cached { mb: 64 }.cache_bytes(cube), 64 << 20);
        assert_eq!(IoStrategy::Prefetch { depth: 3 }.cache_bytes(cube), 4 * cube);
        assert_eq!(IoStrategy::Embedded.cache_bytes(cube), 0);
        assert_eq!(IoStrategy::Cached { mb: 64 }.readahead_depth(), 1);
        assert_eq!(IoStrategy::Prefetch { depth: 3 }.readahead_depth(), 3);
        assert!(IoStrategy::Cached { mb: 1 }.uses_store_tier());
        assert!(!IoStrategy::SeparateTask.uses_store_tier());
    }
}
