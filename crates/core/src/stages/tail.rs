//! The pipeline tail: pulse compression and CFAR as separate tasks, or the
//! combined task of the paper's §6 latency optimization.

use crate::messages::{Gap, Payload, RowBatch};
use crate::stages::{broadcast_gap, port, StapPlan};
use parking_lot::Mutex;
use stap_kernels::cfar::{cfar_row, CfarError, Detection};
use stap_kernels::pulse::PulseCompressor;
use stap_kernels::report::DetectionReport;
use stap_pipeline::schedule::{ScheduleMode, StealPool};
use stap_pipeline::stage::{Stage, StageCtx};
use stap_pipeline::timing::Phase;
use stap_pipeline::PipelineError;
use std::sync::Arc;

/// Where completed per-CPI detection reports land after the run.
pub type ReportSink = Arc<Mutex<Vec<DetectionReport>>>;

/// Receives this node's row batches from both beamformers. Every sender is
/// drained even when the CPI is a gap, so no message is left to collide
/// with a later CPI's tags; any gap turns the whole CPI into a gap.
fn recv_rows(
    ctx: &mut StageCtx<'_>,
    plan: &StapPlan,
    ranges: usize,
) -> Result<Payload<RowBatch>, PipelineError> {
    let roles = plan.roles;
    let mut all = plan.row_batch(ranges, plan.total_rows());
    let mut gap: Option<Gap> = None;
    for (stage, p) in [(roles.easy_bf, port::EASY_ROWS), (roles.hard_bf, port::HARD_ROWS)] {
        let nodes = ctx.topology.stage(stage).nodes;
        for n in 0..nodes {
            match ctx.recv_from::<Payload<RowBatch>>(stage, n, p)? {
                Payload::Data(batch) => all.extend(batch),
                Payload::Gap(g) => gap = Some(g),
            }
        }
    }
    Ok(match gap {
        Some(g) => Payload::Gap(g),
        None => Payload::Data(all),
    })
}

/// Runs CFAR over a batch and labels detections with bin/beam identity.
///
/// # Errors
/// [`CfarError::DegenerateWindow`] when the configured window can never
/// see a training cell in rows of this length — previously a silent empty
/// detection list indistinguishable from a quiet scene.
fn detect_batch(plan: &StapPlan, cpi: u64, batch: &RowBatch) -> Result<Vec<Detection>, CfarError> {
    plan.config.cfar.validate(batch.ranges)?;
    let mut dets = Vec::new();
    let mut powers = vec![0.0f64; batch.ranges];
    for i in 0..batch.len() {
        let (bin, beam) = batch.rows[i];
        for (o, z) in powers.iter_mut().zip(batch.row(i)) {
            *o = z.norm_sqr() as f64;
        }
        if let Some(tap) = &plan.tap {
            tap.record_row(cpi, bin, beam, powers.iter().sum());
        }
        for (range, power, noise) in cfar_row(&powers, plan.config.cfar) {
            dets.push(Detection {
                beam,
                bin,
                range,
                power,
                noise,
                snr_db: 10.0 * (power / noise).log10(),
            });
        }
    }
    Ok(dets)
}

/// Gathers partial detection reports at local node 0, which publishes the
/// merged report to the sink and, when configured, writes it back to the
/// parallel file system (the pipeline's output I/O).
///
/// A dropped CPI flows through the same gather as a gap payload; node 0
/// records the drop in the run's fault statistics and publishes no report
/// for that CPI.
fn publish_report(
    ctx: &mut StageCtx<'_>,
    plan: &StapPlan,
    stage_nodes: usize,
    local: usize,
    outcome: Result<Vec<Detection>, Gap>,
    sink: &ReportSink,
) -> Result<(), PipelineError> {
    if local == 0 {
        let mut gap = outcome.as_ref().err().cloned();
        let mut mine = DetectionReport::new(ctx.cpi);
        if let Ok(detections) = outcome {
            mine.detections = detections;
        }
        for n in 1..stage_nodes {
            match ctx.recv_from::<Payload<DetectionReport>>(ctx.stage, n, port::REPORT)? {
                Payload::Data(partial) => mine.merge(partial),
                Payload::Gap(g) => gap = Some(g),
            }
        }
        if let Some(g) = gap {
            plan.stats.record_drop(g);
            return Ok(());
        }
        if plan.config.record_reports {
            let fs = plan.files[0].fs();
            let f = fs.gopen(&format!("report_{}.dat", ctx.cpi), stap_pfs::OpenMode::Async);
            f.write_at(0, &mine.to_bytes()).map_err(|e| ctx.fail(format!("report write: {e}")))?;
        }
        sink.lock().push(mine);
    } else {
        let msg = match outcome {
            Ok(detections) => {
                let mut mine = DetectionReport::new(ctx.cpi);
                mine.detections = detections;
                Payload::Data(mine)
            }
            Err(g) => Payload::Gap(g),
        };
        ctx.send_to(ctx.stage, 0, port::REPORT, msg)?;
    }
    Ok(())
}

/// Pulse-compresses every row of `batch` in place: straight fork-join over
/// row chunks under `--schedule steal`, one whole-batch kernel call
/// otherwise.
///
/// Every row is an independent lane through the batched kernel, so chunk
/// boundaries do not change any row's FP op order — the stolen result is
/// bit-identical to the static one.
fn compress_batch(
    compressor: &PulseCompressor,
    steal: &Option<StealPool>,
    plan: &StapPlan,
    ctx: &mut StageCtx<'_>,
    batch: &mut RowBatch,
) {
    let ranges = batch.ranges;
    let path = plan.kernel_path();
    match steal {
        Some(pool) if batch.len() > 1 => {
            ctx.phase(Phase::Steal);
            let chunk_rows = batch.len().div_ceil(pool.workers() * 4).max(1);
            let items: Vec<Vec<_>> =
                batch.data.chunks(ranges * chunk_rows).map(|c| c.to_vec()).collect();
            let done = pool.run(items, |mut chunk| {
                compressor.compress_rows(&mut chunk, ranges, path);
                chunk
            });
            ctx.phase(Phase::Compute);
            for (dst, src) in batch.data.chunks_mut(ranges * chunk_rows).zip(done) {
                dst.copy_from_slice(&src);
            }
        }
        _ => {
            ctx.phase(Phase::Compute);
            compressor.compress_rows(&mut batch.data, ranges, path);
        }
    }
}

/// Pulse compression task.
pub struct PulseStage {
    plan: Arc<StapPlan>,
    compressor: PulseCompressor,
    /// Sub-CPI work-stealing executor (`--schedule steal`).
    steal: Option<StealPool>,
}

impl PulseStage {
    /// One node of the pulse-compression task.
    pub fn new(plan: Arc<StapPlan>) -> Self {
        let compressor = PulseCompressor::new(plan.config.dims.ranges, &plan.waveform);
        let steal = (plan.config.schedule == ScheduleMode::Steal).then(StealPool::for_machine);
        Self { plan, compressor, steal }
    }
}

impl Stage for PulseStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let ranges = self.plan.config.dims.ranges;
        let cfar = self.plan.roles.cfar.expect("split tail has a CFAR stage");
        let cfar_nodes = ctx.topology.stage(cfar).nodes;

        ctx.phase(Phase::Recv);
        let mut batch = match recv_rows(ctx, &self.plan, ranges)? {
            Payload::Data(batch) => batch,
            Payload::Gap(g) => {
                ctx.phase(Phase::Send);
                broadcast_gap::<RowBatch>(ctx, cfar, port::PC_ROWS, &g)?;
                return Ok(());
            }
        };

        compress_batch(&self.compressor, &self.steal, &self.plan, ctx, &mut batch);

        ctx.phase(Phase::Send);
        let est_rows = batch.len() / cfar_nodes.max(1) + 1;
        let mut outgoing: Vec<RowBatch> =
            (0..cfar_nodes).map(|_| self.plan.row_batch(ranges, est_rows)).collect();
        for i in 0..batch.len() {
            let (bin, beam) = batch.rows[i];
            let owner = self.plan.row_owner(bin, beam, cfar_nodes);
            outgoing[owner].push(bin, beam, batch.row(i));
        }
        for (n, out) in outgoing.into_iter().enumerate() {
            ctx.send_to(cfar, n, port::PC_ROWS, self.plan.for_send(Payload::Data(out)))?;
        }
        Ok(())
    }
}

/// CFAR task: detection reports out the end of the pipeline.
pub struct CfarStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    sink: ReportSink,
}

impl CfarStage {
    /// One node of the CFAR task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, sink: ReportSink) -> Self {
        Self { plan, local, nodes, sink }
    }
}

impl Stage for CfarStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let pc = self.plan.roles.pulse;
        let pc_nodes = ctx.topology.stage(pc).nodes;
        let ranges = self.plan.config.dims.ranges;

        ctx.phase(Phase::Recv);
        let mut batch = self.plan.row_batch(ranges, self.plan.total_rows());
        let mut gap: Option<Gap> = None;
        for n in 0..pc_nodes {
            match ctx.recv_from::<Payload<RowBatch>>(pc, n, port::PC_ROWS)? {
                Payload::Data(part) => batch.extend(part),
                Payload::Gap(g) => gap = Some(g),
            }
        }
        if let Some(g) = gap {
            ctx.phase(Phase::Send);
            return publish_report(ctx, &self.plan, self.nodes, self.local, Err(g), &self.sink);
        }

        ctx.phase(Phase::Compute);
        let dets = detect_batch(&self.plan, ctx.cpi, &batch)
            .map_err(|e| ctx.fail(format!("cfar: {e}")))?;

        ctx.phase(Phase::Send);
        publish_report(ctx, &self.plan, self.nodes, self.local, Ok(dets), &self.sink)
    }
}

/// The combined PC+CFAR task (§6): both computations on the union of the
/// two node sets, with the PC→CFAR redistribution eliminated.
pub struct CombinedTailStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    compressor: PulseCompressor,
    /// Sub-CPI work-stealing executor (`--schedule steal`).
    steal: Option<StealPool>,
    sink: ReportSink,
}

impl CombinedTailStage {
    /// One node of the combined task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, sink: ReportSink) -> Self {
        let compressor = PulseCompressor::new(plan.config.dims.ranges, &plan.waveform);
        let steal = (plan.config.schedule == ScheduleMode::Steal).then(StealPool::for_machine);
        Self { plan, local, nodes, compressor, steal, sink }
    }
}

impl Stage for CombinedTailStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let ranges = self.plan.config.dims.ranges;
        ctx.phase(Phase::Recv);
        let mut batch = match recv_rows(ctx, &self.plan, ranges)? {
            Payload::Data(batch) => batch,
            Payload::Gap(g) => {
                ctx.phase(Phase::Send);
                return publish_report(ctx, &self.plan, self.nodes, self.local, Err(g), &self.sink);
            }
        };

        compress_batch(&self.compressor, &self.steal, &self.plan, ctx, &mut batch);
        ctx.phase(Phase::Compute);
        let dets = detect_batch(&self.plan, ctx.cpi, &batch)
            .map_err(|e| ctx.fail(format!("cfar: {e}")))?;

        ctx.phase(Phase::Send);
        publish_report(ctx, &self.plan, self.nodes, self.local, Ok(dets), &self.sink)
    }
}
