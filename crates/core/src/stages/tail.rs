//! The pipeline tail: pulse compression and CFAR as separate tasks, or the
//! combined task of the paper's §6 latency optimization.

use crate::messages::RowBatch;
use crate::stages::{port, StapPlan};
use parking_lot::Mutex;
use stap_kernels::cfar::{cfar_row, Detection};
use stap_kernels::pulse::PulseCompressor;
use stap_kernels::report::DetectionReport;
use stap_pipeline::stage::{Stage, StageCtx};
use stap_pipeline::timing::Phase;
use stap_pipeline::PipelineError;
use std::sync::Arc;

/// Where completed per-CPI detection reports land after the run.
pub type ReportSink = Arc<Mutex<Vec<DetectionReport>>>;

/// Receives this node's row batches from both beamformers.
fn recv_rows(
    ctx: &mut StageCtx<'_>,
    plan: &StapPlan,
    ranges: usize,
) -> Result<RowBatch, PipelineError> {
    let roles = plan.roles;
    let mut all = RowBatch::new(ranges);
    for (stage, p) in [(roles.easy_bf, port::EASY_ROWS), (roles.hard_bf, port::HARD_ROWS)] {
        let nodes = ctx.topology.stage(stage).nodes;
        for n in 0..nodes {
            let batch: RowBatch = ctx.recv_from(stage, n, p)?;
            all.extend(batch);
        }
    }
    Ok(all)
}

/// Runs CFAR over a batch and labels detections with bin/beam identity.
fn detect_batch(plan: &StapPlan, batch: &RowBatch) -> Vec<Detection> {
    let mut dets = Vec::new();
    let mut powers = vec![0.0f64; batch.ranges];
    for i in 0..batch.len() {
        let (bin, beam) = batch.rows[i];
        for (o, z) in powers.iter_mut().zip(batch.row(i)) {
            *o = z.norm_sqr() as f64;
        }
        for (range, power, noise) in cfar_row(&powers, plan.config.cfar) {
            dets.push(Detection {
                beam,
                bin,
                range,
                power,
                noise,
                snr_db: 10.0 * (power / noise).log10(),
            });
        }
    }
    dets
}

/// Gathers partial detection reports at local node 0, which publishes the
/// merged report to the sink and, when configured, writes it back to the
/// parallel file system (the pipeline's output I/O).
fn publish_report(
    ctx: &mut StageCtx<'_>,
    plan: &StapPlan,
    stage_nodes: usize,
    local: usize,
    detections: Vec<Detection>,
    sink: &ReportSink,
) -> Result<(), PipelineError> {
    let mut mine = DetectionReport::new(ctx.cpi);
    mine.detections = detections;
    if local == 0 {
        for n in 1..stage_nodes {
            let partial: DetectionReport = ctx.recv_from(ctx.stage, n, port::REPORT)?;
            mine.merge(partial);
        }
        if plan.config.record_reports {
            let fs = plan.files[0].fs();
            let f = fs.gopen(&format!("report_{}.dat", ctx.cpi), stap_pfs::OpenMode::Async);
            f.write_at(0, &mine.to_bytes());
        }
        sink.lock().push(mine);
    } else {
        ctx.send_to(ctx.stage, 0, port::REPORT, mine)?;
    }
    Ok(())
}

/// Pulse compression task.
pub struct PulseStage {
    plan: Arc<StapPlan>,
    compressor: PulseCompressor,
}

impl PulseStage {
    /// One node of the pulse-compression task.
    pub fn new(plan: Arc<StapPlan>) -> Self {
        let compressor = PulseCompressor::new(plan.config.dims.ranges, &plan.waveform);
        Self { plan, compressor }
    }
}

impl Stage for PulseStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let ranges = self.plan.config.dims.ranges;
        ctx.phase(Phase::Recv);
        let mut batch = recv_rows(ctx, &self.plan, ranges)?;

        ctx.phase(Phase::Compute);
        for i in 0..batch.len() {
            self.compressor.compress_row(batch.row_mut(i));
        }

        ctx.phase(Phase::Send);
        let cfar = self.plan.roles.cfar.expect("split tail has a CFAR stage");
        let cfar_nodes = ctx.topology.stage(cfar).nodes;
        let mut outgoing: Vec<RowBatch> = (0..cfar_nodes).map(|_| RowBatch::new(ranges)).collect();
        for i in 0..batch.len() {
            let (bin, beam) = batch.rows[i];
            let owner = self.plan.row_owner(bin, beam, cfar_nodes);
            let row = batch.row(i).to_vec();
            outgoing[owner].push(bin, beam, &row);
        }
        for (n, out) in outgoing.into_iter().enumerate() {
            ctx.send_to(cfar, n, port::PC_ROWS, out)?;
        }
        Ok(())
    }
}

/// CFAR task: detection reports out the end of the pipeline.
pub struct CfarStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    sink: ReportSink,
}

impl CfarStage {
    /// One node of the CFAR task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, sink: ReportSink) -> Self {
        Self { plan, local, nodes, sink }
    }
}

impl Stage for CfarStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let pc = self.plan.roles.pulse;
        let pc_nodes = ctx.topology.stage(pc).nodes;
        let ranges = self.plan.config.dims.ranges;

        ctx.phase(Phase::Recv);
        let mut batch = RowBatch::new(ranges);
        for n in 0..pc_nodes {
            let part: RowBatch = ctx.recv_from(pc, n, port::PC_ROWS)?;
            batch.extend(part);
        }

        ctx.phase(Phase::Compute);
        let dets = detect_batch(&self.plan, &batch);

        ctx.phase(Phase::Send);
        publish_report(ctx, &self.plan, self.nodes, self.local, dets, &self.sink)
    }
}

/// The combined PC+CFAR task (§6): both computations on the union of the
/// two node sets, with the PC→CFAR redistribution eliminated.
pub struct CombinedTailStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    compressor: PulseCompressor,
    sink: ReportSink,
}

impl CombinedTailStage {
    /// One node of the combined task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, sink: ReportSink) -> Self {
        let compressor = PulseCompressor::new(plan.config.dims.ranges, &plan.waveform);
        Self { plan, local, nodes, compressor, sink }
    }
}

impl Stage for CombinedTailStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let ranges = self.plan.config.dims.ranges;
        ctx.phase(Phase::Recv);
        let mut batch = recv_rows(ctx, &self.plan, ranges)?;

        ctx.phase(Phase::Compute);
        for i in 0..batch.len() {
            self.compressor.compress_row(batch.row_mut(i));
        }
        let dets = detect_batch(&self.plan, &batch);

        ctx.phase(Phase::Send);
        publish_report(ctx, &self.plan, self.nodes, self.local, dets, &self.sink)
    }
}
