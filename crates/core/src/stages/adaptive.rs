//! The adaptive middle of the pipeline: weight computation (temporal) and
//! beamforming, in easy and hard variants.

use crate::messages::{assemble_bins, BinSlab, Gap, Payload, RowBatch};
use crate::stages::{broadcast_gap, port, StapPlan};
use stap_kernels::beamform::BeamCube;
use stap_kernels::covariance::TrainingConfig;
use stap_kernels::weights::{WeightComputer, WeightSet};
use stap_pipeline::stage::{Stage, StageCtx};
use stap_pipeline::timing::Phase;
use stap_pipeline::PipelineError;
use std::sync::Arc;

fn weight_computer(plan: &StapPlan) -> WeightComputer {
    WeightComputer {
        beams: plan.config.beams.clone(),
        training: TrainingConfig::default(),
        stagger_offset: plan.config.doppler.stagger_offset,
        method: plan.config.weight_method,
    }
}

/// Weight computation task (easy or hard). Consumes the Doppler output of
/// CPI `j` and publishes weights tagged `j`; the beamformers apply them to
/// CPI `j+1` — the paper's temporal data dependency.
pub struct WeightStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    hard: bool,
    computer: WeightComputer,
    /// The last successfully computed weight set, reused verbatim when a
    /// CPI's training data is a gap bubble (stale weights still beamform;
    /// the temporal dependency makes this the natural degraded mode).
    last_good: Option<WeightSet>,
}

impl WeightStage {
    /// One node of a weight task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, hard: bool) -> Self {
        let computer = weight_computer(&plan);
        Self { plan, local, nodes, hard, computer, last_good: None }
    }
}

impl Stage for WeightStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let roles = self.plan.roles;
        let df = roles.doppler;
        let df_nodes = ctx.topology.stage(df).nodes;
        let train_port = if self.hard { port::HARD_TRAIN } else { port::EASY_TRAIN };
        let my_bins = self.plan.owned_bins(self.hard, self.nodes, self.local);

        // Receive this CPI's Doppler output for our bins from every DF node.
        ctx.phase(Phase::Recv);
        let mut slabs = Vec::with_capacity(df_nodes);
        let mut gap: Option<Gap> = None;
        for d in 0..df_nodes {
            match ctx.recv_from::<Payload<BinSlab>>(df, d, train_port)? {
                Payload::Data(slab) => slabs.push(slab),
                Payload::Gap(g) => gap = Some(g),
            }
        }

        let ws = if gap.is_some() {
            // Dropped CPI: no training data arrived, but the beamformers
            // still expect a weight set tagged with this CPI for the next
            // one. Republish the last good weights (or uniform weights on
            // a cold start) so the temporal edge never starves.
            ctx.phase(Phase::Compute);
            let staggers = if self.hard { 2 } else { 1 };
            let channels = self.plan.config.dims.channels;
            match &self.last_good {
                Some(prev) => prev.clone(),
                None => self.computer.uniform(
                    staggers * channels,
                    channels,
                    staggers,
                    &my_bins,
                    self.plan.nbins(),
                ),
            }
        } else {
            // The slab handoff — stitching the received per-node slabs into
            // one contiguous cube — is communication, not math. It lives in
            // the Send phase so the zero-copy data plane's savings show up
            // in the phase report instead of vanishing into Compute.
            ctx.phase(Phase::Send);
            let ranges = self.plan.config.dims.ranges;
            let cube = assemble_bins(&my_bins, ranges, &slabs)
                .map_err(|e| ctx.fail(format!("doppler assembly: {e}")))?;
            ctx.phase(Phase::Compute);
            // The assembled cube's bin axis is positional; compute against
            // positional indices, then relabel to absolute bins for
            // shipping.
            let positional: Vec<usize> = (0..my_bins.len()).collect();
            let mut ws = self
                .computer
                .compute(&cube, &positional)
                .map_err(|e| ctx.fail(format!("weight solve: {e}")))?;
            ws.bins = my_bins;
            self.last_good = Some(ws.clone());
            ws
        };

        if let Some(tap) = &self.plan.tap {
            tap.record_weights(ctx.cpi, self.hard, &ws);
        }

        // Publish to every beamforming node of our variant; the weights are
        // tagged with this CPI and consumed one CPI later.
        ctx.phase(Phase::Send);
        let bf = if self.hard { roles.hard_bf } else { roles.easy_bf };
        let bf_nodes = ctx.topology.stage(bf).nodes;
        let wport = if self.hard { port::HARD_WEIGHTS } else { port::EASY_WEIGHTS };
        for n in 0..bf_nodes {
            ctx.send_to(bf, n, wport, ws.clone())?;
        }
        Ok(())
    }
}

/// Beamforming task (easy or hard): applies weights computed from the
/// *previous* CPI to the current CPI's Doppler output. "The filtered data
/// cube sent to the beamforming task does not wait for the completion of
/// its weight computation."
pub struct BeamformStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    hard: bool,
    computer: WeightComputer,
    /// Weights received for the previous CPI, merged across weight nodes.
    staged_weights: Option<WeightSet>,
}

impl BeamformStage {
    /// One node of a beamforming task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize, hard: bool) -> Self {
        let computer = weight_computer(&plan);
        Self { plan, local, nodes, hard, computer, staged_weights: None }
    }

    /// Weight set restricted to `bins` (positional order), relabeled to the
    /// positional indices so it can drive the compacted cube.
    ///
    /// # Errors
    /// Returns the first bin the received weight set does not cover.
    fn select_weights(&self, full: &WeightSet, bins: &[usize]) -> Result<WeightSet, usize> {
        let mut weights = Vec::with_capacity(bins.len());
        for &b in bins {
            let per_beam = full.for_bin(b).ok_or(b)?.clone();
            weights.push(per_beam);
        }
        Ok(WeightSet { bins: (0..bins.len()).collect(), weights, dof: full.dof })
    }
}

impl Stage for BeamformStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let roles = self.plan.roles;
        let df = roles.doppler;
        let df_nodes = ctx.topology.stage(df).nodes;
        let data_port = if self.hard { port::HARD_DATA } else { port::EASY_DATA };
        let wport = if self.hard { port::HARD_WEIGHTS } else { port::EASY_WEIGHTS };
        let wstage = if self.hard { roles.hard_weight } else { roles.easy_weight };
        let wnodes = ctx.topology.stage(wstage).nodes;
        let my_bins = self.plan.owned_bins(self.hard, self.nodes, self.local);
        let ranges = self.plan.config.dims.ranges;
        let staggers = if self.hard { 2 } else { 1 };
        let channels = self.plan.config.dims.channels;

        ctx.phase(Phase::Recv);
        // Current CPI's filtered data from every Doppler node.
        let mut slabs = Vec::with_capacity(df_nodes);
        let mut gap: Option<Gap> = None;
        for d in 0..df_nodes {
            match ctx.recv_from::<Payload<BinSlab>>(df, d, data_port)? {
                Payload::Data(slab) => slabs.push(slab),
                Payload::Gap(g) => gap = Some(g),
            }
        }
        // Previous CPI's weights (cold start: uniform). The weight task
        // publishes a real set even for a dropped CPI, so this receive is
        // unconditional — a gap never leaves it dangling. Timed as its own
        // phase: this wait is the pipeline's only cross-CPI dependency and
        // the paper's argument for the temporal edge design.
        ctx.phase(Phase::WeightWait);
        let weights_full = if ctx.cpi == 0 {
            self.computer.uniform(
                staggers * channels,
                channels,
                staggers,
                &my_bins,
                self.plan.nbins(),
            )
        } else {
            let mut merged: Option<WeightSet> = None;
            for w in 0..wnodes {
                let ws: WeightSet = ctx.recv_from_at(wstage, w, wport, ctx.cpi - 1)?;
                merged = Some(match merged {
                    None => ws,
                    Some(acc) => acc.merge(ws),
                });
            }
            merged.expect("at least one weight node")
        };
        self.staged_weights = None;

        // Dropped CPI: forward the bubble to every pulse-compression node
        // this stage would have fed, skipping the compute entirely.
        if let Some(g) = gap {
            ctx.phase(Phase::Send);
            let row_port = if self.hard { port::HARD_ROWS } else { port::EASY_ROWS };
            broadcast_gap::<RowBatch>(ctx, roles.pulse, row_port, &g)?;
            return Ok(());
        }

        // The slab handoff stitch is communication time (see WeightStage).
        ctx.phase(Phase::Send);
        let cube = assemble_bins(&my_bins, ranges, &slabs)
            .map_err(|e| ctx.fail(format!("beamform assembly: {e}")))?;
        ctx.phase(Phase::Compute);
        let ws = self
            .select_weights(&weights_full, &my_bins)
            .map_err(|b| ctx.fail(format!("weight set missing bin {b}")))?;
        let bc: BeamCube =
            stap_kernels::beamform::Beamformer.apply_with(&cube, &ws, self.plan.kernel_path());

        ctx.phase(Phase::Send);
        // Partition rows by owning pulse-compression node. BeamCube rows
        // are contiguous, so each row ships as one slice copy into an
        // arena-backed batch (no per-row gather allocation).
        let pc = roles.pulse;
        let pc_nodes = ctx.topology.stage(pc).nodes;
        let row_port = if self.hard { port::HARD_ROWS } else { port::EASY_ROWS };
        let est_rows = my_bins.len() * self.plan.beams() / pc_nodes.max(1) + 1;
        let mut batches: Vec<RowBatch> =
            (0..pc_nodes).map(|_| self.plan.row_batch(ranges, est_rows)).collect();
        for (i, &bin) in my_bins.iter().enumerate() {
            for beam in 0..self.plan.beams() {
                let owner = self.plan.row_owner(bin, beam, pc_nodes);
                batches[owner].push(bin, beam, bc.row(beam, i));
            }
        }
        for (n, batch) in batches.into_iter().enumerate() {
            ctx.send_to(pc, n, row_port, self.plan.for_send(Payload::Data(batch)))?;
        }
        Ok(())
    }
}
