//! Real-mode stage implementations of the STAP pipeline.
//!
//! Shared here: the port map (logical streams between stages), the
//! [`StapPlan`] every stage factory captures, and the ownership functions
//! mapping bins and (bin, beam) rows to nodes.

pub mod adaptive;
pub mod front;
pub mod tail;

use crate::config::StapConfig;
use crate::io_strategy::{IoStrategy, TailStructure};
use crate::messages::{Gap, Payload};
use parking_lot::Mutex;
use stap_comm::{PoolVec, SlabPool};
use stap_kernels::doppler::BinClass;
use stap_kernels::weights::WeightSet;
use stap_kernels::KernelPath;
use stap_math::C32;
use stap_pfs::FileHandle;
use stap_pipeline::schedule::round_robin_items;
use stap_pipeline::stage::StageCtx;
use stap_pipeline::topology::StageId;
use stap_pipeline::{CpiSource, PipelineError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Ports (logical message streams). See `messages` for the payload types.
pub mod port {
    /// Read task → Doppler: raw range-major bytes.
    pub const RAW: u8 = 0;
    /// Doppler → easy beamforming: 1-stagger bin slabs.
    pub const EASY_DATA: u8 = 1;
    /// Doppler → hard beamforming: 2-stagger bin slabs.
    pub const HARD_DATA: u8 = 2;
    /// Doppler → easy weight (training data, temporal consumer).
    pub const EASY_TRAIN: u8 = 3;
    /// Doppler → hard weight.
    pub const HARD_TRAIN: u8 = 4;
    /// Easy weight → easy beamforming: weight sets.
    pub const EASY_WEIGHTS: u8 = 5;
    /// Hard weight → hard beamforming.
    pub const HARD_WEIGHTS: u8 = 6;
    /// Easy beamforming → pulse compression: row batches.
    pub const EASY_ROWS: u8 = 7;
    /// Hard beamforming → pulse compression.
    pub const HARD_ROWS: u8 = 8;
    /// Pulse compression → CFAR.
    pub const PC_ROWS: u8 = 9;
    /// CFAR internal gather of partial detection reports.
    pub const REPORT: u8 = 10;
}

/// Stage ids of every role in the built topology.
#[derive(Debug, Clone, Copy)]
pub struct Roles {
    /// The separate read task (None when I/O is embedded).
    pub read: Option<StageId>,
    /// Doppler filter task.
    pub doppler: StageId,
    /// Easy weight task.
    pub easy_weight: StageId,
    /// Hard weight task.
    pub hard_weight: StageId,
    /// Easy beamforming task.
    pub easy_bf: StageId,
    /// Hard beamforming task.
    pub hard_bf: StageId,
    /// Pulse compression (or the combined PC+CFAR task).
    pub pulse: StageId,
    /// CFAR task (None when combined into `pulse`).
    pub cfar: Option<StageId>,
}

/// Forwards a gap bubble to every node of `stage` on `port`.
///
/// The single implementation of the gap fan-out that used to be repeated
/// ad hoc by the front, adaptive, and tail stages; `T` names the payload
/// type the receiver expects in the non-gap case.
pub(crate) fn broadcast_gap<T: Send + 'static>(
    ctx: &mut StageCtx<'_>,
    stage: StageId,
    port: u8,
    gap: &Gap,
) -> Result<(), PipelineError> {
    let nodes = ctx.topology.stage(stage).nodes;
    for n in 0..nodes {
        ctx.send_to(stage, n, port, Payload::<T>::Gap(gap.clone()))?;
    }
    Ok(())
}

/// Run-wide fault accounting, shared by every stage through the plan.
///
/// Retries are counted wherever they happen; dropped CPIs are recorded
/// once, at the sink (node 0 of the final task), deduplicated by CPI so a
/// gap fanning out over many nodes still counts as one drop.
#[derive(Debug, Default)]
pub struct FaultStats {
    retries: AtomicU64,
    dropped: Mutex<Vec<Gap>>,
}

impl FaultStats {
    /// Clears all counters (called at the start of every run).
    pub fn reset(&self) {
        self.retries.store(0, Ordering::Relaxed);
        self.dropped.lock().clear();
    }

    /// Counts one read retry.
    pub fn count_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total read retries across all nodes so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Records a dropped CPI (idempotent per CPI).
    pub fn record_drop(&self, gap: Gap) {
        let mut dropped = self.dropped.lock();
        if !dropped.iter().any(|g| g.cpi == gap.cpi) {
            dropped.push(gap);
            dropped.sort_by_key(|g| g.cpi);
        }
    }

    /// The dropped CPIs recorded so far, ascending by CPI.
    pub fn dropped(&self) -> Vec<Gap> {
        self.dropped.lock().clone()
    }
}

/// Opt-in capture of the pipeline's detection-quality products.
///
/// When a run enables `StapConfig::quality_tap`, the tail stages record the
/// post-pulse-compression power of every (bin, beam) row — the surface the
/// CFAR detector actually scans, i.e. the run's angle-Doppler map — and the
/// weight tasks record every weight set they publish. The verification
/// layer (`stap-scenario`) reads these back to compute SINR loss against
/// the weights the pipeline *really applied*, not a standalone kernel call.
///
/// Interior-mutable because every stage shares the plan through an `Arc`;
/// `BTreeMap`s keep the captured products in deterministic order for
/// golden-file rendering.
#[derive(Debug, Default)]
pub struct QualityTap {
    /// (cpi, bin, beam) → row power summed over range gates.
    rows: Mutex<BTreeMap<(u64, usize, usize), f64>>,
    /// (cpi, hard?) → weight set merged across the variant's weight nodes,
    /// tagged with the CPI whose training data produced it (applied at
    /// CPI + 1 — the temporal edge).
    weights: Mutex<BTreeMap<(u64, bool), WeightSet>>,
}

impl QualityTap {
    /// Clears everything captured (called at the start of every run).
    pub fn reset(&self) {
        self.rows.lock().clear();
        self.weights.lock().clear();
    }

    /// Records one (bin, beam) row's range-summed power for a CPI.
    pub(crate) fn record_row(&self, cpi: u64, bin: usize, beam: usize, power: f64) {
        self.rows.lock().insert((cpi, bin, beam), power);
    }

    /// Records a weight set published for `cpi` by one node of the easy or
    /// hard weight task, merging it with the sets from the variant's other
    /// nodes (each node owns disjoint bins).
    pub(crate) fn record_weights(&self, cpi: u64, hard: bool, ws: &WeightSet) {
        let mut all = self.weights.lock();
        match all.remove(&(cpi, hard)) {
            Some(acc) => {
                // Degraded-mode republication can resend the same bins;
                // merge only genuinely new ones.
                if ws.bins.iter().all(|b| acc.for_bin(*b).is_none()) {
                    all.insert((cpi, hard), acc.merge(ws.clone()));
                } else {
                    all.insert((cpi, hard), acc);
                }
            }
            None => {
                all.insert((cpi, hard), ws.clone());
            }
        }
    }

    /// CPIs with a captured angle-Doppler surface, ascending.
    pub fn map_cpis(&self) -> Vec<u64> {
        let mut cpis: Vec<u64> = self.rows.lock().keys().map(|&(c, _, _)| c).collect();
        cpis.dedup();
        cpis
    }

    /// The angle-Doppler power surface of one CPI: (bin, beam) → power
    /// summed over range, in deterministic (bin, beam) order.
    pub fn map_for(&self, cpi: u64) -> BTreeMap<(usize, usize), f64> {
        self.rows
            .lock()
            .range((cpi, 0, 0)..(cpi + 1, 0, 0))
            .map(|(&(_, bin, beam), &p)| ((bin, beam), p))
            .collect()
    }

    /// The merged weight set published for `(cpi, hard)` (None when that
    /// CPI produced no weights — e.g. it was dropped before training).
    pub fn weights_for(&self, cpi: u64, hard: bool) -> Option<WeightSet> {
        self.weights.lock().get(&(cpi, hard)).cloned()
    }

    /// The newest CPI both weight variants have published for — the
    /// natural CPI to score SINR at.
    pub fn latest_weight_cpi(&self) -> Option<u64> {
        let all = self.weights.lock();
        let newest = |hard: bool| all.keys().filter(|&&(_, h)| h == hard).map(|&(c, _)| c).max();
        match (newest(false), newest(true)) {
            (Some(e), Some(h)) => Some(e.min(h)),
            (e, h) => e.or(h),
        }
    }
}

/// The zero-copy data plane's buffer arenas, shared by every stage.
///
/// Sample buffers back bin slabs and row batches; byte buffers back the
/// read task's raw slabs. Buffers recycle on drop, so a steady-state run
/// reaches a fixed working set of slabs circulating between stages.
#[derive(Debug, Default)]
pub struct CommPools {
    /// Complex-sample buffers (bin slabs, row batches).
    pub samples: SlabPool<C32>,
    /// Raw byte buffers (read-task slabs).
    pub bytes: SlabPool<u8>,
}

/// Everything the stage implementations need, shared via `Arc`.
#[derive(Debug)]
pub struct StapPlan {
    /// Run configuration.
    pub config: StapConfig,
    /// Stage ids per role.
    pub roles: Roles,
    /// Doppler bins classified easy, ascending.
    pub easy_bins: Vec<usize>,
    /// Doppler bins classified hard, ascending.
    pub hard_bins: Vec<usize>,
    /// Open handles to the round-robin CPI files, indexed by slot. Staged
    /// in every mode: the tail's report writer and diagnostics go through
    /// them even when the front pulls from a stream.
    pub files: Vec<FileHandle>,
    /// Where the front gets CPI cube bytes (file- or stream-backed).
    pub source: Arc<dyn CpiSource>,
    /// The pulse-compression waveform replica.
    pub waveform: Vec<stap_math::C32>,
    /// Fault accounting for the current run (retries, dropped CPIs).
    pub stats: FaultStats,
    /// Detection-quality capture (None unless `config.quality_tap`).
    pub tap: Option<Arc<QualityTap>>,
    /// Recycled message-buffer arenas (bypassed under `--copy-comm`).
    pub pools: CommPools,
}

impl StapPlan {
    /// A sample buffer with room for `capacity` values: pooled in
    /// zero-copy mode, a fresh detached allocation under `--copy-comm`.
    pub fn sample_buf(&self, capacity: usize) -> PoolVec<C32> {
        if self.config.copy_comm {
            PoolVec::detached(Vec::with_capacity(capacity))
        } else {
            self.pools.samples.take(capacity)
        }
    }

    /// A byte buffer with room for `capacity` values (see
    /// [`StapPlan::sample_buf`]).
    pub fn byte_buf(&self, capacity: usize) -> PoolVec<u8> {
        if self.config.copy_comm {
            PoolVec::detached(Vec::with_capacity(capacity))
        } else {
            self.pools.bytes.take(capacity)
        }
    }

    /// The send-boundary hook of the `--copy-comm` escape hatch: deep-copies
    /// the payload (so the receiver gets fresh storage, as a serializing
    /// transport would produce) instead of passing slab ownership through.
    pub fn for_send<T: Clone>(&self, msg: T) -> T {
        if self.config.copy_comm {
            #[allow(clippy::redundant_clone)] // the copy IS the semantics under A/B
            return msg.clone();
        }
        msg
    }

    /// The kernel path compute stages run.
    pub fn kernel_path(&self) -> KernelPath {
        self.config.kernel_path
    }

    /// An empty row batch with room for `capacity_rows` rows: pooled in
    /// zero-copy mode, detached under `--copy-comm`.
    pub fn row_batch(&self, ranges: usize, capacity_rows: usize) -> crate::messages::RowBatch {
        if self.config.copy_comm {
            crate::messages::RowBatch::new(ranges)
        } else {
            crate::messages::RowBatch::pooled(ranges, capacity_rows, &self.pools.samples)
        }
    }
    /// Total Doppler bins.
    pub fn nbins(&self) -> usize {
        self.config.nbins()
    }

    /// Beams per bin.
    pub fn beams(&self) -> usize {
        self.config.beams.len()
    }

    /// Total (bin, beam) rows flowing through the tail tasks.
    pub fn total_rows(&self) -> usize {
        self.nbins() * self.beams()
    }

    /// Row id of (bin, beam).
    pub fn row_id(&self, bin: usize, beam: usize) -> usize {
        bin * self.beams() + beam
    }

    /// The bins (absolute numbers) owned by node `local` of a stage with
    /// `nodes` nodes, drawing from the easy or hard list — the round-robin
    /// scheduling of the paper's figures.
    pub fn owned_bins(&self, hard: bool, nodes: usize, local: usize) -> Vec<usize> {
        let list = if hard { &self.hard_bins } else { &self.easy_bins };
        round_robin_items(list.len(), nodes, local).into_iter().map(|i| list[i]).collect()
    }

    /// Owner (local index) of a row under a stage with `nodes` nodes.
    pub fn row_owner(&self, bin: usize, beam: usize, nodes: usize) -> usize {
        self.row_id(bin, beam) % nodes
    }

    /// The bin classification in force.
    pub fn bin_class(&self) -> BinClass {
        self.config.doppler.bins
    }

    /// True when this run uses the separate-I/O-task design.
    pub fn separate_io(&self) -> bool {
        self.config.io == IoStrategy::SeparateTask
    }

    /// True when the tail is combined.
    pub fn combined_tail(&self) -> bool {
        self.config.tail == TailStructure::Combined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::StapSystem;

    #[test]
    fn owned_bins_partition_each_class() {
        let sys = StapSystem::prepare(StapConfig::default()).unwrap();
        let plan = sys.plan();
        let nodes = 3;
        let mut seen = Vec::new();
        for local in 0..nodes {
            seen.extend(plan.owned_bins(true, nodes, local));
        }
        seen.sort_unstable();
        assert_eq!(seen, plan.hard_bins);
        // Easy + hard together cover every bin exactly once.
        let mut all = plan.easy_bins.clone();
        all.extend(&plan.hard_bins);
        all.sort_unstable();
        assert_eq!(all, (0..plan.nbins()).collect::<Vec<_>>());
    }

    #[test]
    fn fault_stats_dedupe_drops_by_cpi() {
        let stats = FaultStats::default();
        let gap = |cpi| Gap { cpi, origin: "read".into(), reason: "x".into() };
        stats.record_drop(gap(4));
        stats.record_drop(gap(1));
        stats.record_drop(gap(4));
        assert_eq!(stats.dropped().iter().map(|g| g.cpi).collect::<Vec<_>>(), vec![1, 4]);
        stats.count_retry();
        stats.count_retry();
        assert_eq!(stats.retries(), 2);
        stats.reset();
        assert!(stats.dropped().is_empty());
        assert_eq!(stats.retries(), 0);
    }

    #[test]
    fn quality_tap_merges_weight_nodes_and_orders_maps() {
        let tap = QualityTap::default();
        let ws = |bins: Vec<usize>| WeightSet {
            weights: bins.iter().map(|_| vec![vec![]]).collect(),
            bins,
            dof: 8,
        };
        tap.record_weights(2, false, &ws(vec![1, 3]));
        tap.record_weights(2, false, &ws(vec![5]));
        // Republication of already-merged bins is ignored, not a panic.
        tap.record_weights(2, false, &ws(vec![1, 3]));
        tap.record_weights(1, true, &ws(vec![0]));
        let merged = tap.weights_for(2, false).expect("easy weights at cpi 2");
        assert_eq!(merged.bins, vec![1, 3, 5]);
        assert!(tap.weights_for(2, true).is_none());
        // Latest CPI published by BOTH variants: easy has 2, hard has 1.
        assert_eq!(tap.latest_weight_cpi(), Some(1));

        tap.record_row(1, 4, 0, 2.0);
        tap.record_row(1, 0, 1, 3.0);
        tap.record_row(0, 9, 9, 7.0);
        assert_eq!(tap.map_cpis(), vec![0, 1]);
        let keys: Vec<_> = tap.map_for(1).into_keys().collect();
        assert_eq!(keys, vec![(0, 1), (4, 0)]);
        tap.reset();
        assert!(tap.map_cpis().is_empty() && tap.latest_weight_cpi().is_none());
    }

    #[test]
    fn row_ownership_is_total() {
        let sys = StapSystem::prepare(StapConfig::default()).unwrap();
        let plan = sys.plan();
        let nodes = 4;
        for bin in 0..plan.nbins() {
            for beam in 0..plan.beams() {
                assert!(plan.row_owner(bin, beam, nodes) < nodes);
            }
        }
    }
}
