//! The pipeline front: the (optional) separate read task and the Doppler
//! filter task with both I/O designs.
//!
//! The front is where CPI files meet the pipeline, so it is also where the
//! failure policy acts: every CPI read goes through [`read_with_policy`],
//! which retries transient faults within the configured budget and — under
//! `SkipCpi` — converts an exhausted budget into a [`Gap`] bubble instead
//! of an abort.

use crate::messages::{BinSlab, Gap, Payload, RawSlab};
use crate::stages::{broadcast_gap, port, StapPlan};
use stap_kernels::cube::{partition_even, CubeDims, DataCube, DopplerCube};
use stap_kernels::doppler::{DopplerConfig, DopplerFilter};
use stap_pipeline::schedule::{block_range, ScheduleMode, StealPool};
use stap_pipeline::stage::{Stage, StageCtx};
use stap_pipeline::timing::Phase;
use stap_pipeline::{PendingFetch, PipelineError, INFRASTRUCTURE_LOSS_MARKER};
use std::sync::Arc;

/// Byte extent (offset, length) of range gates `[r0, r1)` in a CPI file.
fn slab_extent(dims: CubeDims, r0: usize, r1: usize) -> (u64, usize) {
    let off = DataCube::range_major_offset(dims, r0);
    let len = (DataCube::range_major_offset(dims, r1) - off) as usize;
    (off, len)
}

/// What a policy-governed read produced.
enum ReadOutcome {
    /// The bytes arrived (possibly after retries).
    Data(Vec<u8>),
    /// The retry budget ran out under `SkipCpi`; the CPI is dropped.
    Dropped(String),
}

/// Fetches `len` bytes at `off` of the current CPI's cube from the plan's
/// [`CpiSource`](stap_pipeline::CpiSource) under the configured failure
/// policy. A posted asynchronous fetch may be handed in as the first
/// attempt; retries always re-fetch synchronously.
///
/// Owns the timing of the acquisition path: every attempt gets its own
/// attempt-keyed span in the source's wait phase (`Read` for files,
/// `Ingest` for streams; attempt 0 covers the ordinary fetch or the iread
/// wait) and every retry pause a `Backoff` span, so recovered time shows
/// up in the trace instead of being inferred.
fn read_with_policy(
    plan: &StapPlan,
    ctx: &mut StageCtx<'_>,
    label: &str,
    pending: Option<PendingFetch>,
    off: u64,
    len: usize,
) -> Result<ReadOutcome, PipelineError> {
    let policy = plan.config.failure_policy;
    let retry = policy.retry();
    let source = &plan.source;
    let wait_phase = source.wait_phase();
    // A fetch the storage tier will serve out of its read cache never
    // queues on the stripe servers — attribute its wait to `CacheHit` so
    // the trace separates copy-bandwidth time from true striped reads.
    // A posted asynchronous fetch resolves against the same cache, so the
    // probe covers it too: staged bytes mean the wait ahead is a cache
    // copy, not a striped read. Retries always re-read the backing file,
    // so they keep `wait_phase`.
    let phase0 = if source.cached(ctx.cpi, off, len) { Phase::CacheHit } else { wait_phase };
    ctx.phase_attempt(phase0, 0);
    let mut last = match pending {
        Some(fetch) => fetch(),
        None => source.fetch(ctx.cpi, off, len),
    };
    let mut attempt = 0u32;
    loop {
        match last {
            Ok(bytes) => return Ok(ReadOutcome::Data(bytes)),
            // Fleet-level infrastructure loss (a stripe server or compute
            // node gone for good) also aborts on the first observation —
            // retrying against dead hardware burns the backoff budget for
            // nothing — but carries the canonical marker so a failover
            // layer above the pipeline can re-plan instead of giving up.
            Err(e) if e.is_infrastructure_loss() => {
                return Err(ctx.fail(format!("{INFRASTRUCTURE_LOSS_MARKER}: {label}: {e}")))
            }
            // Permanent faults (bad extents, missing files, a closed
            // stream) abort under every policy: retrying or skipping
            // would mask a real bug.
            Err(e) if !e.is_transient() => return Err(ctx.fail(format!("{label}: {e}"))),
            Err(e) => {
                if attempt < retry.attempts {
                    plan.stats.count_retry();
                    let pause = retry.backoff_for(attempt);
                    if !pause.is_zero() {
                        ctx.phase(Phase::Backoff);
                        std::thread::sleep(pause);
                    }
                    attempt += 1;
                    ctx.phase_attempt(wait_phase, attempt);
                    last = source.fetch(ctx.cpi, off, len);
                } else if policy.skips() {
                    return Ok(ReadOutcome::Dropped(format!("{label}: {e}")));
                } else {
                    return Err(ctx.fail(format!("{label}: {e}")));
                }
            }
        }
    }
}

/// Enforces the consecutive-drop budget of `SkipCpi`.
fn check_consecutive(
    plan: &StapPlan,
    ctx: &StageCtx<'_>,
    consecutive: u32,
) -> Result<(), PipelineError> {
    if let Some(max) = plan.config.failure_policy.max_consecutive() {
        if consecutive > max {
            return Err(ctx.fail(format!("{consecutive} consecutive CPIs dropped (budget {max})")));
        }
    }
    Ok(())
}

/// The gap bubble a front node originates when it drops the current CPI.
fn gap_here(ctx: &StageCtx<'_>, reason: String) -> Gap {
    Gap { cpi: ctx.cpi, origin: ctx.topology.stage(ctx.stage).name.clone(), reason }
}

/// The separate read task: "The only job of this I/O task is to read data
/// from the files and deliver it to the Doppler filter processing task."
pub struct ReadStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    consecutive_drops: u32,
}

impl ReadStage {
    /// One node of the read task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize) -> Self {
        Self { plan, local, nodes, consecutive_drops: 0 }
    }
}

impl Stage for ReadStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = block_range(dims.ranges, self.nodes, self.local);

        let (off, len) = slab_extent(dims, r0, r1);
        let outcome = read_with_policy(&self.plan, ctx, "read", None, off, len)?;

        ctx.phase(Phase::Send);
        // Deliver to every Doppler node whose range block intersects ours —
        // a gap bubble when the CPI was dropped, so no receive dangles.
        let df = self.plan.roles.doppler;
        let df_nodes = ctx.topology.stage(df).nodes;
        let gate_bytes = dims.channels * dims.pulses * 8;
        let (bytes, gap) = match outcome {
            ReadOutcome::Data(bytes) => {
                self.consecutive_drops = 0;
                (bytes, None)
            }
            ReadOutcome::Dropped(reason) => {
                self.consecutive_drops += 1;
                check_consecutive(&self.plan, ctx, self.consecutive_drops)?;
                (Vec::new(), Some(gap_here(ctx, reason)))
            }
        };
        for d in 0..df_nodes {
            let (d0, d1) = block_range(dims.ranges, df_nodes, d);
            let lo = r0.max(d0);
            let hi = r1.min(d1);
            if lo >= hi {
                continue;
            }
            let msg = match &gap {
                Some(g) => Payload::Gap(g.clone()),
                None => {
                    let b0 = (lo - r0) * gate_bytes;
                    let b1 = (hi - r0) * gate_bytes;
                    let mut slab = self.plan.byte_buf(b1 - b0);
                    slab.extend_from_slice(&bytes[b0..b1]);
                    self.plan.for_send(Payload::Data(RawSlab { r0: lo, r1: hi, bytes: slab }))
                }
            };
            ctx.send_to(df, d, port::RAW, msg)?;
        }
        Ok(())
    }
}

/// This node's raw slab for the current CPI, or the gap displacing it.
enum SlabOutcome {
    Cube(DataCube),
    Gap(Gap),
}

/// The Doppler filter task. Three phases when I/O is embedded — "reading
/// data from files, computation, and sending" — with asynchronous reads
/// overlapping the next CPI's read with this CPI's compute+send when the
/// file system supports it.
pub struct DopplerStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    filter: DopplerFilter,
    /// Sub-CPI work-stealing executor (`--schedule steal`).
    steal: Option<StealPool>,
    /// Posted fetch for the *next* CPI (async embedded mode).
    pending: Option<(u64, PendingFetch)>,
    consecutive_drops: u32,
}

impl DopplerStage {
    /// One node of the Doppler task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize) -> Self {
        let cfg: DopplerConfig = plan.config.doppler.clone();
        let filter = DopplerFilter::new(plan.config.dims.pulses, cfg);
        let steal = (plan.config.schedule == ScheduleMode::Steal).then(StealPool::for_machine);
        Self { plan, local, nodes, filter, steal, pending: None, consecutive_drops: 0 }
    }

    /// Both filter outputs for the slab: straight fork-join over range
    /// blocks under `--schedule steal`, whole-slab kernels otherwise.
    ///
    /// The stolen chunks run the blocked kernel and stitch back in range
    /// order, so the result is bit-identical to the static path (every
    /// range lane is an independent reduction).
    fn filter_slab(&self, ctx: &mut StageCtx<'_>, slab: &DataCube) -> (DopplerCube, DopplerCube) {
        if let Some(pool) = &self.steal {
            ctx.phase(Phase::Steal);
            let ranges = slab.dims().ranges;
            let parts = partition_even(ranges, (pool.workers() * 4).clamp(1, ranges.max(1)));
            let filter = &self.filter;
            let chunks = pool.run(parts.clone(), |(c0, c1)| {
                (
                    filter.filter_easy_chunk(slab, c0, c1),
                    filter.filter_staggered_chunk(slab, c0, c1),
                )
            });
            ctx.phase(Phase::Compute);
            let mut easy = DopplerCube::zeros(1, self.filter.bins(), slab.dims().channels, ranges);
            let mut hard = DopplerCube::zeros(2, self.filter.bins(), slab.dims().channels, ranges);
            for ((c0, _c1), (e, h)) in parts.into_iter().zip(chunks) {
                easy.copy_range_from(&e, c0);
                hard.copy_range_from(&h, c0);
            }
            (easy, hard)
        } else {
            ctx.phase(Phase::Compute);
            let path = self.plan.kernel_path();
            (
                self.filter.filter_easy_with(slab, path),
                self.filter.filter_staggered_with(slab, path),
            )
        }
    }

    fn my_ranges(&self) -> (usize, usize) {
        block_range(self.plan.config.dims.ranges, self.nodes, self.local)
    }

    /// Acquires this node's slab for `cpi`, embedded mode (sync or async).
    fn acquire_slab_embedded(
        &mut self,
        ctx: &mut StageCtx<'_>,
    ) -> Result<SlabOutcome, PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = self.my_ranges();
        let (off, len) = slab_extent(dims, r0, r1);

        // Wait on the fetch posted last iteration (or fetch synchronously
        // when none is pending), then immediately post the next CPI's
        // fetch so it overlaps this iteration's compute and send —
        // sources without an async path (PIOFS, streams) simply never
        // hand one out. Retries of a failed posted fetch fall back to
        // synchronous re-fetches.
        let pending = match self.pending.take() {
            Some((cpi, fetch)) if cpi == ctx.cpi => Some(fetch),
            _ => None,
        };
        let label = if pending.is_some() { "iread wait" } else { "read" };
        let outcome = read_with_policy(&self.plan, ctx, label, pending, off, len)?;
        let next = ctx.cpi + 1;
        if next < self.plan.config.cpis {
            if let Some(fetch) = self
                .plan
                .source
                .prefetch(next, off, len)
                .map_err(|e| ctx.fail(format!("iread: {e}")))?
            {
                self.pending = Some((next, fetch));
            }
        }
        Ok(match outcome {
            ReadOutcome::Data(bytes) => {
                SlabOutcome::Cube(DataCube::slab_from_range_major_bytes(dims, r0, r1, &bytes))
            }
            ReadOutcome::Dropped(reason) => SlabOutcome::Gap(gap_here(ctx, reason)),
        })
    }

    /// Receives this node's slab from the separate read task.
    fn acquire_slab_separate(
        &mut self,
        ctx: &mut StageCtx<'_>,
    ) -> Result<SlabOutcome, PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = self.my_ranges();
        let read = self.plan.roles.read.expect("separate mode has a read stage");
        let readers = ctx.topology.stage(read).nodes;
        let gate_bytes = dims.channels * dims.pulses * 8;
        let mut buf = self.plan.byte_buf((r1 - r0) * gate_bytes);
        buf.resize((r1 - r0) * gate_bytes, 0);
        let mut covered = 0usize;
        let mut gap: Option<Gap> = None;
        for i in 0..readers {
            let (i0, i1) = block_range(dims.ranges, readers, i);
            if i0.max(r0) >= i1.min(r1) {
                continue;
            }
            match ctx.recv_from::<Payload<RawSlab>>(read, i, port::RAW)? {
                Payload::Data(slab) => {
                    let b0 = (slab.r0 - r0) * gate_bytes;
                    buf[b0..b0 + slab.bytes.len()].copy_from_slice(&slab.bytes);
                    covered += slab.r1 - slab.r0;
                }
                Payload::Gap(g) => gap = Some(g),
            }
        }
        if let Some(g) = gap {
            return Ok(SlabOutcome::Gap(g));
        }
        if covered != r1 - r0 {
            return Err(ctx.fail(format!("raw slabs covered {covered} of {} gates", r1 - r0)));
        }
        Ok(SlabOutcome::Cube(DataCube::slab_from_range_major_bytes(dims, r0, r1, &buf)))
    }
}

impl Stage for DopplerStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let (r0, _r1) = self.my_ranges();

        // Phase 1: acquire the raw slab (read from PFS or recv from the
        // read task).
        let outcome = if self.plan.separate_io() {
            ctx.phase(Phase::Recv);
            self.acquire_slab_separate(ctx)?
        } else {
            // `read_with_policy` opens the attempt-keyed Read spans itself.
            self.acquire_slab_embedded(ctx)?
        };

        let roles = self.plan.roles;
        let sends: [(stap_pipeline::StageId, bool, u8); 4] = [
            (roles.easy_bf, false, port::EASY_DATA),
            (roles.hard_bf, true, port::HARD_DATA),
            (roles.easy_weight, false, port::EASY_TRAIN),
            (roles.hard_weight, true, port::HARD_TRAIN),
        ];

        let slab = match outcome {
            SlabOutcome::Cube(slab) => {
                self.consecutive_drops = 0;
                slab
            }
            SlabOutcome::Gap(g) => {
                // Drops originate here only in embedded mode; in separate
                // mode the read task already enforced its own budget.
                if !self.plan.separate_io() {
                    self.consecutive_drops += 1;
                    check_consecutive(&self.plan, ctx, self.consecutive_drops)?;
                }
                ctx.phase(Phase::Send);
                for (stage, _is_hard, p) in sends {
                    broadcast_gap::<BinSlab>(ctx, stage, p, &g)?;
                }
                return Ok(());
            }
        };

        // Phase 2: Doppler filtering, easy (full CPI) + hard (staggered).
        let (easy, hard) = self.filter_slab(ctx, &slab);

        // Phase 3: distribute per-bin slabs to the beamformers (spatial)
        // and the weight tasks (temporal consumers of this CPI's data).
        // Zero-copy mode carves the slabs out of the shared sample arena
        // and passes ownership; `--copy-comm` deep-copies at the boundary.
        ctx.phase(Phase::Send);
        let pool = (!self.plan.config.copy_comm).then_some(&self.plan.pools.samples);
        for (stage, is_hard, p) in sends {
            let nodes = ctx.topology.stage(stage).nodes;
            let cube = if is_hard { &hard } else { &easy };
            for n in 0..nodes {
                let bins = self.plan.owned_bins(is_hard, nodes, n);
                let msg = Payload::Data(BinSlab::from_cube_pooled(cube, &bins, r0, pool));
                ctx.send_to(stage, n, p, self.plan.for_send(msg))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_extents_tile_the_file() {
        let dims = CubeDims::new(8, 4, 64);
        let mut cursor = 0u64;
        for local in 0..5 {
            let (r0, r1) = block_range(dims.ranges, 5, local);
            let (off, len) = slab_extent(dims, r0, r1);
            assert_eq!(off, cursor);
            cursor = off + len as u64;
        }
        assert_eq!(cursor, dims.bytes() as u64);
    }
}
