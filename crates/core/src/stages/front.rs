//! The pipeline front: the (optional) separate read task and the Doppler
//! filter task with both I/O designs.

use crate::messages::{BinSlab, RawSlab};
use crate::stages::{port, StapPlan};
use stap_kernels::cube::{CubeDims, DataCube};
use stap_kernels::doppler::{DopplerConfig, DopplerFilter};
use stap_pfs::async_io::ReadHandle;
use stap_pipeline::schedule::block_range;
use stap_pipeline::stage::{Stage, StageCtx};
use stap_pipeline::timing::Phase;
use stap_pipeline::PipelineError;
use std::sync::Arc;

/// Byte extent (offset, length) of range gates `[r0, r1)` in a CPI file.
fn slab_extent(dims: CubeDims, r0: usize, r1: usize) -> (u64, usize) {
    let off = DataCube::range_major_offset(dims, r0);
    let len = (DataCube::range_major_offset(dims, r1) - off) as usize;
    (off, len)
}

/// The separate read task: "The only job of this I/O task is to read data
/// from the files and deliver it to the Doppler filter processing task."
pub struct ReadStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
}

impl ReadStage {
    /// One node of the read task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize) -> Self {
        Self { plan, local, nodes }
    }
}

impl Stage for ReadStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = block_range(dims.ranges, self.nodes, self.local);
        let slot = (ctx.cpi % self.plan.config.fanout as u64) as usize;

        ctx.phase(Phase::Read);
        let (off, len) = slab_extent(dims, r0, r1);
        let bytes =
            self.plan.files[slot].read_at(off, len).map_err(|e| ctx.fail(format!("read: {e}")))?;

        ctx.phase(Phase::Send);
        // Deliver to every Doppler node whose range block intersects ours.
        let df = self.plan.roles.doppler;
        let df_nodes = ctx.topology.stage(df).nodes;
        let gate_bytes = dims.channels * dims.pulses * 8;
        for d in 0..df_nodes {
            let (d0, d1) = block_range(dims.ranges, df_nodes, d);
            let lo = r0.max(d0);
            let hi = r1.min(d1);
            if lo >= hi {
                continue;
            }
            let b0 = (lo - r0) * gate_bytes;
            let b1 = (hi - r0) * gate_bytes;
            let msg = RawSlab { r0: lo, r1: hi, bytes: bytes[b0..b1].to_vec() };
            ctx.send_to(df, d, port::RAW, msg)?;
        }
        Ok(())
    }
}

/// The Doppler filter task. Three phases when I/O is embedded — "reading
/// data from files, computation, and sending" — with asynchronous reads
/// overlapping the next CPI's read with this CPI's compute+send when the
/// file system supports it.
pub struct DopplerStage {
    plan: Arc<StapPlan>,
    local: usize,
    nodes: usize,
    filter: DopplerFilter,
    /// Posted read for the *next* CPI (async embedded mode).
    pending: Option<(u64, ReadHandle)>,
}

impl DopplerStage {
    /// One node of the Doppler task.
    pub fn new(plan: Arc<StapPlan>, local: usize, nodes: usize) -> Self {
        let cfg: DopplerConfig = plan.config.doppler.clone();
        let filter = DopplerFilter::new(plan.config.dims.pulses, cfg);
        Self { plan, local, nodes, filter, pending: None }
    }

    fn my_ranges(&self) -> (usize, usize) {
        block_range(self.plan.config.dims.ranges, self.nodes, self.local)
    }

    fn file_slot(&self, cpi: u64) -> usize {
        (cpi % self.plan.config.fanout as u64) as usize
    }

    /// Reads this node's slab for `cpi`, embedded mode (sync or async).
    fn acquire_slab_embedded(&mut self, ctx: &mut StageCtx<'_>) -> Result<DataCube, PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = self.my_ranges();
        let (off, len) = slab_extent(dims, r0, r1);
        let async_ok = self.plan.config.fs.supports_async;

        let bytes = if async_ok {
            // Wait on the read posted last iteration (or post+wait on the
            // first CPI), then immediately post the next CPI's read so it
            // overlaps this iteration's compute and send.
            let bytes = match self.pending.take() {
                Some((cpi, h)) if cpi == ctx.cpi => {
                    h.wait().map_err(|e| ctx.fail(format!("iread wait: {e}")))?
                }
                _ => self.plan.files[self.file_slot(ctx.cpi)]
                    .read_at(off, len)
                    .map_err(|e| ctx.fail(format!("read: {e}")))?,
            };
            let next = ctx.cpi + 1;
            if next < self.plan.config.cpis {
                let h = self.plan.files[self.file_slot(next)]
                    .read_at_async(off, len)
                    .map_err(|e| ctx.fail(format!("iread: {e}")))?;
                self.pending = Some((next, h));
            }
            bytes
        } else {
            // PIOFS: synchronous read each iteration, no overlap.
            self.plan.files[self.file_slot(ctx.cpi)]
                .read_at(off, len)
                .map_err(|e| ctx.fail(format!("read: {e}")))?
        };
        Ok(DataCube::slab_from_range_major_bytes(dims, r0, r1, &bytes))
    }

    /// Receives this node's slab from the separate read task.
    fn acquire_slab_separate(&mut self, ctx: &mut StageCtx<'_>) -> Result<DataCube, PipelineError> {
        let dims = self.plan.config.dims;
        let (r0, r1) = self.my_ranges();
        let read = self.plan.roles.read.expect("separate mode has a read stage");
        let readers = ctx.topology.stage(read).nodes;
        let gate_bytes = dims.channels * dims.pulses * 8;
        let mut buf = vec![0u8; (r1 - r0) * gate_bytes];
        let mut covered = 0usize;
        for i in 0..readers {
            let (i0, i1) = block_range(dims.ranges, readers, i);
            if i0.max(r0) >= i1.min(r1) {
                continue;
            }
            let slab: RawSlab = ctx.recv_from(read, i, port::RAW)?;
            let b0 = (slab.r0 - r0) * gate_bytes;
            buf[b0..b0 + slab.bytes.len()].copy_from_slice(&slab.bytes);
            covered += slab.r1 - slab.r0;
        }
        if covered != r1 - r0 {
            return Err(ctx.fail(format!("raw slabs covered {covered} of {} gates", r1 - r0)));
        }
        Ok(DataCube::slab_from_range_major_bytes(dims, r0, r1, &buf))
    }
}

impl Stage for DopplerStage {
    fn run_cpi(&mut self, ctx: &mut StageCtx<'_>) -> Result<(), PipelineError> {
        let (r0, _r1) = self.my_ranges();

        // Phase 1: acquire the raw slab (read from PFS or recv from the
        // read task).
        let slab = if self.plan.separate_io() {
            ctx.phase(Phase::Recv);
            self.acquire_slab_separate(ctx)?
        } else {
            ctx.phase(Phase::Read);
            self.acquire_slab_embedded(ctx)?
        };

        // Phase 2: Doppler filtering, easy (full CPI) + hard (staggered).
        ctx.phase(Phase::Compute);
        let easy = self.filter.filter_easy(&slab);
        let hard = self.filter.filter_staggered(&slab);

        // Phase 3: distribute per-bin slabs to the beamformers (spatial)
        // and the weight tasks (temporal consumers of this CPI's data).
        ctx.phase(Phase::Send);
        let roles = self.plan.roles;
        let sends: [(stap_pipeline::StageId, bool, u8); 4] = [
            (roles.easy_bf, false, port::EASY_DATA),
            (roles.hard_bf, true, port::HARD_DATA),
            (roles.easy_weight, false, port::EASY_TRAIN),
            (roles.hard_weight, true, port::HARD_TRAIN),
        ];
        for (stage, is_hard, p) in sends {
            let nodes = ctx.topology.stage(stage).nodes;
            let cube = if is_hard { &hard } else { &easy };
            for n in 0..nodes {
                let bins = self.plan.owned_bins(is_hard, nodes, n);
                let msg = BinSlab::from_cube(cube, &bins, r0);
                ctx.send_to(stage, n, p, msg)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_extents_tile_the_file() {
        let dims = CubeDims::new(8, 4, 64);
        let mut cursor = 0u64;
        for local in 0..5 {
            let (r0, r1) = block_range(dims.ranges, 5, local);
            let (off, len) = slab_extent(dims, r0, r1);
            assert_eq!(off, cursor);
            cursor = off + len as u64;
        }
        assert_eq!(cursor, dims.bytes() as u64);
    }
}
