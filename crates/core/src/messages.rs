//! Inter-stage message payloads of the real pipeline.
//!
//! Stages exchange typed values through `stap-comm`; these are the payload
//! types with their (re)assembly logic. The bin-slab type carries
//! Doppler-filtered data for a set of bins over one node's range interval;
//! receivers stitch slabs from every sender into a full-range cube for
//! their bins. The row-batch type carries beamformed (bin, beam) range rows
//! between the tail tasks.
//!
//! Every payload's sample/byte storage is a [`PoolVec`] so the data plane
//! can recycle slabs through a [`SlabPool`] arena across CPIs (zero-copy
//! mode); `--copy-comm` constructs detached (plain-allocation) buffers
//! instead.

use stap_comm::{PoolVec, SlabPool};
use stap_kernels::cube::DopplerCube;
use stap_math::C32;

/// A dropped CPI, flowing through the pipeline in place of real data.
///
/// Under [`crate::config::FailurePolicy::SkipCpi`], a node whose CPI read
/// keeps failing gives the CPI up and ships a gap instead; every
/// downstream stage that receives a gap for a CPI forwards a gap on all of
/// its own output edges (its sends are stage-wide, so consumers observe a
/// consistent drop), and the sink records it. No receive ever goes
/// unmatched: each producer emits exactly one message — data or gap — per
/// consumer per CPI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gap {
    /// The dropped CPI's sequence number.
    pub cpi: u64,
    /// Name of the stage that originated the drop.
    pub origin: String,
    /// The final read error that exhausted the retry budget.
    pub reason: String,
}

/// An inter-stage message that is either real data or a gap bubble.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<T> {
    /// A normal CPI's payload.
    Data(T),
    /// This CPI was dropped upstream.
    Gap(Gap),
}

impl<T> Payload<T> {
    /// True when this message is a gap bubble.
    pub fn is_gap(&self) -> bool {
        matches!(self, Payload::Gap(_))
    }

    /// Splits into data or the gap that displaced it.
    ///
    /// # Errors
    /// Returns the [`Gap`] when this payload is a bubble.
    pub fn into_result(self) -> Result<T, Gap> {
        match self {
            Payload::Data(d) => Ok(d),
            Payload::Gap(g) => Err(g),
        }
    }
}

/// Doppler-filtered samples for `bins` over ranges `[r0, r1)`.
///
/// Layout: `data[((bin_idx · staggers + s) · channels + c) · (r1-r0) + r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BinSlab {
    /// The absolute Doppler bin numbers carried (in order).
    pub bins: Vec<usize>,
    /// Stagger count (1 easy, 2 hard).
    pub staggers: usize,
    /// Channel count.
    pub channels: usize,
    /// First range gate (inclusive).
    pub r0: usize,
    /// Last range gate (exclusive).
    pub r1: usize,
    /// Samples.
    pub data: PoolVec<C32>,
}

impl BinSlab {
    /// Extracts a slab from a Doppler cube covering ranges `[r0, r1)` of the
    /// cube's local range axis, relabeled as absolute gates. The sample
    /// buffer is detached (plain allocation); the pipeline's zero-copy path
    /// uses [`BinSlab::from_cube_pooled`].
    ///
    /// `cube` holds this node's range interval starting at absolute gate
    /// `cube_r0`; the slab covers the cube's *entire* local range extent.
    pub fn from_cube(cube: &DopplerCube, bins: &[usize], cube_r0: usize) -> Self {
        Self::from_cube_pooled(cube, bins, cube_r0, None)
    }

    /// [`BinSlab::from_cube`] drawing the sample buffer from `pool` (when
    /// one is given), so steady-state CPIs recycle slabs instead of
    /// allocating.
    pub fn from_cube_pooled(
        cube: &DopplerCube,
        bins: &[usize],
        cube_r0: usize,
        pool: Option<&SlabPool<C32>>,
    ) -> Self {
        let n = cube.ranges();
        let cap = bins.len() * cube.staggers() * cube.channels() * n;
        let mut data = match pool {
            Some(pool) => pool.take(cap),
            None => PoolVec::detached(Vec::with_capacity(cap)),
        };
        for &b in bins {
            for s in 0..cube.staggers() {
                for c in 0..cube.channels() {
                    // Rows are contiguous in range: one streaming copy each.
                    data.extend_from_slice(cube.row(s, b, c));
                }
            }
        }
        Self {
            bins: bins.to_vec(),
            staggers: cube.staggers(),
            channels: cube.channels(),
            r0: cube_r0,
            r1: cube_r0 + n,
            data,
        }
    }

    /// Sample lookup.
    pub fn get(&self, bin_idx: usize, s: usize, c: usize, abs_r: usize) -> C32 {
        let n = self.r1 - self.r0;
        let r = abs_r - self.r0;
        self.data[((bin_idx * self.staggers + s) * self.channels + c) * n + r]
    }

    /// Number of bytes of sample payload (for I/O accounting).
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// Why a set of slabs could not be stitched into a [`DopplerCube`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssemblyError {
    /// No slabs were provided at all.
    NoSlabs,
    /// A slab's stagger count disagrees with the first slab's.
    StaggerMismatch {
        /// Stagger count of the first slab.
        expected: usize,
        /// Stagger count of the offending slab.
        found: usize,
    },
    /// A slab's channel count disagrees with the first slab's.
    ChannelMismatch {
        /// Channel count of the first slab.
        expected: usize,
        /// Channel count of the offending slab.
        found: usize,
    },
    /// A slab does not carry one of the requested bins.
    MissingBin(usize),
    /// The slabs leave a range gate uncovered.
    RangeGap {
        /// First absolute gate with no covering slab.
        gate: usize,
    },
}

impl std::fmt::Display for AssemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssemblyError::NoSlabs => write!(f, "no slabs to assemble"),
            AssemblyError::StaggerMismatch { expected, found } => {
                write!(f, "stagger mismatch across slabs: expected {expected}, found {found}")
            }
            AssemblyError::ChannelMismatch { expected, found } => {
                write!(f, "channel mismatch across slabs: expected {expected}, found {found}")
            }
            AssemblyError::MissingBin(b) => write!(f, "slab missing bin {b}"),
            AssemblyError::RangeGap { gate } => {
                write!(f, "slabs do not tile the range axis: gate {gate} uncovered")
            }
        }
    }
}

impl std::error::Error for AssemblyError {}

/// Assembles a full-range [`DopplerCube`] covering exactly `bins` from
/// slabs that tile the range axis `[0, ranges)`.
///
/// The returned cube's bin axis is *compacted*: cube bin index `i`
/// corresponds to `bins[i]`.
///
/// # Errors
/// Returns an [`AssemblyError`] when the slabs are inconsistent, miss a
/// requested bin, or do not cover every gate of the range axis.
pub fn assemble_bins(
    bins: &[usize],
    ranges: usize,
    slabs: &[BinSlab],
) -> Result<DopplerCube, AssemblyError> {
    let first = slabs.first().ok_or(AssemblyError::NoSlabs)?;
    let staggers = first.staggers;
    let channels = first.channels;
    let mut cube = DopplerCube::zeros(staggers, bins.len(), channels, ranges);
    let mut covered = vec![0usize; ranges];
    for slab in slabs {
        if slab.staggers != staggers {
            return Err(AssemblyError::StaggerMismatch {
                expected: staggers,
                found: slab.staggers,
            });
        }
        if slab.channels != channels {
            return Err(AssemblyError::ChannelMismatch {
                expected: channels,
                found: slab.channels,
            });
        }
        for (i, &b) in bins.iter().enumerate() {
            let bin_idx =
                slab.bins.iter().position(|&x| x == b).ok_or(AssemblyError::MissingBin(b))?;
            for s in 0..staggers {
                for c in 0..channels {
                    for abs_r in slab.r0..slab.r1 {
                        *cube.get_mut(s, i, c, abs_r) = slab.get(bin_idx, s, c, abs_r);
                    }
                }
            }
        }
        for c in covered.iter_mut().take(slab.r1).skip(slab.r0) {
            *c += 1;
        }
    }
    if let Some(gate) = covered.iter().position(|&c| c == 0) {
        return Err(AssemblyError::RangeGap { gate });
    }
    Ok(cube)
}

/// Raw on-disk bytes for range gates `[r0, r1)` — what the separate read
/// task ships to the Doppler nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawSlab {
    /// First absolute range gate covered (inclusive).
    pub r0: usize,
    /// Last absolute range gate covered (exclusive).
    pub r1: usize,
    /// Range-major bytes (`(r1-r0)·channels·pulses·8`).
    pub bytes: PoolVec<u8>,
}

impl RawSlab {
    /// A slab over a detached byte buffer (tests and `--copy-comm`).
    pub fn new(r0: usize, r1: usize, bytes: Vec<u8>) -> Self {
        Self { r0, r1, bytes: PoolVec::detached(bytes) }
    }
}

/// Beamformed range rows for a set of (bin, beam) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct RowBatch {
    /// The (absolute bin, beam) identity of each row.
    pub rows: Vec<(usize, usize)>,
    /// Range gates per row.
    pub ranges: usize,
    /// `data[row · ranges + r]`.
    pub data: PoolVec<C32>,
}

impl RowBatch {
    /// An empty batch over a detached buffer.
    pub fn new(ranges: usize) -> Self {
        Self { rows: Vec::new(), ranges, data: PoolVec::detached(Vec::new()) }
    }

    /// An empty batch whose sample buffer comes from `pool` with room for
    /// `capacity_rows` rows — the zero-copy path's constructor.
    pub fn pooled(ranges: usize, capacity_rows: usize, pool: &SlabPool<C32>) -> Self {
        Self {
            rows: Vec::with_capacity(capacity_rows),
            ranges,
            data: pool.take(capacity_rows * ranges),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row length differs from `ranges`.
    pub fn push(&mut self, bin: usize, beam: usize, row: &[C32]) {
        assert_eq!(row.len(), self.ranges, "row length mismatch");
        self.rows.push((bin, beam));
        self.data.extend_from_slice(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow of the `i`-th row.
    pub fn row(&self, i: usize) -> &[C32] {
        &self.data[i * self.ranges..(i + 1) * self.ranges]
    }

    /// Mutable borrow of the `i`-th row.
    pub fn row_mut(&mut self, i: usize) -> &mut [C32] {
        &mut self.data[i * self.ranges..(i + 1) * self.ranges]
    }

    /// Merges another batch into this one (the other's buffer recycles to
    /// its pool on return).
    pub fn extend(&mut self, other: RowBatch) {
        assert_eq!(self.ranges, other.ranges, "range extent mismatch");
        self.rows.extend(other.rows);
        self.data.extend_from_slice(&other.data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cube(staggers: usize, bins: usize, channels: usize, ranges: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(staggers, bins, channels, ranges);
        for s in 0..staggers {
            for b in 0..bins {
                for c in 0..channels {
                    for r in 0..ranges {
                        *dc.get_mut(s, b, c, r) =
                            C32::new((s * 1000 + b * 100 + c * 10 + r) as f32, 0.0);
                    }
                }
            }
        }
        dc
    }

    #[test]
    fn slab_round_trips_through_assembly() {
        // A node computed bins over local ranges [0,3) at absolute r0=2.
        let cube = tiny_cube(2, 4, 3, 3);
        let slab_a = BinSlab::from_cube(&cube, &[1, 3], 2);
        assert_eq!(slab_a.get(0, 1, 2, 4), cube.get(1, 1, 2, 2));

        // Another node covers absolute [0,2) and [5,6) missing → use two
        // slabs tiling [0,6).
        let cube_b = tiny_cube(2, 4, 3, 2);
        let slab_b = BinSlab::from_cube(&cube_b, &[1, 3], 0);
        let cube_c = tiny_cube(2, 4, 3, 1);
        let slab_c = BinSlab::from_cube(&cube_c, &[1, 3], 5);
        let full = assemble_bins(&[1, 3], 6, &[slab_a, slab_b, slab_c]).expect("tiled");
        assert_eq!(full.bins(), 2);
        assert_eq!(full.ranges(), 6);
        // Absolute gate 3 came from slab_a local r=1 of bin 3 (index 1).
        assert_eq!(full.get(1, 1, 0, 3), cube.get(1, 3, 0, 1));
        // Absolute gate 1 came from slab_b.
        assert_eq!(full.get(0, 0, 2, 1), cube_b.get(0, 1, 2, 1));
    }

    #[test]
    fn assembly_detects_gaps() {
        let cube = tiny_cube(1, 2, 1, 2);
        let slab = BinSlab::from_cube(&cube, &[0], 0);
        let err = assemble_bins(&[0], 4, &[slab]).unwrap_err();
        assert_eq!(err, AssemblyError::RangeGap { gate: 2 });
        assert!(format!("{err}").contains("do not tile"));
    }

    #[test]
    fn assembly_detects_missing_bin() {
        let cube = tiny_cube(1, 2, 1, 2);
        let slab = BinSlab::from_cube(&cube, &[0], 0);
        let err = assemble_bins(&[1], 2, &[slab]).unwrap_err();
        assert_eq!(err, AssemblyError::MissingBin(1));
        assert!(format!("{err}").contains("missing bin 1"));
    }

    #[test]
    fn assembly_rejects_empty_and_mismatched_slabs() {
        assert_eq!(assemble_bins(&[0], 2, &[]).unwrap_err(), AssemblyError::NoSlabs);
        let a = BinSlab::from_cube(&tiny_cube(1, 2, 1, 2), &[0], 0);
        let b = BinSlab::from_cube(&tiny_cube(2, 2, 1, 2), &[0], 0);
        assert_eq!(
            assemble_bins(&[0], 2, &[a.clone(), b]).unwrap_err(),
            AssemblyError::StaggerMismatch { expected: 1, found: 2 }
        );
        let c = BinSlab::from_cube(&tiny_cube(1, 2, 3, 2), &[0], 0);
        assert_eq!(
            assemble_bins(&[0], 2, &[a, c]).unwrap_err(),
            AssemblyError::ChannelMismatch { expected: 1, found: 3 }
        );
    }

    #[test]
    fn row_batch_accumulates_rows() {
        let mut b = RowBatch::new(3);
        b.push(4, 0, &[C32::one(); 3]);
        b.push(7, 1, &[C32::i(); 3]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.rows[1], (7, 1));
        assert_eq!(b.row(1)[0], C32::i());
        let mut c = RowBatch::new(3);
        c.push(9, 0, &[C32::zero(); 3]);
        b.extend(c);
        assert_eq!(b.len(), 3);
        assert_eq!(b.rows[2], (9, 0));
    }

    #[test]
    fn payload_bytes_counts_samples() {
        let cube = tiny_cube(1, 2, 2, 4);
        let slab = BinSlab::from_cube(&cube, &[0, 1], 0);
        assert_eq!(slab.payload_bytes(), 2 * 2 * 4 * 8);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn row_length_checked() {
        RowBatch::new(4).push(0, 0, &[C32::zero(); 3]);
    }

    #[test]
    fn payload_splits_into_data_or_gap() {
        let d: Payload<u32> = Payload::Data(7);
        assert!(!d.is_gap());
        assert_eq!(d.into_result().unwrap(), 7);
        let gap = Gap { cpi: 3, origin: "Doppler filter".into(), reason: "boom".into() };
        let g: Payload<u32> = Payload::Gap(gap.clone());
        assert!(g.is_gap());
        assert_eq!(g.into_result().unwrap_err(), gap);
    }
}
