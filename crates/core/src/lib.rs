#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # stap-core — the parallel pipelined STAP system with I/O strategies
//!
//! The paper's primary contribution, assembled from the workspace's
//! substrates. Two execution modes cover the two things a reproduction must
//! do:
//!
//! **Real mode** ([`system`], [`stages`]): the full seven-task STAP pipeline
//! runs on threads — synthetic radar CPI cubes are staged round-robin into
//! four files on the striped parallel file system, the first task reads
//! them back (embedded in the Doppler task or as a separate I/O task),
//! Doppler filtering / adaptive weights / beamforming / pulse compression /
//! CFAR all really compute, and detection reports come out the end. This
//! proves the system works and measures genuine phase timings.
//!
//! **Virtual-time mode** ([`desmodel`], [`experiments`]): the same pipeline
//! structure simulated on the calibrated Paragon/SP machine models at the
//! paper's node counts (25/50/100), regenerating every table and figure of
//! the evaluation — Table 1 (embedded I/O), Table 2 (separate I/O task),
//! Table 3 (combined PC+CFAR), Table 4 (latency improvement), Figures 5–8.
//!
//! [`config`] holds the shared configuration; [`messages`] the inter-stage
//! payload types; [`io_strategy`] the two I/O designs and the tail
//! (split/combined) structure choice.

pub mod config;
pub mod desmodel;
pub mod experiments;
pub mod io_strategy;
pub mod messages;
pub mod stages;
pub mod system;

pub use config::{
    FailurePolicy, RetryPolicy, SourceSpec, StapConfig, StreamSettings, WatchdogPolicy,
};
pub use desmodel::{DesExperiment, DesFaultModel, DesResult, FaultSource, FleetEvent, Redundancy};
pub use io_strategy::{IoStrategy, TailStructure};
pub use messages::{Gap, Payload};
pub use stages::QualityTap;
pub use stap_kernels::KernelPath;
pub use stap_pipeline::schedule::ScheduleMode;
pub use system::{IngestReport, StapRunOutput, StapSystem};
