#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

//! # stap-store — the smart storage tier
//!
//! The paper's I/O strategies treat the parallel file system as passive:
//! the pipeline decides *where* reads happen (embedded vs. a separate I/O
//! task) and the planner decides *how the file is striped*, but the
//! servers themselves just serve stripe units. This crate makes the
//! storage tier active, four ways:
//!
//! - **Read cache** ([`cache`]) — a byte-budgeted LRU over file extents
//!   on the I/O-server side; hits are served at copy bandwidth and skip
//!   the stripe-server queues entirely.
//! - **Server-side prefetch** ([`prefetch`]) — a sequential/round-robin
//!   pattern detector over the CPI access stream that stages upcoming
//!   cubes into the cache, independent of client `iread` support.
//! - **Out-of-core cubes** ([`chunked`]) — range-block chunked streaming
//!   with a hard peak-footprint accounting check, for cubes that do not
//!   fit node memory.
//! - **Online restriping** ([`restripe`]) — copy-then-swap migration of a
//!   live file to a new stripe factor without stopping readers.
//!
//! [`StoreSource`] composes all four behind the pipeline's
//! [`stap_pipeline::CpiSource`] seam; `stap_model::cachetier` is the
//! matching cost model the planner and the DES price these strategies
//! with, so `plan`, `serve --sim`, and real execution agree.

pub mod cache;
pub mod chunked;
pub mod error;
pub mod prefetch;
pub mod restripe;
pub mod source;

pub use cache::{CacheKey, CacheStats, ReadCache};
pub use chunked::{ChunkedCube, CubeAccess, FootprintGrant, FootprintMeter};
pub use error::StoreError;
pub use prefetch::{Prefetcher, ReadAhead, HOT_QUEUE_DEPTH};
pub use restripe::{restripe_live, LiveFile, RestripeReport};
pub use source::{StoreConfig, StoreSource};
