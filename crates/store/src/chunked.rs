//! Out-of-core CPI cube streaming: bounded-memory range-block chunking
//! with a hard peak-footprint accounting check.
//!
//! A CPI data cube is `range_gates × channels × pulses` complex samples
//! laid out range-gate-major. Resident access reads the whole cube in
//! one extent; out-of-core access streams it in chunks of `chunk_rows`
//! range gates, never holding more than one chunk of scratch per reader.
//! Every scratch allocation is charged against a [`FootprintMeter`]; an
//! allocation that would exceed the bound fails with
//! [`StoreError::FootprintExceeded`] instead of silently growing — the
//! bound is a guarantee, not a hint.

use crate::error::StoreError;
use stap_pfs::FileHandle;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a reader materializes CPI cubes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeAccess {
    /// Whole cube in one read — the classic mode of every prior PR.
    Resident,
    /// Stream the cube through fixed-size range-gate chunks; scratch is
    /// bounded by `chunk_rows` worth of samples per in-flight read.
    OutOfCore {
        /// Range gates per chunk (clamped to the cube height at use).
        chunk_rows: usize,
    },
}

impl CubeAccess {
    /// Parses `"resident"` or `"ooc:{rows}"`.
    pub fn parse(spec: &str) -> Result<Self, StoreError> {
        if spec == "resident" {
            return Ok(CubeAccess::Resident);
        }
        if let Some(rows) = spec.strip_prefix("ooc:") {
            let chunk_rows: usize = rows.parse().map_err(|_| StoreError::BadSpec {
                spec: spec.to_string(),
                reason: "chunk rows must be a positive integer".to_string(),
            })?;
            if chunk_rows == 0 {
                return Err(StoreError::BadSpec {
                    spec: spec.to_string(),
                    reason: "chunk rows must be a positive integer".to_string(),
                });
            }
            return Ok(CubeAccess::OutOfCore { chunk_rows });
        }
        Err(StoreError::BadSpec {
            spec: spec.to_string(),
            reason: "expected resident|ooc:ROWS".to_string(),
        })
    }

    /// Human-readable form, inverse of [`CubeAccess::parse`].
    pub fn label(&self) -> String {
        match self {
            CubeAccess::Resident => "resident".to_string(),
            CubeAccess::OutOfCore { chunk_rows } => format!("ooc:{chunk_rows}"),
        }
    }
}

/// Hard accounting of out-of-core scratch bytes. Allocations are RAII
/// grants; dropping a grant releases its bytes. `peak` records the high
/// watermark so a run can *prove* it stayed under the bound.
#[derive(Debug)]
pub struct FootprintMeter {
    bound: u64,
    in_use: AtomicU64,
    peak: AtomicU64,
}

impl FootprintMeter {
    /// A meter enforcing `bound` bytes of simultaneous scratch.
    pub fn new(bound: u64) -> Arc<Self> {
        Arc::new(Self { bound, in_use: AtomicU64::new(0), peak: AtomicU64::new(0) })
    }

    /// The configured bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// Bytes currently granted.
    pub fn in_use(&self) -> u64 {
        self.in_use.load(Ordering::Relaxed)
    }

    /// High watermark of granted bytes over the meter's lifetime.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Charges `bytes` against the bound, or fails if the bound would be
    /// exceeded. The returned grant releases the bytes on drop.
    pub fn try_alloc(self: &Arc<Self>, bytes: u64) -> Result<FootprintGrant, StoreError> {
        let mut cur = self.in_use.load(Ordering::Relaxed);
        loop {
            let next = cur + bytes;
            if next > self.bound {
                return Err(StoreError::FootprintExceeded {
                    requested: bytes,
                    in_use: cur,
                    bound: self.bound,
                });
            }
            match self.in_use.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(next, Ordering::Relaxed);
                    return Ok(FootprintGrant { meter: Arc::clone(self), bytes });
                }
                Err(seen) => cur = seen,
            }
        }
    }
}

/// An outstanding scratch charge; releases its bytes when dropped.
#[derive(Debug)]
pub struct FootprintGrant {
    meter: Arc<FootprintMeter>,
    bytes: u64,
}

impl FootprintGrant {
    /// Bytes this grant holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for FootprintGrant {
    fn drop(&mut self) {
        self.meter.in_use.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// Streams one file extent through bounded chunks.
#[derive(Debug, Clone)]
pub struct ChunkedCube {
    /// Bytes per chunk (derived from `chunk_rows × row_bytes`).
    pub chunk_bytes: usize,
    /// Scratch accountant shared by every reader of this store.
    pub meter: Arc<FootprintMeter>,
}

impl ChunkedCube {
    /// A streamer reading `chunk_rows` rows of `row_bytes` at a time.
    pub fn new(chunk_rows: usize, row_bytes: usize, meter: Arc<FootprintMeter>) -> Self {
        Self { chunk_bytes: chunk_rows.max(1) * row_bytes.max(1), meter }
    }

    /// Reads `[offset, offset+len)` of `file` chunk by chunk, assembling
    /// the result. Peak scratch is one chunk per concurrent call — every
    /// chunk buffer is charged to the meter while live.
    pub fn read(&self, file: &FileHandle, offset: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::with_capacity(len);
        let mut done = 0usize;
        while done < len {
            let piece = self.chunk_bytes.min(len - done);
            let _grant = self.meter.try_alloc(piece as u64)?;
            let chunk = file.read_at(offset + done as u64, piece)?;
            out.extend_from_slice(&chunk);
            done += piece;
            // `_grant` drops here: the chunk scratch is released once its
            // bytes have been appended to the caller's buffer.
        }
        Ok(out)
    }

    /// Writes `data` to `[offset, offset+len)` of `file` chunk by chunk
    /// under the same scratch accounting.
    pub fn write(&self, file: &FileHandle, offset: u64, data: &[u8]) -> Result<(), StoreError> {
        let mut done = 0usize;
        while done < data.len() {
            let piece = self.chunk_bytes.min(data.len() - done);
            let _grant = self.meter.try_alloc(piece as u64)?;
            file.write_at(offset + done as u64, &data[done..done + piece])?;
            done += piece;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_pfs::{FsConfig, OpenMode, Pfs};

    fn cube_file(fs: &Pfs) -> FileHandle {
        fs.gopen("cube.dat", OpenMode::Async)
    }

    fn pfs() -> Pfs {
        Pfs::mount(FsConfig::paragon_pfs(4))
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(CubeAccess::parse("resident").unwrap(), CubeAccess::Resident);
        assert_eq!(CubeAccess::parse("ooc:32").unwrap(), CubeAccess::OutOfCore { chunk_rows: 32 });
        assert_eq!(CubeAccess::OutOfCore { chunk_rows: 32 }.label(), "ooc:32");
        assert!(CubeAccess::parse("ooc:0").is_err());
        assert!(CubeAccess::parse("ooc:x").is_err());
        assert!(CubeAccess::parse("mmap").is_err());
    }

    #[test]
    fn meter_enforces_the_bound_and_records_the_peak() {
        let m = FootprintMeter::new(100);
        let a = m.try_alloc(60).unwrap();
        let err = m.try_alloc(50).unwrap_err();
        match err {
            StoreError::FootprintExceeded { requested, in_use, bound } => {
                assert_eq!((requested, in_use, bound), (50, 60, 100));
            }
            other => panic!("unexpected error {other:?}"),
        }
        let b = m.try_alloc(40).unwrap();
        assert_eq!(m.in_use(), 100);
        drop(a);
        drop(b);
        assert_eq!(m.in_use(), 0);
        assert_eq!(m.peak(), 100);
    }

    #[test]
    fn chunked_read_matches_plain_read() {
        let fs = pfs();
        let f = cube_file(&fs);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        f.write_at(0, &data).unwrap();
        let meter = FootprintMeter::new(1 << 20);
        let cube = ChunkedCube::new(3, 257, Arc::clone(&meter));
        let got = cube.read(&f, 0, data.len()).unwrap();
        assert_eq!(got, f.read_at(0, data.len()).unwrap());
        assert_eq!(meter.in_use(), 0, "all scratch released");
        assert_eq!(meter.peak(), 3 * 257, "peak is one chunk");
    }

    #[test]
    fn chunked_write_round_trips() {
        let fs = pfs();
        let f = cube_file(&fs);
        let data: Vec<u8> = (0..4096u32).map(|i| (i * 7 % 256) as u8).collect();
        let meter = FootprintMeter::new(512);
        let cube = ChunkedCube::new(1, 512, meter);
        cube.write(&f, 0, &data).unwrap();
        assert_eq!(f.read_at(0, data.len()).unwrap(), data);
    }

    #[test]
    fn a_too_small_bound_fails_loudly() {
        let fs = pfs();
        let f = cube_file(&fs);
        f.write_at(0, &[0u8; 2048]).unwrap();
        let meter = FootprintMeter::new(100);
        let cube = ChunkedCube::new(1, 512, meter);
        let err = cube.read(&f, 0, 2048).unwrap_err();
        assert!(err.to_string().contains("footprint"));
    }
}
