//! Online restriping: migrate a live file to a new stripe factor
//! mid-mission without stopping its readers.
//!
//! The PFS fixes a file's stripe layout at mount time, so changing the
//! stripe factor means *copying*: the migrator streams the source file
//! into a file of the same name on a target mount (new stripe factor),
//! one stripe unit at a time, verifies the lengths agree, then swaps the
//! handle inside the reader-shared [`LiveFile`]. Readers that raced the
//! copy finish against the old handle; the next read goes to the new
//! layout. No reader ever blocks on the migration.

use crate::error::StoreError;
use parking_lot::RwLock;
use stap_pfs::{FileHandle, Pfs};
use std::sync::Arc;

/// A file handle readers share through a swap point, so the storage tier
/// can replace the backing layout underneath them.
#[derive(Debug)]
pub struct LiveFile {
    inner: RwLock<FileHandle>,
}

impl LiveFile {
    /// Wraps `handle` as the current backing file.
    pub fn new(handle: FileHandle) -> Arc<Self> {
        Arc::new(Self { inner: RwLock::new(handle) })
    }

    /// A clone of the current backing handle — cheap, and stable for the
    /// duration of one read even if a swap lands mid-flight.
    pub fn handle(&self) -> FileHandle {
        self.inner.read().clone()
    }

    /// Atomically replaces the backing handle, returning the old one.
    pub fn swap(&self, next: FileHandle) -> FileHandle {
        std::mem::replace(&mut *self.inner.write(), next)
    }

    /// Name of the current backing file.
    pub fn name(&self) -> String {
        self.inner.read().name().to_string()
    }

    /// Length of the current backing file.
    pub fn len(&self) -> u64 {
        self.inner.read().len()
    }

    /// Whether the current backing file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// What an online restripe accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestripeReport {
    /// File migrated.
    pub name: String,
    /// Stripe factor before.
    pub from_sf: usize,
    /// Stripe factor after.
    pub to_sf: usize,
    /// Stripe units copied.
    pub units_copied: u64,
    /// Bytes copied.
    pub bytes: u64,
}

/// Migrates `live` onto `dst_pfs` (typically mounted with a different
/// stripe factor) by copy-then-swap, stripe unit by stripe unit. Readers
/// keep reading the old layout until the swap; the swap is atomic.
///
/// Errors are typed: a read failure is [`StoreError::MigrationRead`], a
/// write failure [`StoreError::MigrationWrite`], and a source that grew
/// or shrank during the copy [`StoreError::MigrationDiverged`].
pub fn restripe_live(live: &LiveFile, dst_pfs: &Pfs) -> Result<RestripeReport, StoreError> {
    let src = live.handle();
    let name = src.name().to_string();
    let from_sf = src.fs().config().stripe_factor;
    let to_sf = dst_pfs.config().stripe_factor;
    let unit = src.fs().config().stripe_unit.max(1);
    let len = src.len();

    let dst = dst_pfs.gopen(&name, src.mode);
    let mut offset = 0u64;
    let mut units_copied = 0u64;
    while offset < len {
        let piece = (unit as u64).min(len - offset) as usize;
        let data = src.read_at(offset, piece).map_err(StoreError::MigrationRead)?;
        dst.write_at(offset, &data).map_err(StoreError::MigrationWrite)?;
        offset += piece as u64;
        units_copied += 1;
    }

    // The swap is only safe if the source did not move under the copy.
    let src_len = src.len();
    let dst_len = dst.len();
    if src_len != len || dst_len != len {
        return Err(StoreError::MigrationDiverged { name, src_len, dst_len });
    }

    live.swap(dst);
    Ok(RestripeReport { name, from_sf, to_sf, units_copied, bytes: len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_pfs::{FsConfig, OpenMode};

    fn filled(fs: &Pfs, name: &str, bytes: usize) -> FileHandle {
        let f = fs.gopen(name, OpenMode::Async);
        let data: Vec<u8> = (0..bytes).map(|i| (i * 31 % 256) as u8).collect();
        f.write_at(0, &data).unwrap();
        f
    }

    #[test]
    fn restripe_preserves_bytes_and_swaps_the_layout() {
        let src_fs = Pfs::mount(FsConfig::paragon_pfs(4));
        let dst_fs = Pfs::mount(FsConfig::paragon_pfs(16));
        let bytes = 3 * 64 * 1024 + 777; // not unit-aligned on purpose
        let live = LiveFile::new(filled(&src_fs, "mission.dat", bytes));
        let before = live.handle().read_at(0, bytes).unwrap();

        let report = restripe_live(&live, &dst_fs).unwrap();
        assert_eq!(report.from_sf, 4);
        assert_eq!(report.to_sf, 16);
        assert_eq!(report.bytes, bytes as u64);
        assert_eq!(report.units_copied, 4);

        let after = live.handle().read_at(0, bytes).unwrap();
        assert_eq!(before, after, "migration is byte-preserving");
        assert_eq!(live.handle().fs().config().stripe_factor, 16, "readers now see the new layout");
    }

    #[test]
    fn readers_race_the_swap_safely() {
        let src_fs = Pfs::mount(FsConfig::paragon_pfs(4));
        let dst_fs = Pfs::mount(FsConfig::paragon_pfs(32));
        let bytes = 128 * 1024;
        let live = LiveFile::new(filled(&src_fs, "mission.dat", bytes));
        let expected = live.handle().read_at(0, bytes).unwrap();

        std::thread::scope(|s| {
            let reader = s.spawn(|| {
                for _ in 0..200 {
                    let got = live.handle().read_at(0, bytes).unwrap();
                    assert_eq!(got, expected);
                }
            });
            restripe_live(&live, &dst_fs).unwrap();
            reader.join().unwrap();
        });
    }

    #[test]
    fn empty_files_migrate_trivially() {
        let src_fs = Pfs::mount(FsConfig::paragon_pfs(4));
        let dst_fs = Pfs::mount(FsConfig::paragon_pfs(8));
        let live = LiveFile::new(src_fs.gopen("empty.dat", OpenMode::Async));
        let report = restripe_live(&live, &dst_fs).unwrap();
        assert_eq!(report.units_copied, 0);
        assert!(live.is_empty());
    }
}
