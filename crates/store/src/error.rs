//! Typed error taxonomy of the storage tier.

use stap_pfs::PfsError;

/// Why a storage-tier operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An out-of-core staging allocation would exceed the configured
    /// peak-footprint bound — the hard accounting check of the
    /// bounded-memory guarantee.
    FootprintExceeded {
        /// Bytes the allocation asked for.
        requested: u64,
        /// Store-tier bytes already resident.
        in_use: u64,
        /// The configured bound.
        bound: u64,
    },
    /// A cube-access / cache specification string did not parse.
    BadSpec {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// Reading the migration source failed mid-restripe.
    MigrationRead(PfsError),
    /// Writing the migration target failed mid-restripe.
    MigrationWrite(PfsError),
    /// The post-copy verification found the target diverging from the
    /// source (a writer raced the migration).
    MigrationDiverged {
        /// File being migrated.
        name: String,
        /// Source length at verification time.
        src_len: u64,
        /// Target length at verification time.
        dst_len: u64,
    },
    /// A plain file-system failure outside migration.
    Pfs(PfsError),
}

impl StoreError {
    /// Whether a retry could plausibly succeed (mirrors
    /// [`PfsError::is_transient`]; spec and footprint errors are
    /// deterministic, so never transient).
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::MigrationRead(e) | StoreError::MigrationWrite(e) | StoreError::Pfs(e) => {
                e.is_transient()
            }
            _ => false,
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::FootprintExceeded { requested, in_use, bound } => write!(
                f,
                "out-of-core footprint exceeded: {requested} B requested with {in_use} B \
                 resident against a {bound} B bound"
            ),
            StoreError::BadSpec { spec, reason } => write!(f, "bad store spec {spec:?}: {reason}"),
            StoreError::MigrationRead(e) => write!(f, "restripe read failed: {e}"),
            StoreError::MigrationWrite(e) => write!(f, "restripe write failed: {e}"),
            StoreError::MigrationDiverged { name, src_len, dst_len } => {
                write!(f, "restripe of {name:?} diverged: source {src_len} B vs target {dst_len} B")
            }
            StoreError::Pfs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<PfsError> for StoreError {
    fn from(e: PfsError) -> Self {
        StoreError::Pfs(e)
    }
}
