//! Server-side access-pattern detector and read-ahead policy.
//!
//! The staging tier writes CPI cubes round-robin into a small set of
//! files, and the pipeline's front task reads them back in CPI order —
//! a sequential stream over CPIs that maps to a round-robin stream over
//! files. The prefetcher watches the per-extent CPI stream, and once it
//! has seen a run of consecutive CPIs it predicts the next `depth` CPIs
//! and asks the cache tier to stage them ahead of the readers.

use parking_lot::Mutex;
use std::collections::HashMap;

/// How many consecutive CPIs must arrive before the detector trusts the
/// stream enough to issue read-ahead.
pub const MIN_RUN: u64 = 2;

/// Queue depth at which a stripe server counts as hot; read-ahead that
/// would land on a hot server is suppressed so the prefetcher never
/// competes with demand reads.
pub const HOT_QUEUE_DEPTH: usize = 4;

/// One tracked access stream: the same `(offset, len)` extent read from
/// successive CPIs.
#[derive(Debug, Clone, Copy)]
struct Stream {
    last_cpi: u64,
    run: u64,
}

/// A read-ahead decision for one future CPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadAhead {
    /// CPI index to stage.
    pub cpi: u64,
    /// Byte offset of the extent within its staging file.
    pub offset: u64,
    /// Extent length.
    pub len: usize,
}

/// Sequential / round-robin pattern detector keyed by the per-extent CPI
/// access stream.
#[derive(Debug)]
pub struct Prefetcher {
    streams: Mutex<HashMap<(u64, usize), Stream>>,
    depth: u32,
}

impl Prefetcher {
    /// A detector issuing up to `depth` cubes of read-ahead per detected
    /// stream advance. Depth 0 disables read-ahead entirely.
    pub fn new(depth: u32) -> Self {
        Self { streams: Mutex::new(HashMap::new()), depth }
    }

    /// Configured read-ahead depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Records a demand read of `(cpi, offset, len)` and returns the
    /// read-aheads to issue. `hot` reports whether the stripe server that
    /// would serve a given CPI is currently hot (deep queue) — hot targets
    /// are skipped, not deferred.
    pub fn observe(
        &self,
        cpi: u64,
        offset: u64,
        len: usize,
        mut hot: impl FnMut(u64) -> bool,
    ) -> Vec<ReadAhead> {
        if self.depth == 0 {
            return Vec::new();
        }
        let run = {
            let mut streams = self.streams.lock();
            let s = streams
                .entry((offset, len))
                .and_modify(|s| {
                    if cpi == s.last_cpi + 1 {
                        s.run += 1;
                    } else if cpi != s.last_cpi {
                        s.run = 1;
                    }
                    s.last_cpi = cpi;
                })
                .or_insert(Stream { last_cpi: cpi, run: 1 });
            s.run
        };
        if run < MIN_RUN {
            return Vec::new();
        }
        (1..=u64::from(self.depth))
            .map(|d| cpi + d)
            .filter(|&next| !hot(next))
            .map(|next| ReadAhead { cpi: next, offset, len })
            .collect()
    }

    /// Forgets all tracked streams (e.g. after a restripe swap).
    pub fn reset(&self) {
        self.streams.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cold(_: u64) -> bool {
        false
    }

    #[test]
    fn first_touch_is_not_trusted() {
        let p = Prefetcher::new(2);
        assert!(p.observe(0, 0, 64, cold).is_empty());
    }

    #[test]
    fn a_run_triggers_depth_readaheads() {
        let p = Prefetcher::new(3);
        assert!(p.observe(4, 0, 64, cold).is_empty());
        let ra = p.observe(5, 0, 64, cold);
        assert_eq!(
            ra,
            vec![
                ReadAhead { cpi: 6, offset: 0, len: 64 },
                ReadAhead { cpi: 7, offset: 0, len: 64 },
                ReadAhead { cpi: 8, offset: 0, len: 64 },
            ]
        );
    }

    #[test]
    fn a_seek_breaks_the_run() {
        let p = Prefetcher::new(2);
        p.observe(0, 0, 64, cold);
        assert!(!p.observe(1, 0, 64, cold).is_empty(), "run established");
        assert!(p.observe(9, 0, 64, cold).is_empty(), "seek resets trust");
        // One more sequential touch re-establishes the run.
        let ra = p.observe(10, 0, 64, cold);
        assert_eq!(ra.len(), 2);
        assert_eq!(ra[0].cpi, 11);
    }

    #[test]
    fn distinct_extents_are_distinct_streams() {
        let p = Prefetcher::new(1);
        p.observe(0, 0, 64, cold);
        p.observe(0, 64, 64, cold);
        assert!(p.observe(1, 0, 64, cold).len() == 1);
        assert!(p.observe(1, 64, 64, cold).len() == 1);
    }

    #[test]
    fn hot_servers_are_skipped() {
        let p = Prefetcher::new(4);
        p.observe(0, 0, 64, cold);
        let ra = p.observe(1, 0, 64, |cpi| cpi % 2 == 0);
        assert_eq!(
            ra.iter().map(|r| r.cpi).collect::<Vec<_>>(),
            vec![3, 5],
            "even CPIs land on hot servers and are suppressed"
        );
    }

    #[test]
    fn depth_zero_disables() {
        let p = Prefetcher::new(0);
        p.observe(0, 0, 64, cold);
        assert!(p.observe(1, 0, 64, cold).is_empty());
    }

    #[test]
    fn repeated_same_cpi_does_not_grow_the_run() {
        let p = Prefetcher::new(1);
        p.observe(0, 0, 64, cold);
        p.observe(0, 0, 64, cold);
        assert!(p.observe(0, 0, 64, cold).is_empty(), "rereads of one CPI are not a stream");
    }
}
