//! [`StoreSource`] — the smart storage tier behind the pipeline's
//! CPI-source seam.
//!
//! Wraps the round-robin staging files with, in order of consultation:
//!
//! 1. a byte-budgeted LRU [`ReadCache`] (hits skip the stripe servers and
//!    cost [`stap_model::cachetier::hit_time`], mirrored here as paced
//!    sleep so wall-clock runs agree with the DES);
//! 2. a server-side [`Prefetcher`] that watches the demand CPI stream and
//!    stages the next cubes into the cache from a background worker —
//!    read-ahead works even when the *client* file system has no `iread`;
//! 3. optional out-of-core access ([`CubeAccess::OutOfCore`]): demand
//!    misses stream through bounded [`ChunkedCube`] chunks charged to a
//!    [`FootprintMeter`], so peak memory is provable, not hoped for;
//! 4. [`LiveFile`] handles, so online restriping can swap the backing
//!    layout underneath running readers.

use crate::cache::{CacheKey, CacheStats, ReadCache};
use crate::chunked::{ChunkedCube, CubeAccess, FootprintMeter};
use crate::prefetch::Prefetcher;
use crate::restripe::{restripe_live, LiveFile, RestripeReport};
use crate::StoreError;
use stap_model::cachetier::hit_time;
use stap_pfs::{FileHandle, Pfs, PfsError};
use stap_pipeline::{CpiSource, PendingFetch, Phase, SourceError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

fn pfs_error(e: PfsError) -> SourceError {
    SourceError {
        transient: e.is_transient(),
        infrastructure_loss: e.is_infrastructure_loss(),
        detail: e.to_string(),
    }
}

fn store_error(e: StoreError) -> SourceError {
    match e {
        StoreError::MigrationRead(p) | StoreError::MigrationWrite(p) | StoreError::Pfs(p) => {
            pfs_error(p)
        }
        other => SourceError::permanent(other.to_string()),
    }
}

/// Tuning of one [`StoreSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Read-cache byte budget (0 disables caching).
    pub cache_bytes: usize,
    /// Read-ahead depth in cubes (0 disables the prefetcher).
    pub readahead_depth: u32,
    /// Whether demand misses materialize cubes resident or out-of-core.
    pub access: CubeAccess,
    /// Peak scratch bound for out-of-core chunking (ignored when
    /// `access` is [`CubeAccess::Resident`]).
    pub footprint_bound: u64,
    /// Bytes of one range-gate row, the out-of-core chunking granule.
    pub row_bytes: usize,
}

impl StoreConfig {
    /// A pass-through store: no cache, no read-ahead, resident access.
    pub fn passthrough() -> Self {
        Self {
            cache_bytes: 0,
            readahead_depth: 0,
            access: CubeAccess::Resident,
            footprint_bound: u64::MAX,
            row_bytes: 1,
        }
    }
}

enum Job {
    /// Stage an extent into the cache ahead of demand (advisory: errors
    /// are dropped, the demand path will refetch).
    Fill {
        key: CacheKey,
        live: Arc<LiveFile>,
    },
    /// A client-posted asynchronous fetch; the reply channel is the
    /// [`PendingFetch`] rendezvous.
    Client {
        key: CacheKey,
        cpi: u64,
        live: Arc<LiveFile>,
        reply: mpsc::Sender<Result<Vec<u8>, SourceError>>,
    },
    Shutdown,
}

/// The smart storage tier as a [`CpiSource`]: cache + prefetch +
/// out-of-core streaming + live-restripable files, in front of the
/// striped PFS.
pub struct StoreSource {
    files: Vec<Arc<LiveFile>>,
    cache: Arc<ReadCache>,
    prefetcher: Prefetcher,
    chunker: Option<ChunkedCube>,
    /// Wall-clock pacing scale, mirrored from the mount's `pace_reads` so
    /// cache hits are paced by the same dial as real reads.
    pace: f64,
    jobs: mpsc::Sender<Job>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for StoreSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSource")
            .field("files", &self.files.len())
            .field("cache", &self.cache)
            .field("readahead_depth", &self.prefetcher.depth())
            .field("out_of_core", &self.chunker.is_some())
            .finish()
    }
}

impl StoreSource {
    /// Builds the tier over the open round-robin CPI files
    /// (slot = `cpi % files.len()`).
    pub fn new(files: Vec<FileHandle>, cfg: StoreConfig) -> Self {
        assert!(!files.is_empty(), "store source needs at least one CPI file");
        let pace = files[0].fs().config().pace_reads;
        let files: Vec<Arc<LiveFile>> = files.into_iter().map(LiveFile::new).collect();
        let cache = Arc::new(ReadCache::new(cfg.cache_bytes));
        let chunker = match cfg.access {
            CubeAccess::Resident => None,
            CubeAccess::OutOfCore { chunk_rows } => Some(ChunkedCube::new(
                chunk_rows,
                cfg.row_bytes,
                FootprintMeter::new(cfg.footprint_bound),
            )),
        };
        let (tx, rx) = mpsc::channel();
        let worker = {
            let cache = Arc::clone(&cache);
            let chunker = chunker.clone();
            std::thread::Builder::new()
                .name("stap-store-worker".to_string())
                .spawn(move || worker_loop(rx, cache, chunker))
                .expect("spawning the store worker thread")
        };
        Self {
            files,
            cache,
            prefetcher: Prefetcher::new(cfg.readahead_depth),
            chunker,
            pace,
            jobs: tx,
            worker: Some(worker),
        }
    }

    fn slot(&self, cpi: u64) -> &Arc<LiveFile> {
        &self.files[(cpi % self.files.len() as u64) as usize]
    }

    fn key(&self, cpi: u64, offset: u64, len: usize) -> CacheKey {
        CacheKey { slot: (cpi % self.files.len() as u64) as usize, offset, len }
    }

    /// Shared statistics of the cache tier.
    pub fn stats(&self) -> Arc<CacheStats> {
        self.cache.stats()
    }

    /// The out-of-core scratch meter, when out-of-core access is on.
    pub fn footprint(&self) -> Option<&Arc<FootprintMeter>> {
        self.chunker.as_ref().map(|c| &c.meter)
    }

    /// The live (restripable) backing files.
    pub fn live_files(&self) -> &[Arc<LiveFile>] {
        &self.files
    }

    /// Migrates every backing file onto `dst_pfs` (copy-then-swap per
    /// stripe unit) without stopping readers, then resets the pattern
    /// detector — the new layout starts with a clean stream history.
    pub fn restripe_to(&self, dst_pfs: &Pfs) -> Result<Vec<RestripeReport>, StoreError> {
        let reports = self
            .files
            .iter()
            .map(|live| restripe_live(live, dst_pfs))
            .collect::<Result<Vec<_>, _>>()?;
        self.prefetcher.reset();
        Ok(reports)
    }

    /// Sleeps the modeled cache-copy time scaled by the mount's pacing
    /// dial, mirroring how `FileHandle` paces real striped reads.
    fn pace_hit(&self, len: usize) {
        if self.pace > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(hit_time(len) * self.pace));
        }
    }

    /// One demand read against the backing file, honoring the configured
    /// cube access: resident misses go through `read_at_cpi` (so injected
    /// fault plans keep their per-attempt determinism); out-of-core misses
    /// stream through footprint-metered chunks.
    fn read_direct(&self, cpi: u64, offset: u64, len: usize) -> Result<Vec<u8>, SourceError> {
        let live = self.slot(cpi);
        match &self.chunker {
            None => live.handle().read_at_cpi(cpi, offset, len).map_err(pfs_error),
            Some(chunker) => chunker.read(&live.handle(), offset, len).map_err(store_error),
        }
    }

    fn issue_readahead(&self, cpi: u64, offset: u64, len: usize) {
        if self.cache.capacity() == 0 {
            return;
        }
        // The real tier has no queue-depth oracle for future CPIs — the
        // hot-server guard bites in the simulated tier, which does.
        for ra in self.prefetcher.observe(cpi, offset, len, |_| false) {
            let key = self.key(ra.cpi, ra.offset, ra.len);
            if self.cache.peek(&key) {
                continue;
            }
            let live = Arc::clone(self.slot(ra.cpi));
            let _ = self.jobs.send(Job::Fill { key, live });
        }
    }
}

impl Drop for StoreSource {
    fn drop(&mut self) {
        let _ = self.jobs.send(Job::Shutdown);
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

fn fill_cache(cache: &ReadCache, chunker: Option<&ChunkedCube>, key: CacheKey, live: &LiveFile) {
    if cache.peek(&key) {
        return;
    }
    // Plain `read_at`: read-ahead must not consume the deterministic
    // per-(cpi, offset) attempt counters of an installed fault plan.
    let read = match chunker {
        None => live.handle().read_at(key.offset, key.len).map_err(StoreError::Pfs),
        Some(c) => c.read(&live.handle(), key.offset, key.len),
    };
    if let Ok(bytes) = read {
        cache.insert(key, Arc::new(bytes), true);
    }
}

fn worker_loop(rx: mpsc::Receiver<Job>, cache: Arc<ReadCache>, chunker: Option<ChunkedCube>) {
    while let Ok(job) = rx.recv() {
        match job {
            Job::Fill { key, live } => fill_cache(&cache, chunker.as_ref(), key, &live),
            Job::Client { key, cpi, live, reply } => {
                let result = match cache.lookup(&key) {
                    Some(bytes) => Ok(bytes.as_ref().clone()),
                    None => {
                        let read = match &chunker {
                            None => live
                                .handle()
                                .read_at_cpi(cpi, key.offset, key.len)
                                .map_err(pfs_error),
                            Some(c) => {
                                c.read(&live.handle(), key.offset, key.len).map_err(store_error)
                            }
                        };
                        read.inspect(|bytes| {
                            cache.insert(key, Arc::new(bytes.clone()), false);
                        })
                    }
                };
                let _ = reply.send(result);
            }
            Job::Shutdown => break,
        }
    }
}

impl CpiSource for StoreSource {
    fn fetch(&self, cpi: u64, offset: u64, len: usize) -> Result<Vec<u8>, SourceError> {
        let key = self.key(cpi, offset, len);
        self.issue_readahead(cpi, offset, len);
        if let Some(bytes) = self.cache.lookup(&key) {
            self.pace_hit(len);
            return Ok(bytes.as_ref().clone());
        }
        let bytes = self.read_direct(cpi, offset, len)?;
        self.cache.insert(key, Arc::new(bytes.clone()), false);
        Ok(bytes)
    }

    fn prefetch(
        &self,
        cpi: u64,
        offset: u64,
        len: usize,
    ) -> Result<Option<PendingFetch>, SourceError> {
        let key = self.key(cpi, offset, len);
        self.issue_readahead(cpi, offset, len);
        let live = Arc::clone(self.slot(cpi));
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.jobs.send(Job::Client { key, cpi, live, reply: reply_tx }).is_err() {
            return Ok(None); // worker gone — fall back to synchronous fetch
        }
        let pace = self.pace;
        Ok(Some(Box::new(move || {
            let result = reply_rx
                .recv()
                .map_err(|_| SourceError::permanent("store prefetch worker died"))??;
            // Mirror the demand path's hit pacing: the cube still crosses
            // the cache copy on its way to the node.
            if pace > 0.0 {
                std::thread::sleep(std::time::Duration::from_secs_f64(
                    hit_time(result.len()) * pace,
                ));
            }
            Ok(result)
        })))
    }

    fn cached(&self, cpi: u64, offset: u64, len: usize) -> bool {
        self.cache.peek(&self.key(cpi, offset, len))
    }

    fn wait_phase(&self) -> Phase {
        Phase::Read
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_pfs::{FsConfig, OpenMode};

    fn staged(fanout: usize, cube_bytes: usize) -> (Pfs, Vec<FileHandle>, Vec<Vec<u8>>) {
        let fs = Pfs::mount(FsConfig::paragon_pfs(4));
        let mut files = Vec::new();
        let mut cubes = Vec::new();
        for slot in 0..fanout {
            let f = fs.gopen(&format!("cpi_{slot}.dat"), OpenMode::Async);
            let data: Vec<u8> =
                (0..cube_bytes).map(|i| ((i * 37 + slot * 101) % 256) as u8).collect();
            f.write_at(0, &data).unwrap();
            files.push(f);
            cubes.push(data);
        }
        (fs, files, cubes)
    }

    fn cfg_cached(cache_bytes: usize, depth: u32) -> StoreConfig {
        StoreConfig {
            cache_bytes,
            readahead_depth: depth,
            access: CubeAccess::Resident,
            footprint_bound: u64::MAX,
            row_bytes: 1,
        }
    }

    #[test]
    fn passthrough_reads_match_the_files() {
        let (_fs, files, cubes) = staged(2, 4096);
        let src = StoreSource::new(files, StoreConfig::passthrough());
        for cpi in 0..6u64 {
            let want = &cubes[(cpi % 2) as usize];
            assert_eq!(src.fetch(cpi, 0, 4096).unwrap(), *want);
        }
        let (h, m, ..) = src.stats().snapshot();
        assert_eq!(h, 0, "no cache budget, no hits");
        assert_eq!(m, 6);
    }

    #[test]
    fn warm_cache_serves_repeat_reads() {
        let (_fs, files, cubes) = staged(2, 4096);
        let src = StoreSource::new(files, cfg_cached(1 << 20, 0));
        for round in 0..3 {
            for cpi in 0..2u64 {
                let got = src.fetch(cpi, 0, 4096).unwrap();
                assert_eq!(got, cubes[cpi as usize], "round {round}");
            }
        }
        let (h, m, ..) = src.stats().snapshot();
        assert_eq!((h, m), (4, 2), "first round misses, later rounds hit");
        assert!(src.cached(0, 0, 4096));
        assert!(!src.cached(0, 1, 4096));
    }

    #[test]
    fn readahead_fills_the_cache_for_the_next_cpi() {
        let (_fs, files, _cubes) = staged(4, 1024);
        let src = StoreSource::new(files, cfg_cached(1 << 20, 2));
        src.fetch(0, 0, 1024).unwrap();
        src.fetch(1, 0, 1024).unwrap();
        // A run of two consecutive CPIs arms the detector; CPIs 2 and 3
        // should be staged by the worker.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !(src.cached(2, 0, 1024) && src.cached(3, 0, 1024)) {
            assert!(std::time::Instant::now() < deadline, "readahead never landed");
            std::thread::yield_now();
        }
        let before = src.stats().snapshot();
        assert!(before.4 >= 2, "readahead inserts counted");
        let (h0, ..) = before;
        src.fetch(2, 0, 1024).unwrap();
        let (h1, ..) = src.stats().snapshot();
        assert_eq!(h1, h0 + 1, "the staged cube is a hit");
    }

    #[test]
    fn client_prefetch_returns_the_right_bytes() {
        let (_fs, files, cubes) = staged(2, 2048);
        let src = StoreSource::new(files, cfg_cached(1 << 20, 0));
        let pending = src.prefetch(1, 0, 2048).unwrap().expect("store always has an async path");
        assert_eq!(pending().unwrap(), cubes[1]);
    }

    #[test]
    fn out_of_core_reads_are_bit_identical_and_bounded() {
        let (_fs, files, cubes) = staged(2, 8192);
        let cfg = StoreConfig {
            cache_bytes: 0,
            readahead_depth: 0,
            access: CubeAccess::OutOfCore { chunk_rows: 4 },
            footprint_bound: 4 * 64,
            row_bytes: 64,
        };
        let src = StoreSource::new(files, cfg);
        for cpi in 0..2u64 {
            assert_eq!(src.fetch(cpi, 0, 8192).unwrap(), cubes[cpi as usize]);
        }
        let meter = src.footprint().unwrap();
        assert!(meter.peak() <= 4 * 64);
        assert_eq!(meter.in_use(), 0);
    }

    #[test]
    fn too_tight_footprint_bound_fails_with_footprint_error() {
        let (_fs, files, _cubes) = staged(1, 1024);
        let cfg = StoreConfig {
            cache_bytes: 0,
            readahead_depth: 0,
            access: CubeAccess::OutOfCore { chunk_rows: 8 },
            footprint_bound: 100,
            row_bytes: 64,
        };
        let src = StoreSource::new(files, cfg);
        let e = src.fetch(0, 0, 1024).unwrap_err();
        assert!(e.to_string().contains("footprint"), "got {e}");
        assert!(!e.is_transient());
    }

    #[test]
    fn restripe_mid_stream_is_invisible_to_readers() {
        let (_fs, files, cubes) = staged(2, 4096);
        let src = StoreSource::new(files, cfg_cached(0, 0));
        assert_eq!(src.fetch(0, 0, 4096).unwrap(), cubes[0]);
        let dst = Pfs::mount(FsConfig::paragon_pfs(32));
        let reports = src.restripe_to(&dst).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(|r| r.to_sf == 32));
        for cpi in 0..4u64 {
            assert_eq!(src.fetch(cpi, 0, 4096).unwrap(), cubes[(cpi % 2) as usize]);
        }
    }
}
