//! Size-bounded LRU read cache with atomic statistics — the I/O servers'
//! memory tier. Hits are served at copy bandwidth and never touch the
//! stripe-server queues ([`stap_model::cachetier`] prices them).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cache key: one cached byte extent of one staging file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Staging-file slot (`cpi % fanout` — CPI cubes are staged
    /// round-robin, so the slot, not the CPI, names the bytes).
    pub slot: usize,
    /// Byte offset within the file.
    pub offset: u64,
    /// Extent length.
    pub len: usize,
}

/// Lock-free monotonic counters of cache behavior. Conservation laws the
/// property suite pins down: `hits + misses == lookups`, and
/// `evictions <= inserts`.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: AtomicU64,
    /// Lookups that fell through to the stripe servers.
    pub misses: AtomicU64,
    /// Extents inserted (demand fills + read-ahead fills).
    pub inserts: AtomicU64,
    /// Extents evicted to stay under the byte budget.
    pub evictions: AtomicU64,
    /// Inserts that came from the prefetcher rather than a demand miss.
    pub readaheads: AtomicU64,
    /// Bytes served from the cache.
    pub hit_bytes: AtomicU64,
}

impl CacheStats {
    /// Point-in-time snapshot `(hits, misses, inserts, evictions,
    /// readaheads)`.
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.readaheads.load(Ordering::Relaxed),
        )
    }

    /// Steady-state hit rate in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

struct Entry {
    data: Arc<Vec<u8>>,
    /// LRU stamp: larger = more recently used.
    stamp: u64,
}

struct LruInner {
    map: HashMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
}

/// A byte-budgeted LRU cache of file extents, shared across reader threads.
pub struct ReadCache {
    inner: Mutex<LruInner>,
    capacity: usize,
    stats: Arc<CacheStats>,
}

impl std::fmt::Debug for ReadCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ReadCache")
            .field("capacity", &self.capacity)
            .field("bytes", &inner.bytes)
            .field("entries", &inner.map.len())
            .finish()
    }
}

impl ReadCache {
    /// A cache holding at most `capacity` bytes of extent data.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(LruInner { map: HashMap::new(), bytes: 0, tick: 0 }),
            capacity,
            stats: Arc::new(CacheStats::default()),
        }
    }

    /// The byte budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Shared handle to the statistics counters.
    pub fn stats(&self) -> Arc<CacheStats> {
        Arc::clone(&self.stats)
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Extents currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks `key` up, counting a hit or a miss and refreshing recency.
    pub fn lookup(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.stamp = tick;
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.hit_bytes.fetch_add(e.data.len() as u64, Ordering::Relaxed);
                Some(Arc::clone(&e.data))
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Whether `key` is resident, without touching statistics or recency
    /// (the tracer's span-attribution probe).
    pub fn peek(&self, key: &CacheKey) -> bool {
        self.inner.lock().map.contains_key(key)
    }

    /// Inserts an extent, evicting least-recently-used entries as needed
    /// to stay under the byte budget. Extents larger than the whole budget
    /// are not cached. `readahead` marks prefetcher fills in the stats.
    pub fn insert(&self, key: CacheKey, data: Arc<Vec<u8>>, readahead: bool) {
        if data.len() > self.capacity {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        let added = data.len();
        if let Some(old) = inner.map.insert(key, Entry { data, stamp: tick }) {
            // Overwrite: same key, possibly different bytes resident.
            inner.bytes -= old.data.len();
        }
        inner.bytes += added;
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if readahead {
            self.stats.readaheads.fetch_add(1, Ordering::Relaxed);
        }
        while inner.bytes > self.capacity {
            let victim = inner
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(v) = victim else { break };
            if let Some(e) = inner.map.remove(&v) {
                inner.bytes -= e.data.len();
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(slot: usize, offset: u64) -> CacheKey {
        CacheKey { slot, offset, len: 4 }
    }

    fn put(c: &ReadCache, k: CacheKey, bytes: usize) {
        c.insert(k, Arc::new(vec![0u8; bytes]), false);
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = ReadCache::new(64);
        assert!(c.lookup(&key(0, 0)).is_none());
        c.insert(key(0, 0), Arc::new(vec![1, 2, 3]), false);
        assert_eq!(c.lookup(&key(0, 0)).unwrap().as_slice(), &[1, 2, 3]);
        let (h, m, i, e, r) = c.stats().snapshot();
        assert_eq!((h, m, i, e, r), (1, 1, 1, 0, 0));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c = ReadCache::new(12);
        put(&c, key(0, 0), 4);
        put(&c, key(1, 0), 4);
        put(&c, key(2, 0), 4);
        // Touch slot 0 so slot 1 is coldest, then overflow.
        assert!(c.lookup(&key(0, 0)).is_some());
        put(&c, key(3, 0), 4);
        assert!(c.peek(&key(0, 0)), "recently used survives");
        assert!(!c.peek(&key(1, 0)), "coldest evicted");
        assert!(c.bytes() <= 12);
        assert_eq!(c.stats().evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_extents_are_not_cached() {
        let c = ReadCache::new(8);
        put(&c, key(0, 0), 9);
        assert!(c.is_empty());
        assert_eq!(c.stats().inserts.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn overwrite_same_key_keeps_byte_accounting() {
        let c = ReadCache::new(64);
        put(&c, key(0, 0), 8);
        put(&c, key(0, 0), 16);
        assert_eq!(c.bytes(), 16);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn peek_does_not_count() {
        let c = ReadCache::new(64);
        put(&c, key(0, 0), 4);
        assert!(c.peek(&key(0, 0)));
        assert!(!c.peek(&key(1, 0)));
        let (h, m, ..) = c.stats().snapshot();
        assert_eq!((h, m), (0, 0));
    }

    #[test]
    fn hit_rate_reflects_the_mix() {
        let c = ReadCache::new(64);
        put(&c, key(0, 0), 4);
        for _ in 0..3 {
            c.lookup(&key(0, 0));
        }
        c.lookup(&key(9, 0));
        assert!((c.stats().hit_rate() - 0.75).abs() < 1e-12);
    }
}
