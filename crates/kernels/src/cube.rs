//! CPI data cubes: the 3-D complex arrays flowing through the pipeline.
//!
//! A raw CPI cube is `pulses × channels × ranges` of complex32 samples; the
//! Doppler filter turns it into a [`DopplerCube`] indexed by
//! `stagger × bin × channel × range`. Byte-level serialization matches the
//! on-disk layout the parallel file system stripes (little-endian interleaved
//! re/im f32 pairs, pulse-major), so reading a cube is exactly the 16 MiB
//! the paper's I/O task pulls per CPI.

use stap_math::C32;

/// Dimensions of a raw CPI cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CubeDims {
    /// Number of pulses (PRIs) per CPI.
    pub pulses: usize,
    /// Number of receive channels (array elements or subarrays).
    pub channels: usize,
    /// Number of range gates.
    pub ranges: usize,
}

impl CubeDims {
    /// Convenience constructor.
    pub const fn new(pulses: usize, channels: usize, ranges: usize) -> Self {
        Self { pulses, channels, ranges }
    }

    /// The paper's calibrated default: 128 × 32 × 512 complex32 = 16 MiB.
    pub const fn paper_default() -> Self {
        Self::new(128, 32, 512)
    }

    /// Total number of complex samples.
    pub const fn elems(&self) -> usize {
        self.pulses * self.channels * self.ranges
    }

    /// Serialized size in bytes (8 bytes per complex32 sample).
    pub const fn bytes(&self) -> usize {
        self.elems() * 8
    }
}

/// A raw CPI data cube, pulse-major: `data[((p·C)+c)·R + r]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DataCube {
    dims: CubeDims,
    data: Vec<C32>,
}

impl DataCube {
    /// Zero-filled cube.
    pub fn zeros(dims: CubeDims) -> Self {
        Self { dims, data: vec![C32::zero(); dims.elems()] }
    }

    /// Wraps existing sample data.
    ///
    /// # Panics
    /// Panics when `data.len() != dims.elems()`.
    pub fn from_data(dims: CubeDims, data: Vec<C32>) -> Self {
        assert_eq!(data.len(), dims.elems(), "cube data length mismatch");
        Self { dims, data }
    }

    /// Cube dimensions.
    #[inline]
    pub fn dims(&self) -> CubeDims {
        self.dims
    }

    /// Sample at (pulse, channel, range).
    #[inline]
    pub fn get(&self, p: usize, c: usize, r: usize) -> C32 {
        self.data[(p * self.dims.channels + c) * self.dims.ranges + r]
    }

    /// Mutable sample at (pulse, channel, range).
    #[inline]
    pub fn get_mut(&mut self, p: usize, c: usize, r: usize) -> &mut C32 {
        &mut self.data[(p * self.dims.channels + c) * self.dims.ranges + r]
    }

    /// Flat sample storage.
    #[inline]
    pub fn as_slice(&self) -> &[C32] {
        &self.data
    }

    /// Mutable flat sample storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C32] {
        &mut self.data
    }

    /// The pulse train at a fixed (channel, range): one value per pulse.
    pub fn pulse_train(&self, c: usize, r: usize, out: &mut Vec<C32>) {
        out.clear();
        out.reserve(self.dims.pulses);
        for p in 0..self.dims.pulses {
            out.push(self.get(p, c, r));
        }
    }

    /// Serializes to the on-disk layout: little-endian interleaved f32
    /// re/im pairs, in storage order.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.dims.bytes());
        for z in &self.data {
            out.extend_from_slice(&z.re.to_le_bytes());
            out.extend_from_slice(&z.im.to_le_bytes());
        }
        out
    }

    /// Deserializes from the on-disk layout.
    ///
    /// # Panics
    /// Panics when `bytes.len() != dims.bytes()`.
    pub fn from_bytes(dims: CubeDims, bytes: &[u8]) -> Self {
        assert_eq!(bytes.len(), dims.bytes(), "cube byte length mismatch");
        let mut data = Vec::with_capacity(dims.elems());
        for chunk in bytes.chunks_exact(8) {
            let re = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let im = f32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            data.push(C32::new(re, im));
        }
        Self::from_data(dims, data)
    }

    /// Serializes to the *on-disk* layout used by the parallel file system:
    /// range-major (`[(r·C + c)·P + p]`), little-endian interleaved f32
    /// pairs. Range-major order makes each node's exclusive range slab a
    /// single contiguous byte extent — "all nodes allocated to the first
    /// task read exclusive portions of each file with proper offsets".
    pub fn to_range_major_bytes(&self) -> Vec<u8> {
        let d = self.dims;
        let mut out = Vec::with_capacity(d.bytes());
        for r in 0..d.ranges {
            for c in 0..d.channels {
                for p in 0..d.pulses {
                    let z = self.get(p, c, r);
                    out.extend_from_slice(&z.re.to_le_bytes());
                    out.extend_from_slice(&z.im.to_le_bytes());
                }
            }
        }
        out
    }

    /// Byte offset of range gate `r` in the range-major disk layout.
    pub fn range_major_offset(dims: CubeDims, r: usize) -> u64 {
        (r * dims.channels * dims.pulses * 8) as u64
    }

    /// Parses a contiguous range-major byte extent covering gates
    /// `[r0, r1)` into a slab cube (dims `pulses × channels × (r1-r0)`).
    ///
    /// # Panics
    /// Panics when the byte length does not match the slab size.
    pub fn slab_from_range_major_bytes(
        dims: CubeDims,
        r0: usize,
        r1: usize,
        bytes: &[u8],
    ) -> DataCube {
        let slab_dims = CubeDims::new(dims.pulses, dims.channels, r1 - r0);
        assert_eq!(bytes.len(), slab_dims.bytes(), "slab byte length mismatch");
        let mut out = DataCube::zeros(slab_dims);
        let mut it = bytes.chunks_exact(8);
        for rr in 0..r1 - r0 {
            for c in 0..dims.channels {
                for p in 0..dims.pulses {
                    let chunk = it.next().expect("length checked above");
                    let re = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                    let im = f32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                    *out.get_mut(p, c, rr) = C32::new(re, im);
                }
            }
        }
        out
    }

    /// Extracts the sub-cube covering range gates `[r0, r1)` (all pulses and
    /// channels) — the unit of work distributed to a Doppler-filter node.
    pub fn range_slab(&self, r0: usize, r1: usize) -> DataCube {
        assert!(r0 <= r1 && r1 <= self.dims.ranges, "invalid range slab {r0}..{r1}");
        let dims = CubeDims::new(self.dims.pulses, self.dims.channels, r1 - r0);
        let mut out = DataCube::zeros(dims);
        for p in 0..self.dims.pulses {
            for c in 0..self.dims.channels {
                for (rr, r) in (r0..r1).enumerate() {
                    *out.get_mut(p, c, rr) = self.get(p, c, r);
                }
            }
        }
        out
    }
}

/// Evenly partitions `total` items into `parts` contiguous intervals
/// (the paper's "evenly partitioning its work load among P_i nodes").
/// Earlier parts get the remainder, so sizes differ by at most one.
pub fn partition_even(total: usize, parts: usize) -> Vec<(usize, usize)> {
    assert!(parts > 0, "cannot partition into zero parts");
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// A Doppler-filtered cube: `staggers × bins × channels × ranges`.
///
/// The easy path has one stagger; the hard (PRI-staggered) path has two.
#[derive(Debug, Clone, PartialEq)]
pub struct DopplerCube {
    staggers: usize,
    bins: usize,
    channels: usize,
    ranges: usize,
    data: Vec<C32>,
}

impl DopplerCube {
    /// Zero-filled Doppler cube.
    pub fn zeros(staggers: usize, bins: usize, channels: usize, ranges: usize) -> Self {
        Self {
            staggers,
            bins,
            channels,
            ranges,
            data: vec![C32::zero(); staggers * bins * channels * ranges],
        }
    }

    /// Number of staggered segments (1 = easy, 2 = hard).
    #[inline]
    pub fn staggers(&self) -> usize {
        self.staggers
    }

    /// Number of Doppler bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.bins
    }

    /// Number of channels.
    #[inline]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Number of range gates.
    #[inline]
    pub fn ranges(&self) -> usize {
        self.ranges
    }

    #[inline]
    fn idx(&self, s: usize, b: usize, c: usize, r: usize) -> usize {
        ((s * self.bins + b) * self.channels + c) * self.ranges + r
    }

    /// Sample at (stagger, bin, channel, range).
    #[inline]
    pub fn get(&self, s: usize, b: usize, c: usize, r: usize) -> C32 {
        self.data[self.idx(s, b, c, r)]
    }

    /// Mutable sample at (stagger, bin, channel, range).
    #[inline]
    pub fn get_mut(&mut self, s: usize, b: usize, c: usize, r: usize) -> &mut C32 {
        let i = self.idx(s, b, c, r);
        &mut self.data[i]
    }

    /// Flat storage.
    #[inline]
    pub fn as_slice(&self) -> &[C32] {
        &self.data
    }

    /// Mutable flat storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C32] {
        &mut self.data
    }

    /// The contiguous range-gate row at (stagger, bin, channel) — the unit
    /// the blocked kernels stream through.
    #[inline]
    pub fn row(&self, s: usize, b: usize, c: usize) -> &[C32] {
        let start = self.idx(s, b, c, 0);
        &self.data[start..start + self.ranges]
    }

    /// Mutable contiguous range-gate row at (stagger, bin, channel).
    #[inline]
    pub fn row_mut(&mut self, s: usize, b: usize, c: usize) -> &mut [C32] {
        let start = self.idx(s, b, c, 0);
        &mut self.data[start..start + self.ranges]
    }

    /// Copies every (stagger, bin, channel) row of `src` — a compact
    /// range-chunk cube — into this cube at range offset `dst_r0`: the
    /// deterministic stitch reassembling work-stealing chunk outputs.
    ///
    /// # Panics
    /// Panics when the cubes' stagger/bin/channel geometry differs or the
    /// chunk overruns this cube's range extent.
    pub fn copy_range_from(&mut self, src: &DopplerCube, dst_r0: usize) {
        assert_eq!(self.staggers, src.staggers, "stagger count differs");
        assert_eq!(self.bins, src.bins, "bin count differs");
        assert_eq!(self.channels, src.channels, "channel count differs");
        assert!(dst_r0 + src.ranges <= self.ranges, "chunk overruns range extent");
        for s in 0..self.staggers {
            for b in 0..self.bins {
                for c in 0..self.channels {
                    self.row_mut(s, b, c)[dst_r0..dst_r0 + src.ranges]
                        .copy_from_slice(src.row(s, b, c));
                }
            }
        }
    }

    /// The space(-time) snapshot for (bin, range): channel samples of every
    /// stagger concatenated — the adaptive degrees of freedom vector.
    pub fn snapshot(&self, b: usize, r: usize, out: &mut Vec<C32>) {
        out.clear();
        out.reserve(self.staggers * self.channels);
        for s in 0..self.staggers {
            for c in 0..self.channels {
                out.push(self.get(s, b, c, r));
            }
        }
    }

    /// Degrees of freedom per snapshot (`staggers × channels`).
    #[inline]
    pub fn dof(&self) -> usize {
        self.staggers * self.channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_16_mib() {
        let d = CubeDims::paper_default();
        assert_eq!(d.bytes(), 16 * 1024 * 1024);
    }

    #[test]
    fn indexing_round_trip() {
        let dims = CubeDims::new(3, 2, 4);
        let mut cube = DataCube::zeros(dims);
        *cube.get_mut(2, 1, 3) = C32::new(1.0, -1.0);
        assert_eq!(cube.get(2, 1, 3), C32::new(1.0, -1.0));
        assert_eq!(cube.get(0, 0, 0), C32::zero());
    }

    #[test]
    fn bytes_round_trip() {
        let dims = CubeDims::new(2, 3, 5);
        let mut cube = DataCube::zeros(dims);
        for (i, z) in cube.as_mut_slice().iter_mut().enumerate() {
            *z = C32::new(i as f32, -(i as f32) * 0.5);
        }
        let bytes = cube.to_bytes();
        assert_eq!(bytes.len(), dims.bytes());
        let back = DataCube::from_bytes(dims, &bytes);
        assert_eq!(back, cube);
    }

    #[test]
    fn pulse_train_reads_across_pulses() {
        let dims = CubeDims::new(4, 2, 3);
        let mut cube = DataCube::zeros(dims);
        for p in 0..4 {
            *cube.get_mut(p, 1, 2) = C32::new(p as f32, 0.0);
        }
        let mut train = Vec::new();
        cube.pulse_train(1, 2, &mut train);
        assert_eq!(train.len(), 4);
        for (p, z) in train.iter().enumerate() {
            assert_eq!(*z, C32::new(p as f32, 0.0));
        }
    }

    #[test]
    fn range_slab_extracts_interval() {
        let dims = CubeDims::new(2, 2, 8);
        let mut cube = DataCube::zeros(dims);
        for r in 0..8 {
            *cube.get_mut(1, 0, r) = C32::new(r as f32, 0.0);
        }
        let slab = cube.range_slab(2, 5);
        assert_eq!(slab.dims(), CubeDims::new(2, 2, 3));
        assert_eq!(slab.get(1, 0, 0), C32::new(2.0, 0.0));
        assert_eq!(slab.get(1, 0, 2), C32::new(4.0, 0.0));
    }

    #[test]
    fn partition_even_covers_and_balances() {
        let parts = partition_even(10, 3);
        assert_eq!(parts, vec![(0, 4), (4, 7), (7, 10)]);
        let parts = partition_even(8, 4);
        assert!(parts.iter().all(|(a, b)| b - a == 2));
        let parts = partition_even(2, 5);
        assert_eq!(parts.iter().map(|(a, b)| b - a).sum::<usize>(), 2);
        assert_eq!(parts.last().unwrap().1, 2);
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn partition_zero_parts_panics() {
        partition_even(4, 0);
    }

    #[test]
    fn doppler_cube_snapshot_concatenates_staggers() {
        let mut dc = DopplerCube::zeros(2, 3, 2, 4);
        *dc.get_mut(0, 1, 0, 2) = C32::new(1.0, 0.0);
        *dc.get_mut(0, 1, 1, 2) = C32::new(2.0, 0.0);
        *dc.get_mut(1, 1, 0, 2) = C32::new(3.0, 0.0);
        *dc.get_mut(1, 1, 1, 2) = C32::new(4.0, 0.0);
        let mut snap = Vec::new();
        dc.snapshot(1, 2, &mut snap);
        assert_eq!(
            snap,
            vec![C32::new(1.0, 0.0), C32::new(2.0, 0.0), C32::new(3.0, 0.0), C32::new(4.0, 0.0)]
        );
        assert_eq!(dc.dof(), 4);
    }

    #[test]
    #[should_panic(expected = "byte length mismatch")]
    fn from_bytes_rejects_wrong_length() {
        DataCube::from_bytes(CubeDims::new(1, 1, 2), &[0u8; 8]);
    }

    #[test]
    fn range_major_slab_round_trip() {
        let dims = CubeDims::new(3, 2, 6);
        let mut cube = DataCube::zeros(dims);
        for (i, z) in cube.as_mut_slice().iter_mut().enumerate() {
            *z = C32::new(i as f32, -(i as f32));
        }
        let disk = cube.to_range_major_bytes();
        assert_eq!(disk.len(), dims.bytes());
        // Whole cube back via one slab.
        let back = DataCube::slab_from_range_major_bytes(dims, 0, 6, &disk);
        for p in 0..3 {
            for c in 0..2 {
                for r in 0..6 {
                    assert_eq!(back.get(p, c, r), cube.get(p, c, r));
                }
            }
        }
        // A middle slab equals the corresponding range_slab.
        let off = DataCube::range_major_offset(dims, 2) as usize;
        let end = DataCube::range_major_offset(dims, 5) as usize;
        let slab = DataCube::slab_from_range_major_bytes(dims, 2, 5, &disk[off..end]);
        assert_eq!(slab, cube.range_slab(2, 5));
    }

    #[test]
    fn range_major_offsets_are_contiguous() {
        let dims = CubeDims::new(4, 3, 10);
        let per_gate = (dims.channels * dims.pulses * 8) as u64;
        for r in 0..10 {
            assert_eq!(DataCube::range_major_offset(dims, r), r as u64 * per_gate);
        }
    }
}
