//! Multi-CPI track formation — the consumer downstream of the pipeline's
//! detection reports.
//!
//! A simple nearest-neighbour alpha-beta tracker over range: detections are
//! associated to existing tracks within a range gate window (and the same
//! beam), track state (range, range-rate in gates/CPI) is smoothed with
//! alpha-beta gains, and tracks are confirmed after `confirm_hits` updates
//! and dropped after `max_misses` consecutive misses.

use crate::cfar::Detection;
use crate::report::DetectionReport;

/// Tracker configuration.
#[derive(Debug, Clone, Copy)]
pub struct TrackerConfig {
    /// Association gate: max |predicted − detected| range gates.
    pub gate: f64,
    /// Position smoothing gain α.
    pub alpha: f64,
    /// Velocity smoothing gain β.
    pub beta: f64,
    /// Updates needed to confirm a tentative track.
    pub confirm_hits: u32,
    /// Consecutive misses before a track is dropped.
    pub max_misses: u32,
}

impl Default for TrackerConfig {
    fn default() -> Self {
        Self { gate: 4.0, alpha: 0.6, beta: 0.3, confirm_hits: 2, max_misses: 2 }
    }
}

/// Track lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackState {
    /// Seen, but not yet confirmed.
    Tentative,
    /// Confirmed by repeated updates.
    Confirmed,
}

/// One maintained track.
#[derive(Debug, Clone)]
pub struct Track {
    /// Stable track identifier.
    pub id: u64,
    /// Beam the track lives in.
    pub beam: usize,
    /// Smoothed range estimate (gates).
    pub range: f64,
    /// Smoothed range rate (gates per CPI).
    pub rate: f64,
    /// Lifecycle state.
    pub state: TrackState,
    /// Total associated detections.
    pub hits: u32,
    /// Consecutive missed CPIs.
    pub misses: u32,
    /// CPI of the last update.
    pub last_cpi: u64,
}

impl Track {
    /// Predicted range at the next CPI.
    pub fn predicted(&self) -> f64 {
        self.range + self.rate
    }
}

/// Nearest-neighbour alpha-beta tracker.
#[derive(Debug)]
pub struct Tracker {
    config: TrackerConfig,
    tracks: Vec<Track>,
    next_id: u64,
}

impl Tracker {
    /// A tracker with the given configuration.
    pub fn new(config: TrackerConfig) -> Self {
        Self { config, tracks: Vec::new(), next_id: 1 }
    }

    /// Live tracks (tentative + confirmed).
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Confirmed tracks only.
    pub fn confirmed(&self) -> impl Iterator<Item = &Track> {
        self.tracks.iter().filter(|t| t.state == TrackState::Confirmed)
    }

    /// Processes one CPI's (clustered) detection report.
    pub fn update(&mut self, report: &DetectionReport) {
        let cfg = self.config;
        let mut used = vec![false; report.detections.len()];

        // Associate each track to its nearest unused detection in gate.
        for track in &mut self.tracks {
            let predicted = track.range + track.rate;
            let mut best: Option<(usize, f64)> = None;
            for (k, d) in report.detections.iter().enumerate() {
                if used[k] || d.beam != track.beam {
                    continue;
                }
                let err = (d.range as f64 - predicted).abs();
                if err <= cfg.gate && best.is_none_or(|(_, e)| err < e) {
                    best = Some((k, err));
                }
            }
            match best {
                Some((k, _)) => {
                    used[k] = true;
                    let residual = report.detections[k].range as f64 - predicted;
                    track.range = predicted + cfg.alpha * residual;
                    track.rate += cfg.beta * residual;
                    track.hits += 1;
                    track.misses = 0;
                    track.last_cpi = report.cpi;
                    if track.hits >= cfg.confirm_hits {
                        track.state = TrackState::Confirmed;
                    }
                }
                None => {
                    // Coast on the prediction.
                    track.range = predicted;
                    track.misses += 1;
                }
            }
        }

        // Unassociated detections start tentative tracks.
        for (k, d) in report.detections.iter().enumerate() {
            if !used[k] {
                self.tracks.push(new_track(self.next_id, d, report.cpi));
                self.next_id += 1;
            }
        }

        // Drop stale tracks.
        self.tracks.retain(|t| t.misses <= cfg.max_misses);
    }
}

fn new_track(id: u64, d: &Detection, cpi: u64) -> Track {
    Track {
        id,
        beam: d.beam,
        range: d.range as f64,
        rate: 0.0,
        state: TrackState::Tentative,
        hits: 1,
        misses: 0,
        last_cpi: cpi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cpi: u64, dets: &[(usize, usize)]) -> DetectionReport {
        let mut r = DetectionReport::new(cpi);
        for &(beam, range) in dets {
            r.detections.push(Detection {
                beam,
                bin: 0,
                range,
                power: 100.0,
                noise: 1.0,
                snr_db: 20.0,
            });
        }
        r
    }

    #[test]
    fn steady_target_confirms_and_locks() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for cpi in 0..5 {
            tr.update(&report(cpi, &[(0, 50)]));
        }
        let tracks: Vec<&Track> = tr.confirmed().collect();
        assert_eq!(tracks.len(), 1);
        assert!((tracks[0].range - 50.0).abs() < 0.5);
        assert!(tracks[0].rate.abs() < 0.2);
        assert_eq!(tracks[0].hits, 5);
    }

    #[test]
    fn moving_target_velocity_is_estimated() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for cpi in 0..8 {
            tr.update(&report(cpi, &[(0, 20 + 3 * cpi as usize)]));
        }
        let t: Vec<&Track> = tr.confirmed().collect();
        assert_eq!(t.len(), 1, "drift within the gate must keep one track");
        assert!((t[0].rate - 3.0).abs() < 0.7, "rate estimate {}", t[0].rate);
        assert!((t[0].range - 41.0).abs() < 2.5, "range estimate {}", t[0].range);
    }

    #[test]
    fn two_targets_two_tracks() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for cpi in 0..4 {
            tr.update(&report(cpi, &[(0, 30), (1, 90)]));
        }
        assert_eq!(tr.confirmed().count(), 2);
        // Beam discriminates even at equal range.
        let beams: Vec<usize> = tr.confirmed().map(|t| t.beam).collect();
        assert!(beams.contains(&0) && beams.contains(&1));
    }

    #[test]
    fn missed_detections_coast_then_drop() {
        let mut tr = Tracker::new(TrackerConfig::default());
        for cpi in 0..3 {
            tr.update(&report(cpi, &[(0, 60)]));
        }
        assert_eq!(tr.tracks().len(), 1);
        // Target disappears: coast for max_misses CPIs, then drop.
        tr.update(&report(3, &[]));
        tr.update(&report(4, &[]));
        assert_eq!(tr.tracks().len(), 1, "still coasting");
        tr.update(&report(5, &[]));
        assert_eq!(tr.tracks().len(), 0, "dropped after max misses");
    }

    #[test]
    fn reacquisition_after_single_miss() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&report(0, &[(0, 40)]));
        tr.update(&report(1, &[(0, 40)]));
        tr.update(&report(2, &[])); // one miss
        tr.update(&report(3, &[(0, 40)]));
        let t: Vec<&Track> = tr.confirmed().collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].misses, 0);
        assert_eq!(t[0].last_cpi, 3);
    }

    #[test]
    fn out_of_gate_detection_starts_new_track() {
        let mut tr = Tracker::new(TrackerConfig::default());
        tr.update(&report(0, &[(0, 10)]));
        tr.update(&report(1, &[(0, 100)])); // far away: new track
        assert_eq!(tr.tracks().len(), 2);
    }

    #[test]
    fn false_alarms_stay_tentative_and_die() {
        let mut tr = Tracker::new(TrackerConfig { confirm_hits: 3, ..Default::default() });
        // One-off false alarms at scattered gates.
        tr.update(&report(0, &[(0, 10)]));
        tr.update(&report(1, &[(0, 70)]));
        tr.update(&report(2, &[(0, 130)]));
        assert_eq!(tr.confirmed().count(), 0);
        // After the miss budget they all drop.
        for cpi in 3..7 {
            tr.update(&report(cpi, &[]));
        }
        assert_eq!(tr.tracks().len(), 0);
    }
}
