//! Pulse compression — FFT-based matched filtering along range.
//!
//! Each (beam, Doppler-bin) range row is correlated with the transmitted
//! waveform replica. The compressor zero-pads row and replica to a common
//! power-of-two length, multiplies spectra (with the replica conjugated) and
//! inverse-transforms, which realizes the full linear correlation.

use crate::beamform::BeamCube;
use crate::path::KernelPath;
use stap_math::fft::next_pow2;
use stap_math::{FftPlan, C32};

/// Rows compressed per batched panel FFT. 8 lanes keep a 1024-point panel
/// at 64 KiB while amortizing the transpose against the O(n log n) FFT.
const ROW_BLOCK: usize = 8;

/// Generates a unit-energy linear-FM (chirp) replica of `len` samples
/// sweeping `bandwidth_frac` of the sampling band.
pub fn lfm_chirp(len: usize, bandwidth_frac: f32) -> Vec<C32> {
    assert!(len > 0, "chirp length must be positive");
    let k = bandwidth_frac / len as f32; // sweep rate in cycles/sample²
    let mut v: Vec<C32> = (0..len)
        .map(|n| {
            let t = n as f32;
            C32::cis(std::f32::consts::PI * k * t * t)
        })
        .collect();
    let energy: f32 = v.iter().map(|z| z.norm_sqr()).sum();
    let scale = 1.0 / energy.sqrt();
    for z in &mut v {
        *z = z.scale(scale);
    }
    v
}

/// Planned matched filter for a fixed range extent and waveform.
#[derive(Debug)]
pub struct PulseCompressor {
    replica_spectrum: Vec<C32>,
    plan: FftPlan<f32>,
    fft_len: usize,
    waveform_len: usize,
}

impl PulseCompressor {
    /// Builds a compressor for rows of `ranges` gates against `waveform`.
    pub fn new(ranges: usize, waveform: &[C32]) -> Self {
        assert!(!waveform.is_empty(), "waveform must be non-empty");
        let fft_len = next_pow2(ranges + waveform.len() - 1);
        let plan = FftPlan::new(fft_len);
        let mut spec = vec![C32::zero(); fft_len];
        spec[..waveform.len()].copy_from_slice(waveform);
        plan.forward(&mut spec);
        // Conjugate once here so the per-row loop is a plain multiply.
        for z in &mut spec {
            *z = z.conj();
        }
        Self { replica_spectrum: spec, plan, fft_len, waveform_len: waveform.len() }
    }

    /// Length of the waveform replica.
    pub fn waveform_len(&self) -> usize {
        self.waveform_len
    }

    /// Compresses one range row in place. `row[r]` becomes the matched-filter
    /// output aligned so a point target at gate `g` peaks at gate `g`.
    pub fn compress_row(&self, row: &mut [C32]) {
        let mut buf = vec![C32::zero(); self.fft_len];
        self.compress_row_with(row, &mut buf);
    }

    /// [`PulseCompressor::compress_row`] with a caller-provided scratch
    /// buffer (resized as needed), so batch callers pay zero allocations
    /// per row.
    pub fn compress_row_with(&self, row: &mut [C32], scratch: &mut Vec<C32>) {
        scratch.clear();
        scratch.resize(self.fft_len, C32::zero());
        scratch[..row.len()].copy_from_slice(row);
        self.plan.forward(scratch);
        for (z, &h) in scratch.iter_mut().zip(self.replica_spectrum.iter()) {
            *z *= h;
        }
        self.plan.inverse(scratch);
        // Correlation with the conjugated spectrum aligns the peak at the
        // target's own gate (zero-lag output sits at index 0..row.len()).
        row.copy_from_slice(&scratch[..row.len()]);
    }

    /// Compresses every (beam, bin) row of a beam cube in place.
    pub fn compress(&self, cube: &mut BeamCube) {
        self.compress_with(cube, KernelPath::Auto);
    }

    /// [`PulseCompressor::compress`] with an explicit kernel path.
    pub fn compress_with(&self, cube: &mut BeamCube, path: KernelPath) {
        let ranges = cube.ranges;
        self.compress_rows(cube.rows_flat_mut(), ranges, path);
    }

    /// Compresses `data` interpreted as consecutive rows of `row_len` gates
    /// — the chunk-level entry the work-stealing executor schedules.
    ///
    /// The blocked path batches [`ROW_BLOCK`] rows per multi-lane panel FFT;
    /// every lane runs the exact scalar butterfly/multiply sequence, so the
    /// output is bit-identical to [`PulseCompressor::compress_row`] per row.
    ///
    /// # Panics
    /// Panics when `data.len()` is not a multiple of `row_len`, or the rows
    /// exceed the planned FFT length.
    pub fn compress_rows(&self, data: &mut [C32], row_len: usize, path: KernelPath) {
        if data.is_empty() {
            return;
        }
        assert!(row_len > 0 && data.len().is_multiple_of(row_len), "data must be whole rows");
        assert!(row_len <= self.fft_len, "row length exceeds planned FFT length");
        match path.resolve() {
            KernelPath::Reference => {
                for row in data.chunks_mut(row_len) {
                    // Reference keeps the original per-row allocation.
                    let mut buf = vec![C32::zero(); self.fft_len];
                    self.compress_row_with(row, &mut buf);
                }
            }
            _ => {
                let mut panel = vec![C32::zero(); self.fft_len * ROW_BLOCK];
                let mut rows = data.chunks_mut(row_len).collect::<Vec<_>>();
                for batch in rows.chunks_mut(ROW_BLOCK) {
                    let lanes = batch.len();
                    let panel = &mut panel[..self.fft_len * lanes];
                    panel.fill(C32::zero());
                    // Transpose rows into the lane-minor panel.
                    for (l, row) in batch.iter().enumerate() {
                        for (k, &v) in row.iter().enumerate() {
                            panel[k * lanes + l] = v;
                        }
                    }
                    self.plan.forward_multi(panel, lanes);
                    for (k, &h) in self.replica_spectrum.iter().enumerate() {
                        for z in &mut panel[k * lanes..(k + 1) * lanes] {
                            *z *= h;
                        }
                    }
                    self.plan.inverse_multi(panel, lanes);
                    for (l, row) in batch.iter_mut().enumerate() {
                        for (k, v) in row.iter_mut().enumerate() {
                            *v = panel[k * lanes + l];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_math::stats::argmax;

    #[test]
    fn chirp_has_unit_energy() {
        let w = lfm_chirp(32, 0.8);
        let e: f32 = w.iter().map(|z| z.norm_sqr()).sum();
        assert!((e - 1.0).abs() < 1e-5);
    }

    #[test]
    fn point_target_compresses_to_its_gate() {
        let wf = lfm_chirp(16, 0.9);
        let ranges = 128;
        let gate = 40;
        // Received signal: the waveform starting at `gate`.
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[gate + k] = w.scale(3.0);
        }
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        let powers: Vec<f64> = row.iter().map(|z| z.norm_sqr() as f64).collect();
        let (peak, _) = argmax(&powers).unwrap();
        assert_eq!(peak, gate);
        // Peak amplitude equals target amplitude × waveform energy (=1).
        assert!((row[gate].abs() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn compression_gain_concentrates_energy() {
        let wf = lfm_chirp(32, 0.9);
        let ranges = 256;
        let gate = 100;
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[gate + k] = w;
        }
        let pre_peak = row.iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max);
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        let post_peak = row.iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max);
        // Matched filtering concentrates the spread waveform; peak power
        // rises by roughly the time-bandwidth product.
        assert!(post_peak > 5.0 * pre_peak, "pre {pre_peak} post {post_peak}");
    }

    #[test]
    fn two_targets_resolve() {
        let wf = lfm_chirp(16, 0.9);
        let ranges = 128;
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[20 + k] += w.scale(2.0);
            row[80 + k] += w.scale(4.0);
        }
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        assert!((row[20].abs() - 2.0).abs() < 0.1);
        assert!((row[80].abs() - 4.0).abs() < 0.1);
    }

    #[test]
    fn compress_touches_every_row_of_cube() {
        let wf = lfm_chirp(8, 0.5);
        let mut cube = BeamCube::zeros(vec![0, 1], 2, 64);
        for beam in 0..2 {
            for bi in 0..2 {
                let row = cube.row_mut(beam, bi);
                for (k, &w) in wf.iter().enumerate() {
                    row[10 + k] = w;
                }
            }
        }
        let pc = PulseCompressor::new(64, &wf);
        pc.compress(&mut cube);
        for beam in 0..2 {
            for bi in 0..2 {
                let powers: Vec<f64> =
                    cube.row(beam, bi).iter().map(|z| z.norm_sqr() as f64).collect();
                assert_eq!(argmax(&powers).unwrap().0, 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_waveform_rejected() {
        PulseCompressor::new(16, &[]);
    }

    #[test]
    fn batched_compression_is_bit_identical_to_reference() {
        let wf = lfm_chirp(16, 0.9);
        let ranges = 96;
        // 11 rows: not a multiple of the 8-row batch, exercising the tail.
        let nrows = 11;
        let mut state = 0xACE5u64;
        let mut data = vec![C32::zero(); nrows * ranges];
        for z in &mut data {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *z = C32::new(
                (state as u32 as f32 / u32::MAX as f32) - 0.5,
                ((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5,
            );
        }
        let pc = PulseCompressor::new(ranges, &wf);
        let mut reference = data.clone();
        pc.compress_rows(&mut reference, ranges, KernelPath::Reference);
        pc.compress_rows(&mut data, ranges, KernelPath::Blocked);
        for (i, (x, y)) in reference.iter().zip(data.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re differs at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im differs at {i}");
        }
    }

    #[test]
    fn single_row_batch_matches_compress_row() {
        let wf = lfm_chirp(8, 0.7);
        let ranges = 40;
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[12 + k] = w.scale(2.0);
        }
        let pc = PulseCompressor::new(ranges, &wf);
        let mut via_row = row.clone();
        pc.compress_row(&mut via_row);
        pc.compress_rows(&mut row, ranges, KernelPath::Blocked);
        for (x, y) in via_row.iter().zip(row.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }
}
