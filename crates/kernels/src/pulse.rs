//! Pulse compression — FFT-based matched filtering along range.
//!
//! Each (beam, Doppler-bin) range row is correlated with the transmitted
//! waveform replica. The compressor zero-pads row and replica to a common
//! power-of-two length, multiplies spectra (with the replica conjugated) and
//! inverse-transforms, which realizes the full linear correlation.

use crate::beamform::BeamCube;
use stap_math::fft::next_pow2;
use stap_math::{FftPlan, C32};

/// Generates a unit-energy linear-FM (chirp) replica of `len` samples
/// sweeping `bandwidth_frac` of the sampling band.
pub fn lfm_chirp(len: usize, bandwidth_frac: f32) -> Vec<C32> {
    assert!(len > 0, "chirp length must be positive");
    let k = bandwidth_frac / len as f32; // sweep rate in cycles/sample²
    let mut v: Vec<C32> = (0..len)
        .map(|n| {
            let t = n as f32;
            C32::cis(std::f32::consts::PI * k * t * t)
        })
        .collect();
    let energy: f32 = v.iter().map(|z| z.norm_sqr()).sum();
    let scale = 1.0 / energy.sqrt();
    for z in &mut v {
        *z = z.scale(scale);
    }
    v
}

/// Planned matched filter for a fixed range extent and waveform.
#[derive(Debug)]
pub struct PulseCompressor {
    replica_spectrum: Vec<C32>,
    plan: FftPlan<f32>,
    fft_len: usize,
    waveform_len: usize,
}

impl PulseCompressor {
    /// Builds a compressor for rows of `ranges` gates against `waveform`.
    pub fn new(ranges: usize, waveform: &[C32]) -> Self {
        assert!(!waveform.is_empty(), "waveform must be non-empty");
        let fft_len = next_pow2(ranges + waveform.len() - 1);
        let plan = FftPlan::new(fft_len);
        let mut spec = vec![C32::zero(); fft_len];
        spec[..waveform.len()].copy_from_slice(waveform);
        plan.forward(&mut spec);
        // Conjugate once here so the per-row loop is a plain multiply.
        for z in &mut spec {
            *z = z.conj();
        }
        Self { replica_spectrum: spec, plan, fft_len, waveform_len: waveform.len() }
    }

    /// Length of the waveform replica.
    pub fn waveform_len(&self) -> usize {
        self.waveform_len
    }

    /// Compresses one range row in place. `row[r]` becomes the matched-filter
    /// output aligned so a point target at gate `g` peaks at gate `g`.
    pub fn compress_row(&self, row: &mut [C32]) {
        let mut buf = vec![C32::zero(); self.fft_len];
        buf[..row.len()].copy_from_slice(row);
        self.plan.forward(&mut buf);
        for (z, &h) in buf.iter_mut().zip(self.replica_spectrum.iter()) {
            *z *= h;
        }
        self.plan.inverse(&mut buf);
        // Correlation with the conjugated spectrum aligns the peak at the
        // target's own gate (zero-lag output sits at index 0..row.len()).
        row.copy_from_slice(&buf[..row.len()]);
    }

    /// Compresses every (beam, bin) row of a beam cube in place.
    pub fn compress(&self, cube: &mut BeamCube) {
        let bins = cube.bins.len();
        for beam in 0..cube.beams {
            for bi in 0..bins {
                self.compress_row(cube.row_mut(beam, bi));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_math::stats::argmax;

    #[test]
    fn chirp_has_unit_energy() {
        let w = lfm_chirp(32, 0.8);
        let e: f32 = w.iter().map(|z| z.norm_sqr()).sum();
        assert!((e - 1.0).abs() < 1e-5);
    }

    #[test]
    fn point_target_compresses_to_its_gate() {
        let wf = lfm_chirp(16, 0.9);
        let ranges = 128;
        let gate = 40;
        // Received signal: the waveform starting at `gate`.
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[gate + k] = w.scale(3.0);
        }
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        let powers: Vec<f64> = row.iter().map(|z| z.norm_sqr() as f64).collect();
        let (peak, _) = argmax(&powers).unwrap();
        assert_eq!(peak, gate);
        // Peak amplitude equals target amplitude × waveform energy (=1).
        assert!((row[gate].abs() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn compression_gain_concentrates_energy() {
        let wf = lfm_chirp(32, 0.9);
        let ranges = 256;
        let gate = 100;
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[gate + k] = w;
        }
        let pre_peak = row.iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max);
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        let post_peak = row.iter().map(|z| z.norm_sqr()).fold(0.0f32, f32::max);
        // Matched filtering concentrates the spread waveform; peak power
        // rises by roughly the time-bandwidth product.
        assert!(post_peak > 5.0 * pre_peak, "pre {pre_peak} post {post_peak}");
    }

    #[test]
    fn two_targets_resolve() {
        let wf = lfm_chirp(16, 0.9);
        let ranges = 128;
        let mut row = vec![C32::zero(); ranges];
        for (k, &w) in wf.iter().enumerate() {
            row[20 + k] += w.scale(2.0);
            row[80 + k] += w.scale(4.0);
        }
        let pc = PulseCompressor::new(ranges, &wf);
        pc.compress_row(&mut row);
        assert!((row[20].abs() - 2.0).abs() < 0.1);
        assert!((row[80].abs() - 4.0).abs() < 0.1);
    }

    #[test]
    fn compress_touches_every_row_of_cube() {
        let wf = lfm_chirp(8, 0.5);
        let mut cube = BeamCube::zeros(vec![0, 1], 2, 64);
        for beam in 0..2 {
            for bi in 0..2 {
                let row = cube.row_mut(beam, bi);
                for (k, &w) in wf.iter().enumerate() {
                    row[10 + k] = w;
                }
            }
        }
        let pc = PulseCompressor::new(64, &wf);
        pc.compress(&mut cube);
        for beam in 0..2 {
            for bi in 0..2 {
                let powers: Vec<f64> =
                    cube.row(beam, bi).iter().map(|z| z.norm_sqr() as f64).collect();
                assert_eq!(argmax(&powers).unwrap().0, 10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_waveform_rejected() {
        PulseCompressor::new(16, &[]);
    }
}
