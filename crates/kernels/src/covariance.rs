//! Sample covariance estimation for the adaptive weight tasks.
//!
//! Weights for Doppler bin `b` are trained on the space(-time) snapshots of
//! that bin across a subsampled set of range gates from the *previous* CPI
//! (the paper's temporal data dependency). The estimate is diagonally loaded
//! to guarantee positive definiteness even with few training snapshots.

use crate::cube::DopplerCube;
use stap_math::{CMat, C64};

/// Training configuration for covariance estimation.
#[derive(Debug, Clone, Copy)]
pub struct TrainingConfig {
    /// Use every `stride`-th range gate as a training snapshot.
    pub range_stride: usize,
    /// Diagonal loading factor relative to the average trained power
    /// (a typical value is 0.01–0.1 of the noise floor).
    pub loading: f64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        Self { range_stride: 4, loading: 0.05 }
    }
}

/// Estimates the DoF×DoF sample covariance of Doppler bin `bin`:
/// `R = (1/K) Σ_k x_k x_kᴴ + δ·tr(R)/N·I`.
///
/// Returns the estimate in double precision (the solvers need the headroom).
///
/// # Panics
/// Panics when `bin` is out of range or the stride is zero.
pub fn estimate_covariance(cube: &DopplerCube, bin: usize, cfg: TrainingConfig) -> CMat<f64> {
    assert!(bin < cube.bins(), "bin {bin} out of range {}", cube.bins());
    assert!(cfg.range_stride > 0, "range stride must be positive");
    let dof = cube.dof();
    let mut r = CMat::<f64>::zeros(dof, dof);
    let mut snap32 = Vec::with_capacity(dof);
    let mut snap = vec![C64::zero(); dof];
    let mut count = 0usize;
    let mut gate = 0usize;
    while gate < cube.ranges() {
        cube.snapshot(bin, gate, &mut snap32);
        for (d, s) in snap.iter_mut().zip(snap32.iter()) {
            *d = s.cast();
        }
        r.rank1_update(&snap, 1.0);
        count += 1;
        gate += cfg.range_stride;
    }
    if count > 0 {
        r = r.scale(1.0 / count as f64);
    }
    // Diagonal loading proportional to the mean diagonal power; falls back
    // to unity loading when the training data is all-zero so the factor
    // stays positive definite.
    let trace: f64 = (0..dof).map(|i| r[(i, i)].re).sum();
    let load = if trace > 0.0 { cfg.loading * trace / dof as f64 } else { 1.0 };
    r.load_diagonal(load);
    r
}

/// Number of training snapshots the configuration extracts from `ranges`
/// gates (used by the workload/FLOP model).
pub fn training_count(ranges: usize, cfg: TrainingConfig) -> usize {
    if cfg.range_stride == 0 {
        return 0;
    }
    ranges.div_ceil(cfg.range_stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::DopplerCube;
    use stap_math::{CholeskyFactor, C32};

    fn tone_cube(channels: usize, ranges: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(1, 2, channels, ranges);
        for r in 0..ranges {
            for c in 0..channels {
                // Rank-1 interference: same spatial signature at every gate.
                *dc.get_mut(0, 1, c, r) = C32::cis(0.3 * c as f32).scale(2.0)
            }
        }
        dc
    }

    #[test]
    fn covariance_is_hermitian_positive_definite() {
        let dc = tone_cube(4, 32);
        let r = estimate_covariance(&dc, 1, TrainingConfig::default());
        assert!(r.hermitian_defect() < 1e-12);
        assert!(CholeskyFactor::new(&r).is_ok());
    }

    #[test]
    fn zero_data_still_factorizable_thanks_to_loading() {
        let dc = DopplerCube::zeros(1, 3, 4, 16);
        let r = estimate_covariance(&dc, 0, TrainingConfig::default());
        assert!(CholeskyFactor::new(&r).is_ok());
    }

    #[test]
    fn rank1_interference_dominates_covariance() {
        let dc = tone_cube(4, 64);
        let r = estimate_covariance(&dc, 1, TrainingConfig { range_stride: 1, loading: 0.01 });
        // Diagonal ≈ |2|² = 4 (plus small loading); off-diagonal magnitude
        // equals diagonal for a rank-1 snapshot set.
        assert!((r[(0, 0)].re - 4.0).abs() < 0.2);
        assert!((r[(0, 1)].abs() - 4.0).abs() < 0.2);
    }

    #[test]
    fn stride_reduces_training_count() {
        assert_eq!(training_count(512, TrainingConfig { range_stride: 4, loading: 0.0 }), 128);
        assert_eq!(training_count(10, TrainingConfig { range_stride: 3, loading: 0.0 }), 4);
    }

    #[test]
    fn two_stagger_cube_doubles_dof() {
        let dc = DopplerCube::zeros(2, 2, 3, 8);
        let r = estimate_covariance(&dc, 0, TrainingConfig::default());
        assert_eq!(r.rows(), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bin_bounds_checked() {
        let dc = DopplerCube::zeros(1, 2, 2, 4);
        estimate_covariance(&dc, 5, TrainingConfig::default());
    }
}
