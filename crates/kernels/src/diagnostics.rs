//! Adaptive-processing diagnostics: SINR, adapted beam patterns, and the
//! improvement factor — the quantities used to judge whether the weight
//! computation is doing its job (and to debug it when it is not).

use crate::weights::BeamSet;
use stap_math::matrix::dot_h;
use stap_math::{CMat, CholeskyFactor, MathError, C64};

/// Output signal-to-interference-plus-noise ratio of weight `w` against
/// interference covariance `r` for a unit-power signal along `v`:
/// `SINR = |wᴴv|² / (wᴴ R w)`.
pub fn sinr(w: &[C64], v: &[C64], r: &CMat<f64>) -> Result<f64, MathError> {
    let gain = dot_h(w, v).norm_sqr();
    let rw = r.mul_vec(w)?;
    let denom = dot_h(w, &rw).re;
    Ok(gain / denom.max(f64::MIN_POSITIVE))
}

/// The maximum achievable SINR for covariance `r` and steering `v`:
/// `vᴴ R⁻¹ v` (attained by the MVDR weight).
pub fn optimal_sinr(v: &[C64], r: &CMat<f64>) -> Result<f64, MathError> {
    let chol = CholeskyFactor::new(r)?;
    let riv = chol.solve(v)?;
    Ok(dot_h(v, &riv).re)
}

/// Adapted spatial beam pattern: `|wᴴ a(f)|²` evaluated over a grid of
/// normalized spatial frequencies. Returns `(freq, power)` pairs.
pub fn spatial_pattern(w: &[C64], points: usize) -> Vec<(f64, f64)> {
    let channels = w.len();
    (0..points)
        .map(|k| {
            let fs = -0.5 + k as f64 / points as f64;
            let a: Vec<C64> = (0..channels)
                .map(|c| C64::cis(2.0 * std::f64::consts::PI * fs * c as f64))
                .collect();
            (fs, dot_h(w, &a).norm_sqr())
        })
        .collect()
}

/// Depth of the pattern null at `fs` relative to the peak gain, in dB
/// (negative = below the peak).
pub fn null_depth_db(w: &[C64], fs: f64) -> f64 {
    let pattern = spatial_pattern(w, 512);
    let peak = pattern.iter().map(|&(_, p)| p).fold(0.0, f64::max);
    let channels = w.len();
    let a: Vec<C64> =
        (0..channels).map(|c| C64::cis(2.0 * std::f64::consts::PI * fs * c as f64)).collect();
    let at = dot_h(w, &a).norm_sqr();
    10.0 * (at / peak.max(f64::MIN_POSITIVE)).log10()
}

/// SINR improvement factor of the adaptive weight over the conventional
/// (steering-vector) weight, in dB.
pub fn improvement_factor_db(
    w_adaptive: &[C64],
    beams: &BeamSet,
    beam: usize,
    r: &CMat<f64>,
) -> Result<f64, MathError> {
    let channels = w_adaptive.len();
    let v = beams.spatial_steering(beam, channels);
    let scale = 1.0 / channels as f64;
    let w_conv: Vec<C64> = v.iter().map(|z| z.scale(scale)).collect();
    let adapted = sinr(w_adaptive, &v, r)?;
    let conventional = sinr(&w_conv, &v, r)?;
    Ok(10.0 * (adapted / conventional).log10())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Identity + one strong rank-1 jammer at `fs`.
    fn jammed_cov(channels: usize, fs: f64, jnr: f64) -> CMat<f64> {
        let mut r = CMat::identity(channels);
        let a: Vec<C64> =
            (0..channels).map(|c| C64::cis(2.0 * std::f64::consts::PI * fs * c as f64)).collect();
        r.rank1_update(&a, jnr);
        r
    }

    fn mvdr(v: &[C64], r: &CMat<f64>) -> Vec<C64> {
        let chol = CholeskyFactor::new(r).unwrap();
        let riv = chol.solve(v).unwrap();
        let denom = dot_h(v, &riv).re;
        riv.into_iter().map(|z| z / denom).collect()
    }

    fn steering(channels: usize, fs: f64) -> Vec<C64> {
        (0..channels).map(|c| C64::cis(2.0 * std::f64::consts::PI * fs * c as f64)).collect()
    }

    #[test]
    fn mvdr_attains_the_optimal_sinr() {
        let r = jammed_cov(8, 0.3, 100.0);
        let v = steering(8, 0.0);
        let w = mvdr(&v, &r);
        let got = sinr(&w, &v, &r).unwrap();
        let opt = optimal_sinr(&v, &r).unwrap();
        assert!((got / opt - 1.0).abs() < 1e-9, "{got} vs {opt}");
    }

    #[test]
    fn white_noise_sinr_equals_channel_count() {
        // With R = I, optimal SINR = ‖v‖² = N.
        let r = CMat::identity(6);
        let v = steering(6, 0.1);
        assert!((optimal_sinr(&v, &r).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn adapted_pattern_nulls_the_jammer() {
        let jam_fs = 0.3;
        let r = jammed_cov(10, jam_fs, 1000.0);
        let v = steering(10, 0.0);
        let w = mvdr(&v, &r);
        let depth = null_depth_db(&w, jam_fs);
        assert!(depth < -30.0, "null only {depth} dB deep");
        // And the look direction stays near the peak.
        let look = null_depth_db(&w, 0.0);
        assert!(look > -3.0, "look direction suppressed: {look} dB");
    }

    #[test]
    fn improvement_factor_is_large_under_jamming() {
        // 0.23 keeps the jammer off the uniform pattern's natural nulls
        // (multiples of 1/8), so the conventional beamformer really suffers.
        let r = jammed_cov(8, 0.23, 1000.0);
        let beams = BeamSet { spatial_freqs: vec![0.0] };
        let v = steering(8, 0.0);
        let w = mvdr(&v, &r);
        let if_db = improvement_factor_db(&w, &beams, 0, &r).unwrap();
        assert!(if_db > 15.0, "improvement only {if_db} dB");
    }

    #[test]
    fn improvement_factor_near_zero_in_white_noise() {
        let r = CMat::identity(8);
        let beams = BeamSet { spatial_freqs: vec![0.1] };
        let v = steering(8, 0.1);
        let w = mvdr(&v, &r);
        let if_db = improvement_factor_db(&w, &beams, 0, &r).unwrap();
        assert!(if_db.abs() < 0.5, "{if_db}");
    }

    #[test]
    fn spatial_pattern_grid_covers_band() {
        let w = steering(4, 0.0);
        let p = spatial_pattern(&w, 64);
        assert_eq!(p.len(), 64);
        assert!((p[0].0 - -0.5).abs() < 1e-12);
        assert!(p.last().unwrap().0 < 0.5);
        // Peak at broadside for a uniform weight.
        let (peak_fs, _) = p.iter().copied().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap()).unwrap();
        assert!(peak_fs.abs() < 0.02, "peak at {peak_fs}");
    }
}
