//! Adaptive weight computation — the pipeline's temporally-dependent tasks.
//!
//! Per Doppler bin and per look direction, the MVDR weight
//! `w = R⁻¹v / (vᴴR⁻¹v)` is computed from the covariance of the *previous*
//! CPI's snapshots. The *easy* task uses single-stagger (spatial-only)
//! degrees of freedom; the *hard* task uses the two-stagger space-time
//! snapshot with a Doppler-shifted steering vector.

use crate::covariance::{estimate_covariance, TrainingConfig};
use crate::cube::DopplerCube;
use stap_math::matrix::dot_h;
use stap_math::{CMat, CholeskyFactor, Eigh, MathError, C32, C64};

/// Which adaptive algorithm computes the weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMethod {
    /// Minimum-variance distortionless response: `w = R⁻¹v / (vᴴR⁻¹v)`.
    /// Optimal SINR, needs a well-conditioned covariance.
    #[default]
    Mvdr,
    /// Eigencanceler / principal-components: project the steering vector
    /// off the dominant interference subspace, `w = Pv / (vᴴPv)` with
    /// `P = I − U Uᴴ`. More robust with few training snapshots; the rank
    /// is estimated by MDL when `rank` is `None`.
    Eigencanceler {
        /// Interference rank; `None` = estimate via MDL.
        rank: Option<usize>,
    },
}

/// A set of look directions expressed as normalized spatial frequencies
/// (`d·sinθ/λ`), one beam per direction.
#[derive(Debug, Clone)]
pub struct BeamSet {
    /// Normalized spatial frequencies in `[-0.5, 0.5)`.
    pub spatial_freqs: Vec<f64>,
}

impl Default for BeamSet {
    fn default() -> Self {
        // Two beams straddling broadside — enough to exercise the per-beam
        // loops without dominating the workload.
        Self { spatial_freqs: vec![-0.15, 0.15] }
    }
}

impl BeamSet {
    /// Number of beams.
    pub fn len(&self) -> usize {
        self.spatial_freqs.len()
    }

    /// True when the set holds no beams.
    pub fn is_empty(&self) -> bool {
        self.spatial_freqs.is_empty()
    }

    /// Spatial steering vector for beam `beam` over `channels` elements.
    pub fn spatial_steering(&self, beam: usize, channels: usize) -> Vec<C64> {
        let fs = self.spatial_freqs[beam];
        (0..channels).map(|c| C64::cis(2.0 * std::f64::consts::PI * fs * c as f64)).collect()
    }

    /// Space-time steering vector for beam `beam`: the spatial vector
    /// repeated per stagger, each stagger phase-advanced by the bin's
    /// per-PRI Doppler phase (`2π·b/nbins·offset`).
    pub fn space_time_steering(
        &self,
        beam: usize,
        channels: usize,
        staggers: usize,
        bin: usize,
        nbins: usize,
        stagger_offset: usize,
    ) -> Vec<C64> {
        let spatial = self.spatial_steering(beam, channels);
        let doppler_phase =
            2.0 * std::f64::consts::PI * bin as f64 / nbins as f64 * stagger_offset as f64;
        let mut v = Vec::with_capacity(channels * staggers);
        for s in 0..staggers {
            let rot = C64::cis(doppler_phase * s as f64);
            for a in &spatial {
                v.push(*a * rot);
            }
        }
        v
    }
}

/// Adaptive weights for a set of Doppler bins: `weights[k][beam]` is the
/// DoF-length weight vector of the k-th bin in [`WeightSet::bins`].
#[derive(Debug, Clone)]
pub struct WeightSet {
    /// The Doppler bins these weights apply to.
    pub bins: Vec<usize>,
    /// `weights[bin_index][beam]` → weight vector (single precision for the
    /// beamforming hot loop).
    pub weights: Vec<Vec<Vec<C32>>>,
    /// Degrees of freedom of each weight vector.
    pub dof: usize,
}

impl WeightSet {
    /// Looks up the weights for a bin, if present.
    pub fn for_bin(&self, bin: usize) -> Option<&Vec<Vec<C32>>> {
        self.bins.iter().position(|&b| b == bin).map(|i| &self.weights[i])
    }

    /// Merges two disjoint weight sets (easy + hard) into one.
    ///
    /// # Panics
    /// Panics when the DoF differ or a bin appears in both sets.
    pub fn merge(mut self, other: WeightSet) -> WeightSet {
        for b in &other.bins {
            assert!(!self.bins.contains(b), "bin {b} present in both weight sets");
        }
        self.bins.extend(other.bins);
        self.weights.extend(other.weights);
        self
    }
}

/// Computes MVDR weights per bin from a Doppler cube.
#[derive(Debug, Clone)]
pub struct WeightComputer {
    /// Look directions.
    pub beams: BeamSet,
    /// Covariance training configuration.
    pub training: TrainingConfig,
    /// PRI offset between staggers (must match the Doppler filter).
    pub stagger_offset: usize,
    /// Adaptive algorithm.
    pub method: WeightMethod,
}

impl Default for WeightComputer {
    fn default() -> Self {
        Self {
            beams: BeamSet::default(),
            training: TrainingConfig::default(),
            stagger_offset: 1,
            method: WeightMethod::Mvdr,
        }
    }
}

/// MDL (minimum description length) estimate of the number of dominant
/// (interference) eigenvalues, given the full ascending eigenvalue list and
/// the number of training snapshots.
pub fn mdl_rank(eigenvalues_ascending: &[f64], snapshots: usize) -> usize {
    let n = eigenvalues_ascending.len();
    if n == 0 {
        return 0;
    }
    let k_snap = snapshots.max(1) as f64;
    let lam: Vec<f64> = eigenvalues_ascending.iter().map(|&v| v.max(1e-300)).collect();
    let mut best = (f64::INFINITY, 0usize);
    for rank in 0..n {
        // The n-rank smallest eigenvalues should be equal (noise).
        let noise = &lam[..n - rank];
        let m = noise.len() as f64;
        let arith = noise.iter().sum::<f64>() / m;
        let geo = (noise.iter().map(|v| v.ln()).sum::<f64>() / m).exp();
        let ll = -k_snap * m * (geo / arith).ln();
        let penalty = 0.5 * (rank * (2 * n - rank)) as f64 * k_snap.ln();
        let mdl = ll + penalty;
        if mdl < best.0 {
            best = (mdl, rank);
        }
    }
    best.1
}

impl WeightComputer {
    /// Computes weights for the given bins of `cube` (which is the Doppler
    /// output of the **previous** CPI — the temporal dependency).
    pub fn compute(&self, cube: &DopplerCube, bins: &[usize]) -> Result<WeightSet, MathError> {
        let dof = cube.dof();
        let mut all = Vec::with_capacity(bins.len());
        for &bin in bins {
            let r = estimate_covariance(cube, bin, self.training);
            let solver = MethodSolver::build(self.method, &r, self.training)?;
            let mut per_beam = Vec::with_capacity(self.beams.len());
            for beam in 0..self.beams.len() {
                let v = self.beams.space_time_steering(
                    beam,
                    cube.channels(),
                    cube.staggers(),
                    bin,
                    cube.bins(),
                    self.stagger_offset,
                );
                per_beam.push(solver.weight(&v, cube.ranges())?);
            }
            all.push(per_beam);
        }
        Ok(WeightSet { bins: bins.to_vec(), weights: all, dof })
    }

    /// Uniform (non-adaptive) weights — the cold-start weights used for the
    /// very first CPI before any previous-CPI data exists.
    pub fn uniform(
        &self,
        dof: usize,
        channels: usize,
        staggers: usize,
        bins: &[usize],
        nbins: usize,
    ) -> WeightSet {
        let mut all = Vec::with_capacity(bins.len());
        for &bin in bins {
            let mut per_beam = Vec::with_capacity(self.beams.len());
            for beam in 0..self.beams.len() {
                let v = self.beams.space_time_steering(
                    beam,
                    channels,
                    staggers,
                    bin,
                    nbins,
                    self.stagger_offset,
                );
                let scale = 1.0 / dof as f64;
                let w: Vec<C32> = v.iter().map(|z| (z.scale(scale)).cast()).collect();
                per_beam.push(w);
            }
            all.push(per_beam);
        }
        WeightSet { bins: bins.to_vec(), weights: all, dof }
    }
}

/// Per-bin solver prepared once, applied per beam.
enum MethodSolver {
    Mvdr(CholeskyFactor<f64>),
    Eigencanceler {
        /// Dominant-subspace eigenvectors (columns, descending eigenvalue).
        basis: Vec<Vec<C64>>,
    },
}

impl MethodSolver {
    fn build(
        method: WeightMethod,
        r: &CMat<f64>,
        training: TrainingConfig,
    ) -> Result<Self, MathError> {
        match method {
            WeightMethod::Mvdr => Ok(MethodSolver::Mvdr(CholeskyFactor::new(r)?)),
            WeightMethod::Eigencanceler { rank } => {
                let e = Eigh::new(r)?;
                let n = e.values.len();
                // Snapshot count for MDL: a nominal 512-gate swath through
                // the configured stride (exact count is not critical — MDL
                // only needs the right order of magnitude).
                let snapshots = crate::covariance::training_count(512, training);
                let k =
                    rank.unwrap_or_else(|| mdl_rank(&e.values, snapshots)).min(n.saturating_sub(1));
                // The k LARGEST eigenpairs span the interference subspace.
                let basis = (0..k).map(|i| e.vector(n - 1 - i)).collect();
                Ok(MethodSolver::Eigencanceler { basis })
            }
        }
    }

    fn weight(&self, v: &[C64], _ranges: usize) -> Result<Vec<C32>, MathError> {
        match self {
            MethodSolver::Mvdr(chol) => {
                let riv = chol.solve(v)?;
                // MVDR normalization: w = R⁻¹v / (vᴴ R⁻¹ v); the denominator
                // is real and positive for PD R.
                let denom = dot_h(v, &riv).re;
                Ok(riv.iter().map(|z| (*z / denom).cast()).collect())
            }
            MethodSolver::Eigencanceler { basis } => {
                // Pv = v − Σ u (uᴴ v); then unit-gain normalization.
                let mut pv: Vec<C64> = v.to_vec();
                for u in basis {
                    let coef = dot_h(u, v);
                    for (x, uu) in pv.iter_mut().zip(u) {
                        *x -= *uu * coef;
                    }
                }
                let denom = dot_h(v, &pv).re;
                if denom.abs() < 1e-12 {
                    // The steering vector lies inside the interference
                    // subspace; fall back to the unprojected steer.
                    let n = v.len() as f64;
                    return Ok(v.iter().map(|z| (z.scale(1.0 / n)).cast()).collect());
                }
                Ok(pv.iter().map(|z| (*z / denom).cast()).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stap_math::matrix::dot_h;

    fn noise_cube(staggers: usize, bins: usize, channels: usize, ranges: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(staggers, bins, channels, ranges);
        // Deterministic pseudo-noise.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f32 / u64::MAX as f32) - 0.5
        };
        for s in 0..staggers {
            for b in 0..bins {
                for c in 0..channels {
                    for r in 0..ranges {
                        *dc.get_mut(s, b, c, r) = C32::new(next(), next());
                    }
                }
            }
        }
        dc
    }

    #[test]
    fn steering_vector_has_unit_modulus_entries() {
        let beams = BeamSet::default();
        let v = beams.space_time_steering(0, 4, 2, 3, 16, 1);
        assert_eq!(v.len(), 8);
        for z in v {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mvdr_distortionless_constraint_holds() {
        // wᴴ v must equal 1 (unit gain in the look direction).
        let cube = noise_cube(2, 4, 4, 64);
        let wc = WeightComputer::default();
        let ws = wc.compute(&cube, &[1, 2]).unwrap();
        for (k, &bin) in ws.bins.iter().enumerate() {
            for beam in 0..wc.beams.len() {
                let v = wc.beams.space_time_steering(beam, 4, 2, bin, 4, 1);
                let w64: Vec<C64> = ws.weights[k][beam].iter().map(|z| z.cast()).collect();
                let gain = dot_h(&w64, &v);
                assert!((gain.re - 1.0).abs() < 1e-3, "gain {gain}");
                assert!(gain.im.abs() < 1e-3);
            }
        }
    }

    #[test]
    fn interference_is_nulled() {
        // Plant strong rank-1 interference away from the look direction; the
        // adaptive weight must attenuate it far below the look-direction
        // gain.
        let channels = 8;
        let ranges = 128;
        let mut cube = noise_cube(1, 2, channels, ranges);
        let jam_freq = 0.35f32;
        for r in 0..ranges {
            for c in 0..channels {
                let cur = cube.get(0, 1, c, r);
                *cube.get_mut(0, 1, c, r) =
                    cur + C32::cis(2.0 * std::f32::consts::PI * jam_freq * c as f32).scale(30.0);
            }
        }
        let wc = WeightComputer {
            beams: BeamSet { spatial_freqs: vec![0.0] },
            training: TrainingConfig { range_stride: 1, loading: 0.01 },
            stagger_offset: 1,
            method: WeightMethod::Mvdr,
        };
        let ws = wc.compute(&cube, &[1]).unwrap();
        let w64: Vec<C64> = ws.weights[0][0].iter().map(|z| z.cast()).collect();
        let jam: Vec<C64> = (0..channels)
            .map(|c| C64::cis(2.0 * std::f64::consts::PI * jam_freq as f64 * c as f64))
            .collect();
        let look: Vec<C64> = (0..channels).map(|_| C64::one()).collect();
        let g_jam = dot_h(&w64, &jam).abs();
        let g_look = dot_h(&w64, &look).abs();
        assert!(g_jam < 0.05 * g_look, "jammer gain {g_jam} vs look {g_look}");
    }

    #[test]
    fn eigencanceler_nulls_the_jammer_too() {
        let channels = 8;
        let ranges = 128;
        let mut cube = noise_cube(1, 2, channels, ranges);
        let jam_freq = 0.35f32;
        for r in 0..ranges {
            for c in 0..channels {
                let cur = cube.get(0, 1, c, r);
                *cube.get_mut(0, 1, c, r) =
                    cur + C32::cis(2.0 * std::f32::consts::PI * jam_freq * c as f32).scale(30.0);
            }
        }
        for method in [
            WeightMethod::Eigencanceler { rank: Some(1) },
            WeightMethod::Eigencanceler { rank: None }, // MDL should find 1
        ] {
            let wc = WeightComputer {
                beams: BeamSet { spatial_freqs: vec![0.0] },
                training: TrainingConfig { range_stride: 1, loading: 0.01 },
                stagger_offset: 1,
                method,
            };
            let ws = wc.compute(&cube, &[1]).unwrap();
            let w64: Vec<C64> = ws.weights[0][0].iter().map(|z| z.cast()).collect();
            let jam: Vec<C64> = (0..channels)
                .map(|c| C64::cis(2.0 * std::f64::consts::PI * jam_freq as f64 * c as f64))
                .collect();
            let look: Vec<C64> = (0..channels).map(|_| C64::one()).collect();
            let g_jam = dot_h(&w64, &jam).abs();
            let g_look = dot_h(&w64, &look).abs();
            assert!(g_jam < 0.05 * g_look, "{method:?}: jammer gain {g_jam} vs look {g_look}");
            // Unit gain in the look direction (distortionless).
            assert!((g_look - 1.0).abs() < 1e-3, "{method:?}: look gain {g_look}");
        }
    }

    #[test]
    fn mdl_rank_counts_dominant_eigenvalues() {
        // 2 interference eigenvalues over a flat noise floor.
        let eigs = [1.0, 1.01, 0.99, 1.0, 50.0, 200.0];
        let mut sorted = eigs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(mdl_rank(&sorted, 128), 2);
        // Pure noise: rank 0.
        let noise = [1.0, 1.0, 1.0, 1.0];
        assert_eq!(mdl_rank(&noise, 128), 0);
        assert_eq!(mdl_rank(&[], 128), 0);
    }

    #[test]
    fn merge_concatenates_disjoint_sets() {
        let cube = noise_cube(1, 4, 2, 16);
        let wc = WeightComputer::default();
        let a = wc.compute(&cube, &[0, 1]).unwrap();
        let b = wc.compute(&cube, &[2]).unwrap();
        let m = a.merge(b);
        assert_eq!(m.bins, vec![0, 1, 2]);
        assert!(m.for_bin(2).is_some());
        assert!(m.for_bin(3).is_none());
    }

    #[test]
    #[should_panic(expected = "present in both")]
    fn merge_rejects_overlap() {
        let cube = noise_cube(1, 4, 2, 16);
        let wc = WeightComputer::default();
        let a = wc.compute(&cube, &[0]).unwrap();
        let b = wc.compute(&cube, &[0]).unwrap();
        let _ = a.merge(b);
    }

    #[test]
    fn uniform_weights_have_unit_look_gain() {
        let wc = WeightComputer::default();
        let ws = wc.uniform(4, 4, 1, &[0], 8);
        let v = wc.beams.space_time_steering(0, 4, 1, 0, 8, 1);
        let w64: Vec<C64> = ws.weights[0][0].iter().map(|z| z.cast()).collect();
        let gain = dot_h(&w64, &v);
        assert!((gain.re - 1.0).abs() < 1e-6);
    }
}
