#![warn(missing_docs)]

//! # stap-kernels — the STAP signal-processing chain
//!
//! Implements every task of the paper's modified PRI-staggered post-Doppler
//! STAP pipeline as pure, pipeline-agnostic kernels:
//!
//! 1. [`doppler`] — windowed Doppler filtering, including the PRI-staggered
//!    variant that produces two staggered Doppler cubes for the *hard* bins;
//! 2. [`covariance`] — sample covariance estimation with diagonal loading;
//! 3. [`weights`] — adaptive weight computation (*easy*: spatial-only DoF,
//!    *hard*: two-stagger space-time DoF);
//! 4. [`beamform`] — applying the weight vectors to form beams;
//! 5. [`pulse`] — FFT-based pulse compression against an LFM replica;
//! 6. [`cfar`] — constant-false-alarm-rate detection along range.
//!
//! [`cube`] defines the CPI data-cube container (pulses × channels × range
//! gates of interleaved complex32 samples — 8 bytes per element, exactly the
//! unit the paper's I/O subsystem reads from the parallel file system), and
//! [`report`] the detection report emitted at the end of the pipeline.

pub mod beamform;
pub mod cfar;
pub mod covariance;
pub mod cube;
pub mod diagnostics;
pub mod doppler;
pub mod path;
pub mod pulse;
pub mod report;
pub mod tracking;
pub mod truth;
pub mod weights;

pub use beamform::Beamformer;
pub use cfar::{CfarConfig, CfarError, CfarKind, Detection, OsRank};
pub use covariance::estimate_covariance;
pub use cube::{CubeDims, DataCube, DopplerCube};
pub use doppler::{BinClass, DopplerConfig, DopplerFilter};
pub use path::{KernelPath, SimdLevel};
pub use pulse::{lfm_chirp, PulseCompressor};
pub use report::DetectionReport;
pub use tracking::{Track, TrackState, Tracker, TrackerConfig};
pub use truth::{TruthError, TruthGate, TruthScore};
pub use weights::{mdl_rank, WeightComputer, WeightMethod, WeightSet};
