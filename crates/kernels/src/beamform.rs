//! Beamforming — applying the adaptive weights to the Doppler cube.
//!
//! For every (bin, range gate) the DoF-length snapshot is projected onto the
//! per-beam weight vectors: `y[beam][bin][range] = wᴴ x`. This is the hot
//! inner loop of the pipeline's middle tasks.

use crate::cube::DopplerCube;
use crate::weights::WeightSet;
use stap_math::C32;

/// Beamformed output: `beams × bins × ranges` (bins restricted to the set
/// the weights cover).
#[derive(Debug, Clone, PartialEq)]
pub struct BeamCube {
    /// The Doppler bins covered (same order as the weight set).
    pub bins: Vec<usize>,
    /// Number of beams.
    pub beams: usize,
    /// Number of range gates.
    pub ranges: usize,
    /// `data[((beam·nbins)+bin_idx)·ranges + r]`.
    data: Vec<C32>,
}

impl BeamCube {
    /// Zero-filled beam cube.
    pub fn zeros(bins: Vec<usize>, beams: usize, ranges: usize) -> Self {
        let n = bins.len();
        Self { bins, beams, ranges, data: vec![C32::zero(); beams * n * ranges] }
    }

    #[inline]
    fn idx(&self, beam: usize, bin_idx: usize, r: usize) -> usize {
        (beam * self.bins.len() + bin_idx) * self.ranges + r
    }

    /// Sample at (beam, bin-index, range).
    #[inline]
    pub fn get(&self, beam: usize, bin_idx: usize, r: usize) -> C32 {
        self.data[self.idx(beam, bin_idx, r)]
    }

    /// Mutable range row for (beam, bin-index) — the unit pulse compression
    /// and CFAR operate on.
    #[inline]
    pub fn row_mut(&mut self, beam: usize, bin_idx: usize) -> &mut [C32] {
        let start = self.idx(beam, bin_idx, 0);
        &mut self.data[start..start + self.ranges]
    }

    /// Range row for (beam, bin-index).
    #[inline]
    pub fn row(&self, beam: usize, bin_idx: usize) -> &[C32] {
        let start = self.idx(beam, bin_idx, 0);
        &self.data[start..start + self.ranges]
    }

    /// Total number of (beam, bin) rows.
    pub fn rows_total(&self) -> usize {
        self.beams * self.bins.len()
    }

    /// Merges two beam cubes over disjoint bin sets (easy + hard halves)
    /// into one covering the union.
    ///
    /// # Panics
    /// Panics when beam counts or range extents differ, or bins overlap.
    pub fn merge(&self, other: &BeamCube) -> BeamCube {
        assert_eq!(self.beams, other.beams, "beam count mismatch");
        assert_eq!(self.ranges, other.ranges, "range extent mismatch");
        for b in &other.bins {
            assert!(!self.bins.contains(b), "bin {b} present in both beam cubes");
        }
        let mut bins = self.bins.clone();
        bins.extend(other.bins.iter().copied());
        let mut out = BeamCube::zeros(bins, self.beams, self.ranges);
        for beam in 0..self.beams {
            for (i, _) in self.bins.iter().enumerate() {
                out.row_mut(beam, i).copy_from_slice(self.row(beam, i));
            }
            for (i, _) in other.bins.iter().enumerate() {
                let o = self.bins.len() + i;
                out.row_mut(beam, o).copy_from_slice(other.row(beam, i));
            }
        }
        out
    }
}

/// Applies weight vectors to Doppler snapshots.
#[derive(Debug, Default)]
pub struct Beamformer;

impl Beamformer {
    /// Beamforms the bins covered by `weights` over all range gates of
    /// `cube`.
    ///
    /// # Panics
    /// Panics when the weight DoF does not match the cube DoF.
    pub fn apply(&self, cube: &DopplerCube, weights: &WeightSet) -> BeamCube {
        assert_eq!(weights.dof, cube.dof(), "weight DoF must match cube DoF");
        let beams = weights.weights.first().map_or(0, |w| w.len());
        let mut out = BeamCube::zeros(weights.bins.clone(), beams, cube.ranges());
        let mut snap = Vec::with_capacity(cube.dof());
        for (bi, &bin) in weights.bins.iter().enumerate() {
            for r in 0..cube.ranges() {
                cube.snapshot(bin, r, &mut snap);
                for beam in 0..beams {
                    let w = &weights.weights[bi][beam];
                    let mut acc = C32::zero();
                    for (wk, xk) in w.iter().zip(snap.iter()) {
                        acc = acc.mul_add(wk.conj(), *xk);
                    }
                    let i = out.idx(beam, bi, r);
                    out.data[i] = acc;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{BeamSet, WeightComputer};

    fn cube_with_signal(channels: usize, ranges: usize, fs: f32, gate: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(1, 2, channels, ranges);
        for c in 0..channels {
            *dc.get_mut(0, 1, c, gate) =
                C32::cis(2.0 * std::f32::consts::PI * fs * c as f32).scale(5.0);
        }
        dc
    }

    #[test]
    fn uniform_weights_coherently_sum_matched_signal() {
        let channels = 8;
        let dc = cube_with_signal(channels, 16, 0.0, 3);
        let wc =
            WeightComputer { beams: BeamSet { spatial_freqs: vec![0.0] }, ..Default::default() };
        let ws = wc.uniform(channels, channels, 1, &[1], 2);
        let out = Beamformer.apply(&dc, &ws);
        // Signal gate: unit-gain MVDR-style normalization keeps amplitude 5.
        assert!((out.get(0, 0, 3).abs() - 5.0) < 1e-3);
        // Empty gates stay zero.
        assert!(out.get(0, 0, 0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_steering_attenuates() {
        let channels = 8;
        let dc = cube_with_signal(channels, 16, 0.25, 3);
        let wc =
            WeightComputer { beams: BeamSet { spatial_freqs: vec![0.0] }, ..Default::default() };
        let ws = wc.uniform(channels, channels, 1, &[1], 2);
        let out = Beamformer.apply(&dc, &ws);
        // Signal arrives from fs=0.25 but we look at broadside: heavy loss.
        assert!(out.get(0, 0, 3).abs() < 1.0);
    }

    #[test]
    fn beam_cube_rows_are_contiguous_ranges() {
        let mut bc = BeamCube::zeros(vec![4, 7], 2, 5);
        bc.row_mut(1, 1)[3] = C32::new(9.0, 0.0);
        assert_eq!(bc.get(1, 1, 3), C32::new(9.0, 0.0));
        assert_eq!(bc.rows_total(), 4);
    }

    #[test]
    fn merge_preserves_rows() {
        let mut a = BeamCube::zeros(vec![0], 1, 4);
        a.row_mut(0, 0)[1] = C32::new(1.0, 0.0);
        let mut b = BeamCube::zeros(vec![2], 1, 4);
        b.row_mut(0, 0)[2] = C32::new(2.0, 0.0);
        let m = a.merge(&b);
        assert_eq!(m.bins, vec![0, 2]);
        assert_eq!(m.get(0, 0, 1), C32::new(1.0, 0.0));
        assert_eq!(m.get(0, 1, 2), C32::new(2.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "DoF")]
    fn dof_mismatch_panics() {
        let dc = DopplerCube::zeros(2, 2, 4, 8);
        let wc = WeightComputer::default();
        let ws = wc.uniform(4, 4, 1, &[0], 2); // DoF 4 but cube DoF 8
        Beamformer.apply(&dc, &ws);
    }
}
