//! Beamforming — applying the adaptive weights to the Doppler cube.
//!
//! For every (bin, range gate) the DoF-length snapshot is projected onto the
//! per-beam weight vectors: `y[beam][bin][range] = wᴴ x`. This is the hot
//! inner loop of the pipeline's middle tasks.

use crate::cube::DopplerCube;
use crate::path::{KernelPath, SimdLevel};
use crate::weights::WeightSet;
use stap_math::C32;

/// Range-gate lane count per blocked accumulator row (32 complex = 256 B,
/// comfortably register/L1 resident alongside the snapshot rows).
const RANGE_BLOCK: usize = 32;

/// Beamformed output: `beams × bins × ranges` (bins restricted to the set
/// the weights cover).
#[derive(Debug, Clone, PartialEq)]
pub struct BeamCube {
    /// The Doppler bins covered (same order as the weight set).
    pub bins: Vec<usize>,
    /// Number of beams.
    pub beams: usize,
    /// Number of range gates.
    pub ranges: usize,
    /// `data[((beam·nbins)+bin_idx)·ranges + r]`.
    data: Vec<C32>,
}

impl BeamCube {
    /// Zero-filled beam cube.
    pub fn zeros(bins: Vec<usize>, beams: usize, ranges: usize) -> Self {
        let n = bins.len();
        Self { bins, beams, ranges, data: vec![C32::zero(); beams * n * ranges] }
    }

    #[inline]
    fn idx(&self, beam: usize, bin_idx: usize, r: usize) -> usize {
        (beam * self.bins.len() + bin_idx) * self.ranges + r
    }

    /// Sample at (beam, bin-index, range).
    #[inline]
    pub fn get(&self, beam: usize, bin_idx: usize, r: usize) -> C32 {
        self.data[self.idx(beam, bin_idx, r)]
    }

    /// Mutable range row for (beam, bin-index) — the unit pulse compression
    /// and CFAR operate on.
    #[inline]
    pub fn row_mut(&mut self, beam: usize, bin_idx: usize) -> &mut [C32] {
        let start = self.idx(beam, bin_idx, 0);
        &mut self.data[start..start + self.ranges]
    }

    /// Range row for (beam, bin-index).
    #[inline]
    pub fn row(&self, beam: usize, bin_idx: usize) -> &[C32] {
        let start = self.idx(beam, bin_idx, 0);
        &self.data[start..start + self.ranges]
    }

    /// Total number of (beam, bin) rows.
    pub fn rows_total(&self) -> usize {
        self.beams * self.bins.len()
    }

    /// Mutable flat storage: all (beam, bin) range rows back to back, beam
    /// major — the layout the batched pulse compressor streams through.
    #[inline]
    pub fn rows_flat_mut(&mut self) -> &mut [C32] {
        &mut self.data
    }

    /// Merges two beam cubes over disjoint bin sets (easy + hard halves)
    /// into one covering the union.
    ///
    /// # Panics
    /// Panics when beam counts or range extents differ, or bins overlap.
    pub fn merge(&self, other: &BeamCube) -> BeamCube {
        assert_eq!(self.beams, other.beams, "beam count mismatch");
        assert_eq!(self.ranges, other.ranges, "range extent mismatch");
        for b in &other.bins {
            assert!(!self.bins.contains(b), "bin {b} present in both beam cubes");
        }
        let mut bins = self.bins.clone();
        bins.extend(other.bins.iter().copied());
        let mut out = BeamCube::zeros(bins, self.beams, self.ranges);
        for beam in 0..self.beams {
            for (i, _) in self.bins.iter().enumerate() {
                out.row_mut(beam, i).copy_from_slice(self.row(beam, i));
            }
            for (i, _) in other.bins.iter().enumerate() {
                let o = self.bins.len() + i;
                out.row_mut(beam, o).copy_from_slice(other.row(beam, i));
            }
        }
        out
    }
}

/// Applies weight vectors to Doppler snapshots.
#[derive(Debug, Default)]
pub struct Beamformer;

impl Beamformer {
    /// Beamforms the bins covered by `weights` over all range gates of
    /// `cube`.
    ///
    /// # Panics
    /// Panics when the weight DoF does not match the cube DoF.
    pub fn apply(&self, cube: &DopplerCube, weights: &WeightSet) -> BeamCube {
        self.apply_with(cube, weights, KernelPath::Auto)
    }

    /// [`Beamformer::apply`] with an explicit kernel path.
    pub fn apply_with(
        &self,
        cube: &DopplerCube,
        weights: &WeightSet,
        path: KernelPath,
    ) -> BeamCube {
        assert_eq!(weights.dof, cube.dof(), "weight DoF must match cube DoF");
        let beams = weights.weights.first().map_or(0, |w| w.len());
        let mut out = BeamCube::zeros(weights.bins.clone(), beams, cube.ranges());
        match path.resolve() {
            KernelPath::Reference => Self::apply_ref(cube, weights, &mut out),
            KernelPath::Blocked | KernelPath::Auto => {
                self.apply_into_level(cube, weights, &mut out, 0, cube.ranges(), SimdLevel::None)
            }
            KernelPath::Simd => self.apply_into_level(
                cube,
                weights,
                &mut out,
                0,
                cube.ranges(),
                SimdLevel::detect(),
            ),
        }
        out
    }

    /// Blocked beamforming of range gates `[r0, r1)` into `out` — the
    /// chunk-level entry the work-stealing executor schedules. Gates
    /// outside the interval are left untouched.
    ///
    /// # Panics
    /// Panics when geometry disagrees or the interval is out of bounds.
    pub fn apply_into(
        &self,
        cube: &DopplerCube,
        weights: &WeightSet,
        out: &mut BeamCube,
        r0: usize,
        r1: usize,
        path: KernelPath,
    ) {
        let level = match path.resolve() {
            KernelPath::Simd => SimdLevel::detect(),
            _ => SimdLevel::None,
        };
        self.apply_into_level(cube, weights, out, r0, r1, level);
    }

    fn apply_into_level(
        &self,
        cube: &DopplerCube,
        weights: &WeightSet,
        out: &mut BeamCube,
        r0: usize,
        r1: usize,
        level: SimdLevel,
    ) {
        assert_eq!(weights.dof, cube.dof(), "weight DoF must match cube DoF");
        assert_eq!(out.bins, weights.bins, "output bins must match weight bins");
        assert_eq!(out.ranges, cube.ranges(), "output range extent differs from cube");
        assert!(r0 <= r1 && r1 <= cube.ranges(), "invalid gate interval {r0}..{r1}");
        let beams = weights.weights.first().map_or(0, |w| w.len());
        assert_eq!(out.beams, beams, "output beam count differs from weights");
        let channels = cube.channels();
        let mut acc = [C32::zero(); RANGE_BLOCK];
        for (bi, &bin) in weights.bins.iter().enumerate() {
            let mut b0 = r0;
            while b0 < r1 {
                let lanes = RANGE_BLOCK.min(r1 - b0);
                for beam in 0..beams {
                    let w = &weights.weights[bi][beam];
                    let acc = &mut acc[..lanes];
                    acc.fill(C32::zero());
                    // DoF index k maps to (stagger, channel) exactly as the
                    // reference snapshot concatenates them, so the per-gate
                    // accumulation order is identical to the scalar loop;
                    // lanes are independent gates.
                    for (k, wk) in w.iter().enumerate() {
                        let wc = wk.conj();
                        let row = cube.row(k / channels, bin, k % channels);
                        accum_row(acc, &row[b0..b0 + lanes], wc, level);
                    }
                    let start = out.idx(beam, bi, b0);
                    out.data[start..start + lanes].copy_from_slice(acc);
                }
                b0 += lanes;
            }
        }
    }

    /// Scalar reference: per-(bin, gate) snapshot gather + per-beam dot,
    /// the original naive loop kept as correctness and bench baseline.
    fn apply_ref(cube: &DopplerCube, weights: &WeightSet, out: &mut BeamCube) {
        let beams = weights.weights.first().map_or(0, |w| w.len());
        let mut snap = Vec::with_capacity(cube.dof());
        for (bi, &bin) in weights.bins.iter().enumerate() {
            for r in 0..cube.ranges() {
                cube.snapshot(bin, r, &mut snap);
                for beam in 0..beams {
                    let w = &weights.weights[bi][beam];
                    let mut acc = C32::zero();
                    for (wk, xk) in w.iter().zip(snap.iter()) {
                        acc = acc.mul_add(wk.conj(), *xk);
                    }
                    let i = out.idx(beam, bi, r);
                    out.data[i] = acc;
                }
            }
        }
    }
}

/// `acc[l] = acc[l].mul_add(wc, x[l])` across a lane row, dispatching to the
/// widest available `std::arch` path. Every path performs, per lane, the
/// exact scalar operation sequence (mul, add, mul, sub / add — no FMA
/// contraction), so results are bit-identical across levels.
#[inline]
fn accum_row(acc: &mut [C32], x: &[C32], wc: C32, level: SimdLevel) {
    debug_assert_eq!(acc.len(), x.len());
    match level {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        SimdLevel::Avx => unsafe { x86::accum_row_avx(acc, x, wc) },
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        SimdLevel::Sse3 => unsafe { x86::accum_row_sse3(acc, x, wc) },
        _ => accum_row_scalar(acc, x, wc),
    }
}

#[inline]
fn accum_row_scalar(acc: &mut [C32], x: &[C32], wc: C32) {
    for (a, xv) in acc.iter_mut().zip(x.iter()) {
        *a = a.mul_add(wc, *xv);
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
mod x86 {
    //! Explicit SSE3/AVX complex accumulation over interleaved `[re, im]`
    //! f32 pairs (`Complex<f32>` is `repr(C)`).
    //!
    //! Per complex lane the computation is
    //! `re' = (acc.re + wc.re·x.re) - wc.im·x.im` on even float lanes and
    //! `im' = (acc.im + wc.re·x.im) + wc.im·x.re` on odd float lanes —
    //! realized as `addsub(acc + splat(wc.re)·x, splat(wc.im)·swap(x))`
    //! with plain `mul`/`add`/`addsub` (never fused), matching
    //! `Complex::mul_add(wc, x)`'s evaluation order bit-for-bit.
    use super::C32;
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure AVX is available and `acc.len() == x.len()`.
    #[target_feature(enable = "avx")]
    pub unsafe fn accum_row_avx(acc: &mut [C32], x: &[C32], wc: C32) {
        let n = acc.len();
        let ap = acc.as_mut_ptr() as *mut f32;
        let xp = x.as_ptr() as *const f32;
        let wr = _mm256_set1_ps(wc.re);
        let wi = _mm256_set1_ps(wc.im);
        let quads = n / 4; // 4 complex lanes per 256-bit vector
        for q in 0..quads {
            let a = _mm256_loadu_ps(ap.add(q * 8));
            let xv = _mm256_loadu_ps(xp.add(q * 8));
            let xs = _mm256_permute_ps(xv, 0b10_11_00_01); // swap re/im pairs
            let step = _mm256_add_ps(a, _mm256_mul_ps(wr, xv));
            let r = _mm256_addsub_ps(step, _mm256_mul_ps(wi, xs));
            _mm256_storeu_ps(ap.add(q * 8), r);
        }
        super::accum_row_scalar(&mut acc[quads * 4..], &x[quads * 4..], wc);
    }

    /// # Safety
    /// Caller must ensure SSE3 is available and `acc.len() == x.len()`.
    #[target_feature(enable = "sse3")]
    pub unsafe fn accum_row_sse3(acc: &mut [C32], x: &[C32], wc: C32) {
        let n = acc.len();
        let ap = acc.as_mut_ptr() as *mut f32;
        let xp = x.as_ptr() as *const f32;
        let wr = _mm_set1_ps(wc.re);
        let wi = _mm_set1_ps(wc.im);
        let pairs = n / 2; // 2 complex lanes per 128-bit vector
        for q in 0..pairs {
            let a = _mm_loadu_ps(ap.add(q * 4));
            let xv = _mm_loadu_ps(xp.add(q * 4));
            let xs = _mm_shuffle_ps(xv, xv, 0b10_11_00_01);
            let step = _mm_add_ps(a, _mm_mul_ps(wr, xv));
            let r = _mm_addsub_ps(step, _mm_mul_ps(wi, xs));
            _mm_storeu_ps(ap.add(q * 4), r);
        }
        super::accum_row_scalar(&mut acc[pairs * 2..], &x[pairs * 2..], wc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::{BeamSet, WeightComputer};

    fn cube_with_signal(channels: usize, ranges: usize, fs: f32, gate: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(1, 2, channels, ranges);
        for c in 0..channels {
            *dc.get_mut(0, 1, c, gate) =
                C32::cis(2.0 * std::f32::consts::PI * fs * c as f32).scale(5.0);
        }
        dc
    }

    #[test]
    fn uniform_weights_coherently_sum_matched_signal() {
        let channels = 8;
        let dc = cube_with_signal(channels, 16, 0.0, 3);
        let wc =
            WeightComputer { beams: BeamSet { spatial_freqs: vec![0.0] }, ..Default::default() };
        let ws = wc.uniform(channels, channels, 1, &[1], 2);
        let out = Beamformer.apply(&dc, &ws);
        // Signal gate: unit-gain MVDR-style normalization keeps amplitude 5.
        assert!((out.get(0, 0, 3).abs() - 5.0) < 1e-3);
        // Empty gates stay zero.
        assert!(out.get(0, 0, 0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_steering_attenuates() {
        let channels = 8;
        let dc = cube_with_signal(channels, 16, 0.25, 3);
        let wc =
            WeightComputer { beams: BeamSet { spatial_freqs: vec![0.0] }, ..Default::default() };
        let ws = wc.uniform(channels, channels, 1, &[1], 2);
        let out = Beamformer.apply(&dc, &ws);
        // Signal arrives from fs=0.25 but we look at broadside: heavy loss.
        assert!(out.get(0, 0, 3).abs() < 1.0);
    }

    #[test]
    fn beam_cube_rows_are_contiguous_ranges() {
        let mut bc = BeamCube::zeros(vec![4, 7], 2, 5);
        bc.row_mut(1, 1)[3] = C32::new(9.0, 0.0);
        assert_eq!(bc.get(1, 1, 3), C32::new(9.0, 0.0));
        assert_eq!(bc.rows_total(), 4);
    }

    #[test]
    fn merge_preserves_rows() {
        let mut a = BeamCube::zeros(vec![0], 1, 4);
        a.row_mut(0, 0)[1] = C32::new(1.0, 0.0);
        let mut b = BeamCube::zeros(vec![2], 1, 4);
        b.row_mut(0, 0)[2] = C32::new(2.0, 0.0);
        let m = a.merge(&b);
        assert_eq!(m.bins, vec![0, 2]);
        assert_eq!(m.get(0, 0, 1), C32::new(1.0, 0.0));
        assert_eq!(m.get(0, 1, 2), C32::new(2.0, 0.0));
    }

    fn noise_doppler(staggers: usize, bins: usize, channels: usize, ranges: usize) -> DopplerCube {
        let mut dc = DopplerCube::zeros(staggers, bins, channels, ranges);
        let mut state = 0xC0FFEEu64;
        for s in 0..staggers {
            for b in 0..bins {
                for c in 0..channels {
                    for r in 0..ranges {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        *dc.get_mut(s, b, c, r) = C32::new(
                            (state as u32 as f32 / u32::MAX as f32) - 0.5,
                            ((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5,
                        );
                    }
                }
            }
        }
        dc
    }

    fn assert_beams_bit_equal(a: &BeamCube, b: &BeamCube) {
        assert_eq!(a.bins, b.bins);
        for (i, (x, y)) in a.data.iter().zip(b.data.iter()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re differs at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im differs at {i}");
        }
    }

    #[test]
    fn blocked_and_simd_beamforming_are_bit_identical_to_reference() {
        // 2 staggers × 3 channels (DoF 6), 39 gates: exercises the lane
        // tail of both the 32-gate block and the SIMD vectors.
        let dc = noise_doppler(2, 4, 3, 39);
        let wc = WeightComputer::default();
        let ws = wc.compute(&dc, &[1, 3]).unwrap();
        let reference = Beamformer.apply_with(&dc, &ws, KernelPath::Reference);
        let blocked = Beamformer.apply_with(&dc, &ws, KernelPath::Blocked);
        let simd = Beamformer.apply_with(&dc, &ws, KernelPath::Simd);
        assert_beams_bit_equal(&reference, &blocked);
        assert_beams_bit_equal(&reference, &simd);
    }

    #[test]
    fn chunked_beamforming_composes_to_full_apply() {
        let dc = noise_doppler(1, 3, 4, 23);
        let wc = WeightComputer::default();
        let ws = wc.compute(&dc, &[0, 2]).unwrap();
        let full = Beamformer.apply_with(&dc, &ws, KernelPath::Blocked);
        let beams = ws.weights.first().map_or(0, |w| w.len());
        let mut stitched = BeamCube::zeros(ws.bins.clone(), beams, 23);
        for (r0, r1) in [(0usize, 9usize), (9, 20), (20, 23)] {
            Beamformer.apply_into(&dc, &ws, &mut stitched, r0, r1, KernelPath::Blocked);
        }
        assert_beams_bit_equal(&full, &stitched);
    }

    #[test]
    #[should_panic(expected = "DoF")]
    fn dof_mismatch_panics() {
        let dc = DopplerCube::zeros(2, 2, 4, 8);
        let wc = WeightComputer::default();
        let ws = wc.uniform(4, 4, 1, &[0], 2); // DoF 4 but cube DoF 8
        Beamformer.apply(&dc, &ws);
    }
}
