//! Truth-matched scoring of CFAR detections.
//!
//! The verification layer knows where the synthetic scene put its targets;
//! this module turns that knowledge into [`TruthGate`]s — the (Doppler bin,
//! range window) a target's echo must land in — and scores a detection list
//! against them: which truths were hit (Pd numerator) and how many
//! detections match no truth at all (Pfa numerator).

use crate::cfar::Detection;

/// Typed failure of a truth-matching pass.
///
/// Like the CFAR window guard, these conditions used to be silently
/// indistinguishable from "nothing detected": a gate outside the processed
/// range swath, or a bin count of zero, can never be hit by any detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthError {
    /// The cube has no Doppler bins to match against.
    NoBins,
    /// A truth gate's range window lies wholly outside the processed swath.
    GateOutOfRange {
        /// First range gate of the truth window.
        range_lo: usize,
        /// Last range gate of the truth window (inclusive).
        range_hi: usize,
        /// Range gates actually processed.
        ranges: usize,
    },
}

impl std::fmt::Display for TruthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TruthError::NoBins => write!(f, "truth matching over zero Doppler bins"),
            TruthError::GateOutOfRange { range_lo, range_hi, ranges } => {
                write!(f, "truth gate {range_lo}..={range_hi} lies outside the {ranges}-gate swath")
            }
        }
    }
}

impl std::error::Error for TruthError {}

/// Where one target's echo must appear at one CPI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthGate {
    /// Expected Doppler bin (the pipeline's bin label).
    pub bin: usize,
    /// First acceptable range gate (the waveform starts at the target's
    /// gate and spreads over its length; tolerances widen both edges).
    pub range_lo: usize,
    /// Last acceptable range gate, inclusive.
    pub range_hi: usize,
    /// Acceptable circular Doppler-bin distance (straddle tolerance).
    pub bin_tol: usize,
}

/// Circular distance between Doppler bins `a` and `b` out of `nbins`.
pub fn circular_bin_distance(a: usize, b: usize, nbins: usize) -> usize {
    let d = (a as i64 - b as i64).rem_euclid(nbins as i64) as usize;
    d.min(nbins - d)
}

impl TruthGate {
    /// Whether `det` is consistent with this truth.
    pub fn matches(&self, det: &Detection, nbins: usize) -> bool {
        det.range >= self.range_lo
            && det.range <= self.range_hi
            && circular_bin_distance(det.bin, self.bin, nbins) <= self.bin_tol
    }
}

/// How a detection list scored against a set of truths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruthScore {
    /// Per-truth: was it hit by at least one detection? (Indexed like the
    /// `truths` argument.)
    pub hits: Vec<bool>,
    /// Detections consistent with no truth at all.
    pub false_alarms: usize,
}

impl TruthScore {
    /// Truths hit.
    pub fn hit_count(&self) -> usize {
        self.hits.iter().filter(|&&h| h).count()
    }
}

/// Scores `dets` against `truths` over a `nbins × ranges` detection surface.
///
/// # Errors
/// [`TruthError`] when the surface cannot contain any match — zero bins, or
/// a truth window wholly outside the swath — instead of silently reporting
/// every truth missed.
pub fn score(
    dets: &[Detection],
    truths: &[TruthGate],
    nbins: usize,
    ranges: usize,
) -> Result<TruthScore, TruthError> {
    if nbins == 0 {
        return Err(TruthError::NoBins);
    }
    for t in truths {
        if t.range_lo >= ranges {
            return Err(TruthError::GateOutOfRange {
                range_lo: t.range_lo,
                range_hi: t.range_hi,
                ranges,
            });
        }
    }
    let mut hits = vec![false; truths.len()];
    let mut false_alarms = 0usize;
    for det in dets {
        let mut matched = false;
        for (i, t) in truths.iter().enumerate() {
            if t.matches(det, nbins) {
                hits[i] = true;
                matched = true;
            }
        }
        if !matched {
            false_alarms += 1;
        }
    }
    Ok(TruthScore { hits, false_alarms })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(bin: usize, range: usize) -> Detection {
        Detection { beam: 0, bin, range, power: 10.0, noise: 1.0, snr_db: 10.0 }
    }

    #[test]
    fn circular_distance_wraps() {
        assert_eq!(circular_bin_distance(0, 31, 32), 1);
        assert_eq!(circular_bin_distance(3, 3, 32), 0);
        assert_eq!(circular_bin_distance(1, 17, 32), 16);
    }

    #[test]
    fn hits_and_false_alarms_are_separated() {
        let truths = vec![
            TruthGate { bin: 8, range_lo: 28, range_hi: 40, bin_tol: 1 },
            TruthGate { bin: 1, range_lo: 88, range_hi: 100, bin_tol: 1 },
        ];
        // One hit for truth 0 (bin straddle), one false alarm, truth 1 missed.
        let dets = vec![det(9, 30), det(20, 60)];
        let s = score(&dets, &truths, 32, 128).unwrap();
        assert_eq!(s.hits, vec![true, false]);
        assert_eq!(s.hit_count(), 1);
        assert_eq!(s.false_alarms, 1);
    }

    #[test]
    fn inconsistent_surface_is_a_typed_error() {
        let t = TruthGate { bin: 0, range_lo: 500, range_hi: 510, bin_tol: 0 };
        assert_eq!(
            score(&[], &[t], 32, 128),
            Err(TruthError::GateOutOfRange { range_lo: 500, range_hi: 510, ranges: 128 })
        );
        assert_eq!(score(&[], &[], 0, 128), Err(TruthError::NoBins));
        let err = TruthError::NoBins.to_string();
        assert!(err.contains("zero Doppler bins"));
    }

    #[test]
    fn empty_truth_set_counts_everything_as_false_alarm() {
        let s = score(&[det(0, 0), det(1, 1)], &[], 32, 128).unwrap();
        assert!(s.hits.is_empty());
        assert_eq!(s.false_alarms, 2);
    }
}
