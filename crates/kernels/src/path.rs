//! Kernel implementation selection: scalar reference, cache-blocked, or
//! `std::arch` SIMD — with runtime feature detection.
//!
//! Every optimized path is constructed to be **bit-identical** to the scalar
//! reference: blocking and SIMD vectorize across *independent outputs*
//! (range gates), never inside a reduction, so each output element sees the
//! exact floating-point operation sequence of the reference loop. The
//! differential suite in `tests/kernel_props.rs` pins this down to 0 ULP.

use std::fmt;
use std::sync::OnceLock;

/// Which implementation of a kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelPath {
    /// The naive scalar loops — always compiled, the correctness oracle.
    Reference,
    /// Cache-blocked panels with autovectorizer-friendly lane-inner loops.
    Blocked,
    /// Blocked layout plus explicit `std::arch` SSE3/AVX inner loops.
    /// Falls back to [`KernelPath::Blocked`] when the CPU lacks the
    /// features (or off x86).
    Simd,
    /// [`KernelPath::Simd`] when the CPU supports it, else
    /// [`KernelPath::Blocked`].
    #[default]
    Auto,
}

impl KernelPath {
    /// Resolves [`KernelPath::Auto`] against the detected CPU features.
    pub fn resolve(self) -> KernelPath {
        match self {
            KernelPath::Auto => {
                if SimdLevel::detect() == SimdLevel::None {
                    KernelPath::Blocked
                } else {
                    KernelPath::Simd
                }
            }
            other => other,
        }
    }

    /// Parses a CLI/config spelling.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "reference" | "scalar" | "ref" => Ok(KernelPath::Reference),
            "blocked" => Ok(KernelPath::Blocked),
            "simd" => Ok(KernelPath::Simd),
            "auto" | "fast" => Ok(KernelPath::Auto),
            other => Err(format!("kernel path must be scalar|blocked|simd|auto, got '{other}'")),
        }
    }
}

impl fmt::Display for KernelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelPath::Reference => "scalar",
            KernelPath::Blocked => "blocked",
            KernelPath::Simd => "simd",
            KernelPath::Auto => "auto",
        };
        f.write_str(s)
    }
}

/// Widest usable x86 SIMD tier for the complex inner loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// 8 f32 lanes (4 complex) per vector.
    Avx,
    /// 4 f32 lanes (2 complex) per vector; needs SSE3 for `addsub`.
    Sse3,
    /// No usable SIMD — scalar lane loops only.
    None,
}

impl SimdLevel {
    /// Runtime CPU feature detection, cached after the first call.
    pub fn detect() -> SimdLevel {
        static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
        *LEVEL.get_or_init(Self::probe)
    }

    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    fn probe() -> SimdLevel {
        if is_x86_feature_detected!("avx") {
            SimdLevel::Avx
        } else if is_x86_feature_detected!("sse3") {
            SimdLevel::Sse3
        } else {
            SimdLevel::None
        }
    }

    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    fn probe() -> SimdLevel {
        SimdLevel::None
    }

    /// Human-readable label for reports and the README feature table.
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Avx => "avx",
            SimdLevel::Sse3 => "sse3",
            SimdLevel::None => "scalar",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_resolves_to_concrete_path() {
        let r = KernelPath::Auto.resolve();
        assert!(matches!(r, KernelPath::Blocked | KernelPath::Simd));
        assert_eq!(KernelPath::Reference.resolve(), KernelPath::Reference);
        assert_eq!(KernelPath::Blocked.resolve(), KernelPath::Blocked);
    }

    #[test]
    fn parse_round_trip() {
        assert_eq!(KernelPath::parse("scalar").unwrap(), KernelPath::Reference);
        assert_eq!(KernelPath::parse("blocked").unwrap(), KernelPath::Blocked);
        assert_eq!(KernelPath::parse("simd").unwrap(), KernelPath::Simd);
        assert_eq!(KernelPath::parse("auto").unwrap(), KernelPath::Auto);
        assert!(KernelPath::parse("mmx").is_err());
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(SimdLevel::detect(), SimdLevel::detect());
        assert!(!SimdLevel::detect().label().is_empty());
    }
}
