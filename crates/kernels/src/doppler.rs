//! Doppler filtering — the pipeline's first compute task.
//!
//! For the *easy* path a single windowed FFT across the full pulse train
//! converts each (channel, range) pulse sequence into Doppler bins. For the
//! *hard* path (the modified PRI-staggered post-Doppler algorithm of the
//! paper) two pulse segments offset by one PRI are each windowed and
//! FFT-filtered, yielding two staggered Doppler cubes whose per-bin channel
//! vectors are later combined adaptively by the hard weight/beamforming
//! tasks.

use crate::cube::{DataCube, DopplerCube};
use stap_math::fft::next_pow2;
use stap_math::window::Window;
use stap_math::{FftPlan, C32};

/// Classification of Doppler bins into easy and hard processing cases.
///
/// Hard bins sit inside the clutter notch around zero Doppler (where the
/// two-stagger adaptive nulling is required); the rest are easy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinClass {
    /// Fraction of bins (centred on zero Doppler, wrapping) that are hard.
    pub hard_fraction: f64,
}

impl Default for BinClass {
    fn default() -> Self {
        // Half the bins hard: gives the hard tasks the dominant share of the
        // pipeline workload, matching the paper's per-task time tables.
        Self { hard_fraction: 0.5 }
    }
}

impl BinClass {
    /// Returns `true` when Doppler bin `b` (of `nbins`) is a hard bin.
    ///
    /// Exactly `round(hard_fraction · nbins)` bins are hard: the ones
    /// closest (circularly) to bin 0, i.e. closest to zero Doppler, with the
    /// positive-Doppler side winning ties.
    pub fn is_hard(&self, b: usize, nbins: usize) -> bool {
        if nbins == 0 || b >= nbins {
            return false;
        }
        let target = (self.hard_fraction * nbins as f64).round() as usize;
        let target = target.min(nbins);
        if target == 0 {
            return false;
        }
        let dist = b.min(nbins - b); // circular distance from bin 0
                                     // Number of bins strictly closer than `dist`: ring 0 has one member,
                                     // every other full ring has two.
        let closer = if dist == 0 { 0 } else { 2 * dist - 1 };
        if closer >= target {
            return false;
        }
        if closer + ring_size(dist, nbins) <= target {
            return true;
        }
        // Partial ring: the positive-Doppler member (lower bin index) wins.
        b == dist
    }

    /// The list of hard bin indices.
    pub fn hard_bins(&self, nbins: usize) -> Vec<usize> {
        (0..nbins).filter(|&b| self.is_hard(b, nbins)).collect()
    }

    /// The list of easy bin indices.
    pub fn easy_bins(&self, nbins: usize) -> Vec<usize> {
        (0..nbins).filter(|&b| !self.is_hard(b, nbins)).collect()
    }
}

/// Number of bins at circular distance `dist` from bin 0 in an
/// `nbins`-point spectrum (1 for the poles, 2 otherwise).
fn ring_size(dist: usize, nbins: usize) -> usize {
    if dist == 0 || 2 * dist == nbins {
        1
    } else {
        2
    }
}

/// Configuration of the Doppler filter task.
#[derive(Debug, Clone)]
pub struct DopplerConfig {
    /// Taper window applied to each pulse train before the FFT.
    pub window: Window,
    /// PRI offset between the two staggered segments (usually 1).
    pub stagger_offset: usize,
    /// Bin classification shared with the weight/beamforming tasks.
    pub bins: BinClass,
}

impl Default for DopplerConfig {
    fn default() -> Self {
        Self { window: Window::Hamming, stagger_offset: 1, bins: BinClass::default() }
    }
}

/// Planned Doppler filter for a fixed cube geometry.
#[derive(Debug)]
pub struct DopplerFilter {
    config: DopplerConfig,
    pulses: usize,
    fft_len: usize,
    plan: FftPlan<f32>,
    window_full: Vec<f32>,
    window_seg: Vec<f32>,
}

impl DopplerFilter {
    /// Builds a filter for cubes with `pulses` PRIs.
    ///
    /// # Panics
    /// Panics when `stagger_offset >= pulses`.
    pub fn new(pulses: usize, config: DopplerConfig) -> Self {
        assert!(
            config.stagger_offset < pulses,
            "stagger offset {} must be < pulses {}",
            config.stagger_offset,
            pulses
        );
        let fft_len = next_pow2(pulses);
        let seg_len = pulses - config.stagger_offset;
        Self {
            plan: FftPlan::new(fft_len),
            window_full: config.window.coefficients(pulses),
            window_seg: config.window.coefficients(seg_len),
            config,
            pulses,
            fft_len,
        }
    }

    /// Number of Doppler bins produced (the zero-padded FFT length).
    pub fn bins(&self) -> usize {
        self.fft_len
    }

    /// The configured bin classification.
    pub fn bin_class(&self) -> BinClass {
        self.config.bins
    }

    /// Easy-path filtering: one windowed FFT over the full pulse train for
    /// every (channel, range). Output stagger count is 1.
    #[allow(clippy::needless_range_loop)] // gathers strided cube samples into a dense FFT buffer
    pub fn filter_easy(&self, cube: &DataCube) -> DopplerCube {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        let mut out = DopplerCube::zeros(1, self.fft_len, d.channels, d.ranges);
        let mut buf = vec![C32::zero(); self.fft_len];
        for c in 0..d.channels {
            for r in 0..d.ranges {
                for p in 0..self.pulses {
                    buf[p] = cube.get(p, c, r).scale(self.window_full[p]);
                }
                for v in buf.iter_mut().skip(self.pulses) {
                    *v = C32::zero();
                }
                self.plan.forward(&mut buf);
                for (b, &v) in buf.iter().enumerate() {
                    *out.get_mut(0, b, c, r) = v;
                }
            }
        }
        out
    }

    /// Hard-path (PRI-staggered) filtering: two windowed FFTs over the pulse
    /// segments `[0, P-s)` and `[s, P)`. Output stagger count is 2.
    #[allow(clippy::needless_range_loop)] // gathers strided cube samples into a dense FFT buffer
    pub fn filter_staggered(&self, cube: &DataCube) -> DopplerCube {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        let s = self.config.stagger_offset;
        let seg = self.pulses - s;
        let mut out = DopplerCube::zeros(2, self.fft_len, d.channels, d.ranges);
        let mut buf = vec![C32::zero(); self.fft_len];
        for c in 0..d.channels {
            for r in 0..d.ranges {
                for (stagger, start) in [(0usize, 0usize), (1, s)] {
                    for k in 0..seg {
                        buf[k] = cube.get(start + k, c, r).scale(self.window_seg[k]);
                    }
                    for v in buf.iter_mut().skip(seg) {
                        *v = C32::zero();
                    }
                    self.plan.forward(&mut buf);
                    for (b, &v) in buf.iter().enumerate() {
                        *out.get_mut(stagger, b, c, r) = v;
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDims;
    use stap_math::stats::argmax;

    /// A cube with a single target: constant Doppler phasor across pulses.
    fn phasor_cube(dims: CubeDims, norm_doppler: f32) -> DataCube {
        let mut cube = DataCube::zeros(dims);
        for p in 0..dims.pulses {
            let z = C32::cis(2.0 * std::f32::consts::PI * norm_doppler * p as f32);
            for c in 0..dims.channels {
                for r in 0..dims.ranges {
                    *cube.get_mut(p, c, r) = z;
                }
            }
        }
        cube
    }

    #[test]
    fn easy_filter_localizes_doppler_tone() {
        let dims = CubeDims::new(32, 2, 3);
        let df = DopplerFilter::new(
            32,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        // Target at bin 8 of 32: normalized Doppler 8/32.
        let cube = phasor_cube(dims, 8.0 / 32.0);
        let out = df.filter_easy(&cube);
        assert_eq!(out.staggers(), 1);
        assert_eq!(out.bins(), 32);
        let spectrum: Vec<f64> = (0..32).map(|b| out.get(0, b, 0, 0).norm_sqr() as f64).collect();
        let (peak, _) = argmax(&spectrum).unwrap();
        assert_eq!(peak, 8);
    }

    #[test]
    fn staggered_filter_produces_two_consistent_staggers() {
        let dims = CubeDims::new(16, 1, 1);
        let df = DopplerFilter::new(
            16,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        let cube = phasor_cube(dims, 0.25);
        let out = df.filter_staggered(&cube);
        assert_eq!(out.staggers(), 2);
        // Both staggers see the same tone; their peak bins agree and their
        // magnitudes match (the segments are the same length).
        let s0: Vec<f64> = (0..16).map(|b| out.get(0, b, 0, 0).norm_sqr() as f64).collect();
        let s1: Vec<f64> = (0..16).map(|b| out.get(1, b, 0, 0).norm_sqr() as f64).collect();
        assert_eq!(argmax(&s0).unwrap().0, argmax(&s1).unwrap().0);
        let (b0, m0) = argmax(&s0).unwrap();
        assert!((m0 - s1[b0]).abs() < 1e-3 * m0);
    }

    #[test]
    fn stagger_phase_relationship_encodes_doppler() {
        // For a pure tone, stagger 1 lags stagger 0 by exactly the
        // per-PRI Doppler phase 2π·f̄ — the property hard beamforming
        // exploits.
        let dims = CubeDims::new(16, 1, 1);
        let fd = 3.0 / 16.0;
        let df = DopplerFilter::new(
            16,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        let cube = phasor_cube(dims, fd);
        let out = df.filter_staggered(&cube);
        let b = 3;
        let z0 = out.get(0, b, 0, 0);
        let z1 = out.get(1, b, 0, 0);
        let measured = (z1 * z0.conj()).arg();
        let expect = 2.0 * std::f32::consts::PI * fd;
        let diff = (measured - expect).rem_euclid(2.0 * std::f32::consts::PI);
        let diff = diff.min(2.0 * std::f32::consts::PI - diff);
        assert!(diff < 1e-3, "phase diff {measured} vs {expect}");
    }

    #[test]
    fn non_pow2_pulse_counts_are_zero_padded() {
        let dims = CubeDims::new(12, 1, 1);
        let df = DopplerFilter::new(12, DopplerConfig::default());
        assert_eq!(df.bins(), 16);
        let cube = DataCube::zeros(dims);
        let out = df.filter_easy(&cube);
        assert_eq!(out.bins(), 16);
    }

    #[test]
    fn bin_class_splits_around_zero_doppler() {
        let bc = BinClass { hard_fraction: 0.5 };
        let hard = bc.hard_bins(16);
        // 8 hard bins centred (circularly) on bin 0.
        assert_eq!(hard.len(), 8);
        assert!(bc.is_hard(0, 16));
        assert!(bc.is_hard(15, 16));
        assert!(!bc.is_hard(8, 16));
        let easy = bc.easy_bins(16);
        assert_eq!(easy.len(), 8);
        let mut all: Vec<usize> = hard.into_iter().chain(easy).collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn bin_class_extremes() {
        let none = BinClass { hard_fraction: 0.0 };
        assert!(none.hard_bins(8).is_empty());
        let all = BinClass { hard_fraction: 1.0 };
        assert_eq!(all.hard_bins(8).len(), 8);
    }

    #[test]
    #[should_panic(expected = "stagger offset")]
    fn oversized_stagger_rejected() {
        DopplerFilter::new(4, DopplerConfig { stagger_offset: 4, ..Default::default() });
    }

    #[test]
    fn windowed_filter_reduces_sidelobes() {
        let dims = CubeDims::new(64, 1, 1);
        // Off-bin tone: the rectangular window then leaks hard (Dirichlet
        // sidelobes), which the Hamming taper must suppress.
        let cube = phasor_cube(dims, 16.5 / 64.0);
        let rect = DopplerFilter::new(
            64,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        )
        .filter_easy(&cube);
        let ham =
            DopplerFilter::new(64, DopplerConfig { window: Window::Hamming, ..Default::default() })
                .filter_easy(&cube);
        // Compare far-sidelobe energy (≈5.5 bins out) to the peak:
        // Hamming must be lower than rectangular.
        let ratio = |dc: &DopplerCube| {
            let peak = dc.get(0, 16, 0, 0).norm_sqr().max(dc.get(0, 17, 0, 0).norm_sqr());
            dc.get(0, 22, 0, 0).norm_sqr() / peak
        };
        assert!(ratio(&ham) < ratio(&rect));
    }
}
