//! Doppler filtering — the pipeline's first compute task.
//!
//! For the *easy* path a single windowed FFT across the full pulse train
//! converts each (channel, range) pulse sequence into Doppler bins. For the
//! *hard* path (the modified PRI-staggered post-Doppler algorithm of the
//! paper) two pulse segments offset by one PRI are each windowed and
//! FFT-filtered, yielding two staggered Doppler cubes whose per-bin channel
//! vectors are later combined adaptively by the hard weight/beamforming
//! tasks.

use crate::cube::{DataCube, DopplerCube};
use crate::path::KernelPath;
use stap_math::fft::next_pow2;
use stap_math::window::Window;
use stap_math::{FftPlan, C32};

/// Range-gate lane count per blocked panel. 32 lanes keep a 128-bin panel
/// at 32 KiB — L1-resident on anything the paper targets — while giving the
/// autovectorizer full-width contiguous lane loops.
const RANGE_BLOCK: usize = 32;

/// Classification of Doppler bins into easy and hard processing cases.
///
/// Hard bins sit inside the clutter notch around zero Doppler (where the
/// two-stagger adaptive nulling is required); the rest are easy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinClass {
    /// Fraction of bins (centred on zero Doppler, wrapping) that are hard.
    pub hard_fraction: f64,
}

impl Default for BinClass {
    fn default() -> Self {
        // Half the bins hard: gives the hard tasks the dominant share of the
        // pipeline workload, matching the paper's per-task time tables.
        Self { hard_fraction: 0.5 }
    }
}

impl BinClass {
    /// Returns `true` when Doppler bin `b` (of `nbins`) is a hard bin.
    ///
    /// Exactly `round(hard_fraction · nbins)` bins are hard: the ones
    /// closest (circularly) to bin 0, i.e. closest to zero Doppler, with the
    /// positive-Doppler side winning ties.
    pub fn is_hard(&self, b: usize, nbins: usize) -> bool {
        if nbins == 0 || b >= nbins {
            return false;
        }
        let target = (self.hard_fraction * nbins as f64).round() as usize;
        let target = target.min(nbins);
        if target == 0 {
            return false;
        }
        let dist = b.min(nbins - b); // circular distance from bin 0
                                     // Number of bins strictly closer than `dist`: ring 0 has one member,
                                     // every other full ring has two.
        let closer = if dist == 0 { 0 } else { 2 * dist - 1 };
        if closer >= target {
            return false;
        }
        if closer + ring_size(dist, nbins) <= target {
            return true;
        }
        // Partial ring: the positive-Doppler member (lower bin index) wins.
        b == dist
    }

    /// The list of hard bin indices.
    pub fn hard_bins(&self, nbins: usize) -> Vec<usize> {
        (0..nbins).filter(|&b| self.is_hard(b, nbins)).collect()
    }

    /// The list of easy bin indices.
    pub fn easy_bins(&self, nbins: usize) -> Vec<usize> {
        (0..nbins).filter(|&b| !self.is_hard(b, nbins)).collect()
    }
}

/// Number of bins at circular distance `dist` from bin 0 in an
/// `nbins`-point spectrum (1 for the poles, 2 otherwise).
fn ring_size(dist: usize, nbins: usize) -> usize {
    if dist == 0 || 2 * dist == nbins {
        1
    } else {
        2
    }
}

/// Configuration of the Doppler filter task.
#[derive(Debug, Clone)]
pub struct DopplerConfig {
    /// Taper window applied to each pulse train before the FFT.
    pub window: Window,
    /// PRI offset between the two staggered segments (usually 1).
    pub stagger_offset: usize,
    /// Bin classification shared with the weight/beamforming tasks.
    pub bins: BinClass,
}

impl Default for DopplerConfig {
    fn default() -> Self {
        Self { window: Window::Hamming, stagger_offset: 1, bins: BinClass::default() }
    }
}

/// Planned Doppler filter for a fixed cube geometry.
#[derive(Debug)]
pub struct DopplerFilter {
    config: DopplerConfig,
    pulses: usize,
    fft_len: usize,
    plan: FftPlan<f32>,
    window_full: Vec<f32>,
    window_seg: Vec<f32>,
}

impl DopplerFilter {
    /// Builds a filter for cubes with `pulses` PRIs.
    ///
    /// # Panics
    /// Panics when `stagger_offset >= pulses`.
    pub fn new(pulses: usize, config: DopplerConfig) -> Self {
        assert!(
            config.stagger_offset < pulses,
            "stagger offset {} must be < pulses {}",
            config.stagger_offset,
            pulses
        );
        let fft_len = next_pow2(pulses);
        let seg_len = pulses - config.stagger_offset;
        Self {
            plan: FftPlan::new(fft_len),
            window_full: config.window.coefficients(pulses),
            window_seg: config.window.coefficients(seg_len),
            config,
            pulses,
            fft_len,
        }
    }

    /// Number of Doppler bins produced (the zero-padded FFT length).
    pub fn bins(&self) -> usize {
        self.fft_len
    }

    /// The configured bin classification.
    pub fn bin_class(&self) -> BinClass {
        self.config.bins
    }

    /// Easy-path filtering: one windowed FFT over the full pulse train for
    /// every (channel, range). Output stagger count is 1.
    pub fn filter_easy(&self, cube: &DataCube) -> DopplerCube {
        self.filter_easy_with(cube, KernelPath::Auto)
    }

    /// [`DopplerFilter::filter_easy`] with an explicit kernel path.
    pub fn filter_easy_with(&self, cube: &DataCube, path: KernelPath) -> DopplerCube {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        let mut out = DopplerCube::zeros(1, self.fft_len, d.channels, d.ranges);
        match path.resolve() {
            KernelPath::Reference => self.filter_easy_ref(cube, &mut out),
            _ => self.filter_easy_into(cube, &mut out, 0, d.ranges),
        }
        out
    }

    /// Blocked easy-path filtering of range gates `[r0, r1)` into `out` —
    /// the chunk-level entry the work-stealing executor schedules. `out`
    /// must cover the full cube geometry; gates outside `[r0, r1)` are left
    /// untouched. Bit-identical to the scalar reference: the panel FFT runs
    /// every range-gate lane through the exact scalar butterfly sequence.
    ///
    /// # Panics
    /// Panics when the cube/output geometry disagrees with the plan or the
    /// gate interval is out of bounds.
    pub fn filter_easy_into(&self, cube: &DataCube, out: &mut DopplerCube, r0: usize, r1: usize) {
        assert_eq!(out.ranges(), cube.dims().ranges, "output range extent differs from cube");
        self.filter_easy_span(cube, out, r0, r1, 0);
    }

    /// Easy-path filtering of gates `[r0, r1)` into a *compact* cube of
    /// `r1 - r0` gates — the owned-output form the work-stealing executor's
    /// items return (stitch with [`DopplerCube::copy_range_from`]).
    pub fn filter_easy_chunk(&self, cube: &DataCube, r0: usize, r1: usize) -> DopplerCube {
        let d = cube.dims();
        let mut out = DopplerCube::zeros(1, self.fft_len, d.channels, r1 - r0);
        self.filter_easy_span(cube, &mut out, r0, r1, r0);
        out
    }

    /// Shared blocked easy path: gates `[r0, r1)` of `cube`, written to
    /// `out` at range offset `b0 - out_base` (0 for full-size outputs,
    /// `r0` for compact chunks).
    fn filter_easy_span(
        &self,
        cube: &DataCube,
        out: &mut DopplerCube,
        r0: usize,
        r1: usize,
        out_base: usize,
    ) {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        assert_eq!(out.staggers(), 1, "easy output must have one stagger");
        assert_eq!(out.bins(), self.fft_len, "output bin count differs from plan");
        assert_eq!(out.channels(), d.channels, "output channel count differs from cube");
        assert!(r0 <= r1 && r1 <= d.ranges, "invalid gate interval {r0}..{r1}");
        assert!(out_base <= r0 && r1 - out_base <= out.ranges(), "output too small for interval");
        let mut panel = vec![C32::zero(); self.fft_len * RANGE_BLOCK.min((r1 - r0).max(1))];
        let mut b0 = r0;
        while b0 < r1 {
            let lanes = RANGE_BLOCK.min(r1 - b0);
            let o0 = b0 - out_base;
            let panel = &mut panel[..self.fft_len * lanes];
            for c in 0..d.channels {
                // Gather: cube rows at fixed (p, c) are contiguous in range,
                // so each panel row is one windowed streaming copy.
                let src_all = cube.as_slice();
                for p in 0..self.pulses {
                    let base = (p * d.channels + c) * d.ranges + b0;
                    let src = &src_all[base..base + lanes];
                    let dst = &mut panel[p * lanes..(p + 1) * lanes];
                    let w = self.window_full[p];
                    for (dv, sv) in dst.iter_mut().zip(src.iter()) {
                        *dv = sv.scale(w);
                    }
                }
                for v in panel.iter_mut().skip(self.pulses * lanes) {
                    *v = C32::zero();
                }
                self.plan.forward_multi(panel, lanes);
                // Scatter: output rows at fixed (bin, c) are contiguous too.
                for b in 0..self.fft_len {
                    out.row_mut(0, b, c)[o0..o0 + lanes]
                        .copy_from_slice(&panel[b * lanes..(b + 1) * lanes]);
                }
            }
            b0 += lanes;
        }
    }

    /// Scalar reference easy path: per-(channel, range) gather + FFT, the
    /// original naive loop kept as the correctness and bench baseline.
    #[allow(clippy::needless_range_loop)] // gathers strided cube samples into a dense FFT buffer
    fn filter_easy_ref(&self, cube: &DataCube, out: &mut DopplerCube) {
        let d = cube.dims();
        let mut buf = vec![C32::zero(); self.fft_len];
        for c in 0..d.channels {
            for r in 0..d.ranges {
                for p in 0..self.pulses {
                    buf[p] = cube.get(p, c, r).scale(self.window_full[p]);
                }
                for v in buf.iter_mut().skip(self.pulses) {
                    *v = C32::zero();
                }
                self.plan.forward(&mut buf);
                for (b, &v) in buf.iter().enumerate() {
                    *out.get_mut(0, b, c, r) = v;
                }
            }
        }
    }

    /// Hard-path (PRI-staggered) filtering: two windowed FFTs over the pulse
    /// segments `[0, P-s)` and `[s, P)`. Output stagger count is 2.
    pub fn filter_staggered(&self, cube: &DataCube) -> DopplerCube {
        self.filter_staggered_with(cube, KernelPath::Auto)
    }

    /// [`DopplerFilter::filter_staggered`] with an explicit kernel path.
    pub fn filter_staggered_with(&self, cube: &DataCube, path: KernelPath) -> DopplerCube {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        let mut out = DopplerCube::zeros(2, self.fft_len, d.channels, d.ranges);
        match path.resolve() {
            KernelPath::Reference => self.filter_staggered_ref(cube, &mut out),
            _ => self.filter_staggered_into(cube, &mut out, 0, d.ranges),
        }
        out
    }

    /// Blocked staggered filtering of range gates `[r0, r1)` into `out` —
    /// the chunk-level entry the work-stealing executor schedules.
    ///
    /// # Panics
    /// Panics when the cube/output geometry disagrees with the plan or the
    /// gate interval is out of bounds.
    pub fn filter_staggered_into(
        &self,
        cube: &DataCube,
        out: &mut DopplerCube,
        r0: usize,
        r1: usize,
    ) {
        assert_eq!(out.ranges(), cube.dims().ranges, "output range extent differs from cube");
        self.filter_staggered_span(cube, out, r0, r1, 0);
    }

    /// Staggered filtering of gates `[r0, r1)` into a *compact* cube of
    /// `r1 - r0` gates — the owned-output form the work-stealing executor's
    /// items return (stitch with [`DopplerCube::copy_range_from`]).
    pub fn filter_staggered_chunk(&self, cube: &DataCube, r0: usize, r1: usize) -> DopplerCube {
        let d = cube.dims();
        let mut out = DopplerCube::zeros(2, self.fft_len, d.channels, r1 - r0);
        self.filter_staggered_span(cube, &mut out, r0, r1, r0);
        out
    }

    /// Shared blocked staggered path (see [`Self::filter_easy_span`]).
    fn filter_staggered_span(
        &self,
        cube: &DataCube,
        out: &mut DopplerCube,
        r0: usize,
        r1: usize,
        out_base: usize,
    ) {
        let d = cube.dims();
        assert_eq!(d.pulses, self.pulses, "cube pulse count differs from plan");
        assert_eq!(out.staggers(), 2, "staggered output must have two staggers");
        assert_eq!(out.bins(), self.fft_len, "output bin count differs from plan");
        assert_eq!(out.channels(), d.channels, "output channel count differs from cube");
        assert!(r0 <= r1 && r1 <= d.ranges, "invalid gate interval {r0}..{r1}");
        assert!(out_base <= r0 && r1 - out_base <= out.ranges(), "output too small for interval");
        let s = self.config.stagger_offset;
        let seg = self.pulses - s;
        let mut panel = vec![C32::zero(); self.fft_len * RANGE_BLOCK.min((r1 - r0).max(1))];
        let mut b0 = r0;
        while b0 < r1 {
            let lanes = RANGE_BLOCK.min(r1 - b0);
            let o0 = b0 - out_base;
            let panel = &mut panel[..self.fft_len * lanes];
            for c in 0..d.channels {
                for (stagger, start) in [(0usize, 0usize), (1, s)] {
                    let src_all = cube.as_slice();
                    for k in 0..seg {
                        let base = ((start + k) * d.channels + c) * d.ranges + b0;
                        let src = &src_all[base..base + lanes];
                        let dst = &mut panel[k * lanes..(k + 1) * lanes];
                        let w = self.window_seg[k];
                        for (dv, sv) in dst.iter_mut().zip(src.iter()) {
                            *dv = sv.scale(w);
                        }
                    }
                    for v in panel.iter_mut().skip(seg * lanes) {
                        *v = C32::zero();
                    }
                    self.plan.forward_multi(panel, lanes);
                    for b in 0..self.fft_len {
                        out.row_mut(stagger, b, c)[o0..o0 + lanes]
                            .copy_from_slice(&panel[b * lanes..(b + 1) * lanes]);
                    }
                }
            }
            b0 += lanes;
        }
    }

    /// Scalar reference staggered path (the original naive loop).
    #[allow(clippy::needless_range_loop)] // gathers strided cube samples into a dense FFT buffer
    fn filter_staggered_ref(&self, cube: &DataCube, out: &mut DopplerCube) {
        let d = cube.dims();
        let s = self.config.stagger_offset;
        let seg = self.pulses - s;
        let mut buf = vec![C32::zero(); self.fft_len];
        for c in 0..d.channels {
            for r in 0..d.ranges {
                for (stagger, start) in [(0usize, 0usize), (1, s)] {
                    for k in 0..seg {
                        buf[k] = cube.get(start + k, c, r).scale(self.window_seg[k]);
                    }
                    for v in buf.iter_mut().skip(seg) {
                        *v = C32::zero();
                    }
                    self.plan.forward(&mut buf);
                    for (b, &v) in buf.iter().enumerate() {
                        *out.get_mut(stagger, b, c, r) = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeDims;
    use stap_math::stats::argmax;

    /// A cube with a single target: constant Doppler phasor across pulses.
    fn phasor_cube(dims: CubeDims, norm_doppler: f32) -> DataCube {
        let mut cube = DataCube::zeros(dims);
        for p in 0..dims.pulses {
            let z = C32::cis(2.0 * std::f32::consts::PI * norm_doppler * p as f32);
            for c in 0..dims.channels {
                for r in 0..dims.ranges {
                    *cube.get_mut(p, c, r) = z;
                }
            }
        }
        cube
    }

    #[test]
    fn easy_filter_localizes_doppler_tone() {
        let dims = CubeDims::new(32, 2, 3);
        let df = DopplerFilter::new(
            32,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        // Target at bin 8 of 32: normalized Doppler 8/32.
        let cube = phasor_cube(dims, 8.0 / 32.0);
        let out = df.filter_easy(&cube);
        assert_eq!(out.staggers(), 1);
        assert_eq!(out.bins(), 32);
        let spectrum: Vec<f64> = (0..32).map(|b| out.get(0, b, 0, 0).norm_sqr() as f64).collect();
        let (peak, _) = argmax(&spectrum).unwrap();
        assert_eq!(peak, 8);
    }

    #[test]
    fn staggered_filter_produces_two_consistent_staggers() {
        let dims = CubeDims::new(16, 1, 1);
        let df = DopplerFilter::new(
            16,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        let cube = phasor_cube(dims, 0.25);
        let out = df.filter_staggered(&cube);
        assert_eq!(out.staggers(), 2);
        // Both staggers see the same tone; their peak bins agree and their
        // magnitudes match (the segments are the same length).
        let s0: Vec<f64> = (0..16).map(|b| out.get(0, b, 0, 0).norm_sqr() as f64).collect();
        let s1: Vec<f64> = (0..16).map(|b| out.get(1, b, 0, 0).norm_sqr() as f64).collect();
        assert_eq!(argmax(&s0).unwrap().0, argmax(&s1).unwrap().0);
        let (b0, m0) = argmax(&s0).unwrap();
        assert!((m0 - s1[b0]).abs() < 1e-3 * m0);
    }

    #[test]
    fn stagger_phase_relationship_encodes_doppler() {
        // For a pure tone, stagger 1 lags stagger 0 by exactly the
        // per-PRI Doppler phase 2π·f̄ — the property hard beamforming
        // exploits.
        let dims = CubeDims::new(16, 1, 1);
        let fd = 3.0 / 16.0;
        let df = DopplerFilter::new(
            16,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        );
        let cube = phasor_cube(dims, fd);
        let out = df.filter_staggered(&cube);
        let b = 3;
        let z0 = out.get(0, b, 0, 0);
        let z1 = out.get(1, b, 0, 0);
        let measured = (z1 * z0.conj()).arg();
        let expect = 2.0 * std::f32::consts::PI * fd;
        let diff = (measured - expect).rem_euclid(2.0 * std::f32::consts::PI);
        let diff = diff.min(2.0 * std::f32::consts::PI - diff);
        assert!(diff < 1e-3, "phase diff {measured} vs {expect}");
    }

    #[test]
    fn non_pow2_pulse_counts_are_zero_padded() {
        let dims = CubeDims::new(12, 1, 1);
        let df = DopplerFilter::new(12, DopplerConfig::default());
        assert_eq!(df.bins(), 16);
        let cube = DataCube::zeros(dims);
        let out = df.filter_easy(&cube);
        assert_eq!(out.bins(), 16);
    }

    /// Deterministic pseudo-noise cube for differential checks.
    fn noise_cube(dims: CubeDims, seed: u64) -> DataCube {
        let mut cube = DataCube::zeros(dims);
        let mut state = seed | 1;
        for z in cube.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *z = C32::new(
                (state as u32 as f32 / u32::MAX as f32) - 0.5,
                ((state >> 32) as u32 as f32 / u32::MAX as f32) - 0.5,
            );
        }
        cube
    }

    fn assert_cubes_bit_equal(a: &DopplerCube, b: &DopplerCube) {
        assert_eq!(a.as_slice().len(), b.as_slice().len());
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re differs at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im differs at {i}");
        }
    }

    #[test]
    fn blocked_easy_filter_is_bit_identical_to_reference() {
        // 45 ranges: not a multiple of the 32-lane block, exercising the tail.
        let dims = CubeDims::new(12, 3, 45);
        let cube = noise_cube(dims, 0x5EED);
        let df = DopplerFilter::new(12, DopplerConfig::default());
        let reference = df.filter_easy_with(&cube, KernelPath::Reference);
        let blocked = df.filter_easy_with(&cube, KernelPath::Blocked);
        assert_cubes_bit_equal(&reference, &blocked);
    }

    #[test]
    fn blocked_staggered_filter_is_bit_identical_to_reference() {
        let dims = CubeDims::new(16, 2, 37);
        let cube = noise_cube(dims, 0xBEEF);
        let df = DopplerFilter::new(16, DopplerConfig::default());
        let reference = df.filter_staggered_with(&cube, KernelPath::Reference);
        let blocked = df.filter_staggered_with(&cube, KernelPath::Blocked);
        assert_cubes_bit_equal(&reference, &blocked);
    }

    #[test]
    fn chunked_intervals_compose_to_full_filter() {
        let dims = CubeDims::new(8, 2, 21);
        let cube = noise_cube(dims, 0xF00D);
        let df = DopplerFilter::new(8, DopplerConfig::default());
        let full = df.filter_easy_with(&cube, KernelPath::Blocked);
        let mut stitched = DopplerCube::zeros(1, df.bins(), 2, 21);
        for (r0, r1) in [(0usize, 7usize), (7, 16), (16, 21)] {
            df.filter_easy_into(&cube, &mut stitched, r0, r1);
        }
        assert_cubes_bit_equal(&full, &stitched);
        let full_s = df.filter_staggered_with(&cube, KernelPath::Blocked);
        let mut stitched_s = DopplerCube::zeros(2, df.bins(), 2, 21);
        for (r0, r1) in [(0usize, 5usize), (5, 21)] {
            df.filter_staggered_into(&cube, &mut stitched_s, r0, r1);
        }
        assert_cubes_bit_equal(&full_s, &stitched_s);
    }

    #[test]
    fn compact_chunks_stitch_to_full_filter() {
        let dims = CubeDims::new(12, 2, 50);
        let cube = noise_cube(dims, 0xC0FFEE);
        let df = DopplerFilter::new(12, DopplerConfig::default());
        let full = df.filter_easy_with(&cube, KernelPath::Blocked);
        let mut stitched = DopplerCube::zeros(1, df.bins(), 2, 50);
        for (r0, r1) in [(0usize, 33usize), (33, 41), (41, 50)] {
            let chunk = df.filter_easy_chunk(&cube, r0, r1);
            stitched.copy_range_from(&chunk, r0);
        }
        assert_cubes_bit_equal(&full, &stitched);
        let full_s = df.filter_staggered_with(&cube, KernelPath::Blocked);
        let mut stitched_s = DopplerCube::zeros(2, df.bins(), 2, 50);
        for (r0, r1) in [(0usize, 17usize), (17, 50)] {
            let chunk = df.filter_staggered_chunk(&cube, r0, r1);
            stitched_s.copy_range_from(&chunk, r0);
        }
        assert_cubes_bit_equal(&full_s, &stitched_s);
    }

    #[test]
    fn bin_class_splits_around_zero_doppler() {
        let bc = BinClass { hard_fraction: 0.5 };
        let hard = bc.hard_bins(16);
        // 8 hard bins centred (circularly) on bin 0.
        assert_eq!(hard.len(), 8);
        assert!(bc.is_hard(0, 16));
        assert!(bc.is_hard(15, 16));
        assert!(!bc.is_hard(8, 16));
        let easy = bc.easy_bins(16);
        assert_eq!(easy.len(), 8);
        let mut all: Vec<usize> = hard.into_iter().chain(easy).collect();
        all.sort_unstable();
        assert_eq!(all, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn bin_class_extremes() {
        let none = BinClass { hard_fraction: 0.0 };
        assert!(none.hard_bins(8).is_empty());
        let all = BinClass { hard_fraction: 1.0 };
        assert_eq!(all.hard_bins(8).len(), 8);
    }

    #[test]
    #[should_panic(expected = "stagger offset")]
    fn oversized_stagger_rejected() {
        DopplerFilter::new(4, DopplerConfig { stagger_offset: 4, ..Default::default() });
    }

    #[test]
    fn windowed_filter_reduces_sidelobes() {
        let dims = CubeDims::new(64, 1, 1);
        // Off-bin tone: the rectangular window then leaks hard (Dirichlet
        // sidelobes), which the Hamming taper must suppress.
        let cube = phasor_cube(dims, 16.5 / 64.0);
        let rect = DopplerFilter::new(
            64,
            DopplerConfig { window: Window::Rectangular, ..Default::default() },
        )
        .filter_easy(&cube);
        let ham =
            DopplerFilter::new(64, DopplerConfig { window: Window::Hamming, ..Default::default() })
                .filter_easy(&cube);
        // Compare far-sidelobe energy (≈5.5 bins out) to the peak:
        // Hamming must be lower than rectangular.
        let ratio = |dc: &DopplerCube| {
            let peak = dc.get(0, 16, 0, 0).norm_sqr().max(dc.get(0, 17, 0, 0).norm_sqr());
            dc.get(0, 22, 0, 0).norm_sqr() / peak
        };
        assert!(ratio(&ham) < ratio(&rect));
    }
}
