//! Detection reports — the pipeline's output ("a report on the detection of
//! possible targets" per CPI).

use crate::cfar::Detection;

/// All detections from one CPI, with provenance.
#[derive(Debug, Clone, Default)]
pub struct DetectionReport {
    /// Sequence number of the CPI this report covers.
    pub cpi: u64,
    /// Detections, unordered.
    pub detections: Vec<Detection>,
}

impl DetectionReport {
    /// Creates an empty report for a CPI.
    pub fn new(cpi: u64) -> Self {
        Self { cpi, detections: Vec::new() }
    }

    /// Number of detections.
    pub fn len(&self) -> usize {
        self.detections.len()
    }

    /// True when no detection was made.
    pub fn is_empty(&self) -> bool {
        self.detections.is_empty()
    }

    /// Merges another partial report (e.g. from another CFAR node) into this
    /// one.
    ///
    /// # Panics
    /// Panics when the CPI sequence numbers differ.
    pub fn merge(&mut self, other: DetectionReport) {
        assert_eq!(self.cpi, other.cpi, "cannot merge reports of different CPIs");
        self.detections.extend(other.detections);
    }

    /// The strongest detection, if any.
    pub fn strongest(&self) -> Option<&Detection> {
        self.detections
            .iter()
            .max_by(|a, b| a.snr_db.partial_cmp(&b.snr_db).expect("snr is finite"))
    }

    /// Collapses detections that are adjacent in range within the same
    /// (beam, bin) into their locally strongest cell — the classic
    /// "cluster then take the centroid" post-CFAR step.
    pub fn cluster(&self, range_window: usize) -> DetectionReport {
        let mut sorted = self.detections.clone();
        sorted.sort_by_key(|a| (a.beam, a.bin, a.range));
        let mut out: Vec<Detection> = Vec::new();
        for d in sorted {
            match out.last_mut() {
                Some(last)
                    if last.beam == d.beam
                        && last.bin == d.bin
                        && d.range.saturating_sub(last.range) <= range_window =>
                {
                    if d.snr_db > last.snr_db {
                        *last = d;
                    }
                }
                _ => out.push(d),
            }
        }
        DetectionReport { cpi: self.cpi, detections: out }
    }
}

impl DetectionReport {
    /// Serializes to a compact little-endian binary record — the format the
    /// pipeline's output task writes to the parallel file system
    /// (`u64` CPI, `u32` count, then per detection `3×u32 + 3×f64`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.detections.len() * 36);
        out.extend_from_slice(&self.cpi.to_le_bytes());
        out.extend_from_slice(&(self.detections.len() as u32).to_le_bytes());
        for d in &self.detections {
            out.extend_from_slice(&(d.beam as u32).to_le_bytes());
            out.extend_from_slice(&(d.bin as u32).to_le_bytes());
            out.extend_from_slice(&(d.range as u32).to_le_bytes());
            out.extend_from_slice(&d.power.to_le_bytes());
            out.extend_from_slice(&d.noise.to_le_bytes());
            out.extend_from_slice(&d.snr_db.to_le_bytes());
        }
        out
    }

    /// Deserializes a record produced by [`Self::to_bytes`]. Returns `None`
    /// on any structural mismatch.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let cpi = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let count = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        if bytes.len() != 12 + count * 36 {
            return None;
        }
        let mut detections = Vec::with_capacity(count);
        for k in 0..count {
            let at = 12 + k * 36;
            let u = |i: usize| -> Option<usize> {
                Some(u32::from_le_bytes(bytes[at + i..at + i + 4].try_into().ok()?) as usize)
            };
            let f = |i: usize| -> Option<f64> {
                Some(f64::from_le_bytes(bytes[at + i..at + i + 8].try_into().ok()?))
            };
            detections.push(Detection {
                beam: u(0)?,
                bin: u(4)?,
                range: u(8)?,
                power: f(12)?,
                noise: f(20)?,
                snr_db: f(28)?,
            });
        }
        Some(Self { cpi, detections })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(beam: usize, bin: usize, range: usize, snr_db: f64) -> Detection {
        Detection { beam, bin, range, power: 10f64.powf(snr_db / 10.0), noise: 1.0, snr_db }
    }

    #[test]
    fn merge_concatenates_same_cpi() {
        let mut a = DetectionReport::new(3);
        a.detections.push(det(0, 0, 10, 20.0));
        let mut b = DetectionReport::new(3);
        b.detections.push(det(1, 2, 30, 15.0));
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different CPIs")]
    fn merge_rejects_cpi_mismatch() {
        let mut a = DetectionReport::new(1);
        a.merge(DetectionReport::new(2));
    }

    #[test]
    fn strongest_picks_max_snr() {
        let mut r = DetectionReport::new(0);
        r.detections.push(det(0, 0, 5, 12.0));
        r.detections.push(det(0, 1, 9, 31.0));
        r.detections.push(det(1, 0, 2, 8.0));
        assert_eq!(r.strongest().unwrap().range, 9);
        assert!(DetectionReport::new(0).strongest().is_none());
    }

    #[test]
    fn cluster_collapses_adjacent_ranges() {
        let mut r = DetectionReport::new(0);
        r.detections.push(det(0, 4, 100, 18.0));
        r.detections.push(det(0, 4, 101, 25.0)); // same cluster, stronger
        r.detections.push(det(0, 4, 102, 20.0)); // same cluster
        r.detections.push(det(0, 4, 200, 15.0)); // separate
        r.detections.push(det(1, 4, 101, 22.0)); // different beam
        let c = r.cluster(2);
        assert_eq!(c.len(), 3);
        let main =
            c.detections.iter().find(|d| d.beam == 0 && (100..=102).contains(&d.range)).unwrap();
        assert_eq!(main.range, 101);
    }

    #[test]
    fn empty_report_properties() {
        let r = DetectionReport::new(7);
        assert!(r.is_empty());
        assert_eq!(r.cluster(3).len(), 0);
    }

    #[test]
    fn bytes_round_trip() {
        let mut r = DetectionReport::new(42);
        r.detections.push(det(1, 17, 300, 23.5));
        r.detections.push(det(0, 2, 11, -1.25));
        let bytes = r.to_bytes();
        assert_eq!(bytes.len(), 12 + 2 * 36);
        let back = DetectionReport::from_bytes(&bytes).unwrap();
        assert_eq!(back.cpi, 42);
        assert_eq!(back.detections, r.detections);
    }

    #[test]
    fn empty_report_serializes() {
        let r = DetectionReport::new(0);
        let back = DetectionReport::from_bytes(&r.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(DetectionReport::from_bytes(&[0u8; 5]).is_none());
        // Count claims 2 detections but payload holds none.
        let mut bytes = DetectionReport::new(1).to_bytes();
        bytes[8] = 2;
        assert!(DetectionReport::from_bytes(&bytes).is_none());
    }
}
