//! CFAR detection — the pipeline's final task.
//!
//! Cell-averaging CFAR along range for every (beam, Doppler-bin) row:
//! the noise level at each cell under test is estimated from leading and
//! lagging training windows (excluding guard cells) and the cell declares a
//! detection when its power exceeds `α × noise`. GO- and SO-CFAR variants
//! are provided for clutter-edge and multi-target robustness.

use crate::beamform::BeamCube;
use stap_math::C32;

/// CFAR averaging variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfarKind {
    /// Cell-averaging: mean of both training windows.
    CellAveraging,
    /// Greatest-of: max of the two window means (clutter-edge robust).
    GreatestOf,
    /// Smallest-of: min of the two window means (multi-target robust).
    SmallestOf,
    /// Ordered-statistic: the k-th smallest training cell estimates the
    /// noise (robust to several interferers in the window). `k` is a
    /// fraction of the combined window size in `[0, 1]`; 0.75 is typical.
    OrderedStatistic(OsRank),
}

/// Rank parameter of OS-CFAR as a fraction of the training count, stored in
/// per-mille so the enum stays `Eq`/`Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OsRank(pub u16);

impl OsRank {
    /// From a fraction in `[0, 1]`.
    pub fn from_fraction(f: f64) -> Self {
        Self((f.clamp(0.0, 1.0) * 1000.0).round() as u16)
    }

    /// As a fraction.
    pub fn fraction(self) -> f64 {
        self.0 as f64 / 1000.0
    }
}

/// CFAR detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct CfarConfig {
    /// Training cells on each side of the cell under test.
    pub training: usize,
    /// Guard cells on each side (excluded from training).
    pub guard: usize,
    /// Desired probability of false alarm (sets the threshold factor).
    pub pfa: f64,
    /// Averaging variant.
    pub kind: CfarKind,
}

impl Default for CfarConfig {
    fn default() -> Self {
        Self { training: 16, guard: 2, pfa: 1e-6, kind: CfarKind::CellAveraging }
    }
}

impl CfarConfig {
    /// The CA-CFAR threshold multiplier for `n` training cells and the
    /// configured false-alarm rate: `α = n·(Pfa^(-1/n) − 1)` (exponential
    /// noise assumption).
    pub fn alpha(&self, n: usize) -> f64 {
        if n == 0 {
            return f64::INFINITY;
        }
        n as f64 * (self.pfa.powf(-1.0 / n as f64) - 1.0)
    }

    /// Checks that a row of `ranges` cells gives every cell under test at
    /// least one training cell.
    ///
    /// With `training == 0`, or with `ranges ≤ guard + 1` (so both windows
    /// fall off the row for every cell), CFAR can never estimate noise and
    /// every row silently yields zero detections — a configuration error
    /// that used to be indistinguishable from a genuinely quiet scene.
    ///
    /// # Errors
    /// [`CfarError::DegenerateWindow`] when the window cannot see any
    /// training cell.
    pub fn validate(&self, ranges: usize) -> Result<(), CfarError> {
        if self.training == 0 || ranges <= self.guard + 1 {
            return Err(CfarError::DegenerateWindow {
                training: self.training,
                guard: self.guard,
                ranges,
            });
        }
        Ok(())
    }
}

/// Typed failure of a CFAR pass over a beam cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfarError {
    /// The training/guard window is inconsistent with the row length:
    /// every cell under test would have an empty training window, so the
    /// detector would silently report nothing.
    DegenerateWindow {
        /// Configured training cells per side.
        training: usize,
        /// Configured guard cells per side.
        guard: usize,
        /// Range cells per row actually presented.
        ranges: usize,
    },
}

impl std::fmt::Display for CfarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CfarError::DegenerateWindow { training, guard, ranges } => write!(
                f,
                "degenerate CFAR window: training={training}, guard={guard} can never see a \
                 training cell in {ranges}-gate rows"
            ),
        }
    }
}

impl std::error::Error for CfarError {}

/// A single CFAR detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Beam index.
    pub beam: usize,
    /// Doppler bin (the cube's bin label, not its index).
    pub bin: usize,
    /// Range gate.
    pub range: usize,
    /// Cell power.
    pub power: f64,
    /// Estimated noise level at the cell.
    pub noise: f64,
    /// Power-to-noise ratio in dB.
    pub snr_db: f64,
}

/// Runs CFAR on one power row, returning `(range, power, noise)` triples.
pub fn cfar_row(powers: &[f64], cfg: CfarConfig) -> Vec<(usize, f64, f64)> {
    let n = powers.len();
    let mut out = Vec::new();
    if n == 0 {
        return out;
    }
    for cut in 0..n {
        let mut lead_sum = 0.0;
        let mut lead_n = 0usize;
        let mut lag_sum = 0.0;
        let mut lag_n = 0usize;
        // Leading (lower-range) window.
        let lo_end = cut.saturating_sub(cfg.guard);
        let lo_start = lo_end.saturating_sub(cfg.training);
        for &p in &powers[lo_start..lo_end] {
            lead_sum += p;
            lead_n += 1;
        }
        // Lagging (higher-range) window.
        let hi_start = (cut + cfg.guard + 1).min(n);
        let hi_end = (hi_start + cfg.training).min(n);
        for &p in &powers[hi_start..hi_end] {
            lag_sum += p;
            lag_n += 1;
        }
        if lead_n + lag_n == 0 {
            continue;
        }
        let (noise, count) = match cfg.kind {
            CfarKind::CellAveraging => {
                ((lead_sum + lag_sum) / (lead_n + lag_n) as f64, lead_n + lag_n)
            }
            CfarKind::GreatestOf => {
                let lead = if lead_n > 0 { lead_sum / lead_n as f64 } else { f64::NEG_INFINITY };
                let lag = if lag_n > 0 { lag_sum / lag_n as f64 } else { f64::NEG_INFINITY };
                (lead.max(lag), lead_n.max(lag_n))
            }
            CfarKind::SmallestOf => {
                let lead = if lead_n > 0 { lead_sum / lead_n as f64 } else { f64::INFINITY };
                let lag = if lag_n > 0 { lag_sum / lag_n as f64 } else { f64::INFINITY };
                (lead.min(lag), lead_n.min(lag_n).max(1))
            }
            CfarKind::OrderedStatistic(rank) => {
                let mut cells: Vec<f64> = powers[lo_start..lo_end]
                    .iter()
                    .chain(&powers[hi_start..hi_end])
                    .copied()
                    .collect();
                cells.sort_by(|a, b| a.partial_cmp(b).expect("powers are finite"));
                let k = ((cells.len() as f64 - 1.0) * rank.fraction()).round() as usize;
                // The OS estimate of the mean from the k-th order statistic;
                // we reuse the CA threshold factor with the effective count,
                // a standard small-sample approximation.
                (cells[k.min(cells.len() - 1)], cells.len())
            }
        };
        let threshold = cfg.alpha(count) * noise;
        if powers[cut] > threshold && noise > 0.0 {
            out.push((cut, powers[cut], noise));
        }
    }
    out
}

/// Runs CFAR over every (beam, bin) row of a beam cube.
///
/// # Errors
/// [`CfarError::DegenerateWindow`] when the cube's range extent is
/// inconsistent with the configured window (no cell could ever be tested).
pub fn detect(cube: &BeamCube, cfg: CfarConfig) -> Result<Vec<Detection>, CfarError> {
    cfg.validate(cube.ranges)?;
    let mut dets = Vec::new();
    let mut powers = vec![0.0f64; cube.ranges];
    for beam in 0..cube.beams {
        for (bi, &bin) in cube.bins.iter().enumerate() {
            row_powers(cube.row(beam, bi), &mut powers);
            for (range, power, noise) in cfar_row(&powers, cfg) {
                dets.push(Detection {
                    beam,
                    bin,
                    range,
                    power,
                    noise,
                    snr_db: 10.0 * (power / noise).log10(),
                });
            }
        }
    }
    Ok(dets)
}

fn row_powers(row: &[C32], out: &mut [f64]) {
    for (o, z) in out.iter_mut().zip(row.iter()) {
        *o = z.norm_sqr() as f64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_row(n: usize, level: f64, seed: u64) -> Vec<f64> {
        // Deterministic exponential-ish noise via xorshift.
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state as f64 / u64::MAX as f64).clamp(1e-12, 1.0 - 1e-12);
                -level * u.ln()
            })
            .collect()
    }

    #[test]
    fn strong_target_in_noise_is_detected() {
        let mut row = noise_row(256, 1.0, 99);
        row[100] = 1000.0; // 30 dB target
        let dets = cfar_row(&row, CfarConfig::default());
        assert!(dets.iter().any(|&(r, _, _)| r == 100), "target missed: {dets:?}");
    }

    #[test]
    fn pure_noise_rarely_alarms() {
        let row = noise_row(4096, 1.0, 7);
        let dets = cfar_row(&row, CfarConfig { pfa: 1e-6, ..Default::default() });
        // With Pfa=1e-6 over 4096 cells, expect ≈0 alarms; allow a couple for
        // the finite-sample threshold approximation.
        assert!(dets.len() <= 2, "too many false alarms: {}", dets.len());
    }

    #[test]
    fn alpha_increases_as_pfa_decreases() {
        let tight = CfarConfig { pfa: 1e-8, ..Default::default() };
        let loose = CfarConfig { pfa: 1e-2, ..Default::default() };
        assert!(tight.alpha(32) > loose.alpha(32));
        assert_eq!(CfarConfig::default().alpha(0), f64::INFINITY);
    }

    #[test]
    fn guard_cells_shield_target_spread() {
        // A target with energy bleeding into adjacent cells must not raise
        // its own threshold when guards cover the bleed.
        let mut row = vec![1.0; 128];
        row[64] = 500.0;
        row[63] = 50.0;
        row[65] = 50.0;
        let cfg = CfarConfig { guard: 2, training: 8, pfa: 1e-4, kind: CfarKind::CellAveraging };
        let dets = cfar_row(&row, cfg);
        assert!(dets.iter().any(|&(r, _, _)| r == 64));
    }

    #[test]
    fn greatest_of_suppresses_clutter_edge() {
        // Step in noise level: cells just before the step see a low leading
        // window; GO-CFAR takes the max window and stays quiet.
        let mut row = vec![1.0; 64];
        for v in row.iter_mut().skip(32) {
            *v = 100.0;
        }
        let ca = cfar_row(
            &row,
            CfarConfig { kind: CfarKind::CellAveraging, pfa: 1e-3, training: 8, guard: 1 },
        );
        let go = cfar_row(
            &row,
            CfarConfig { kind: CfarKind::GreatestOf, pfa: 1e-3, training: 8, guard: 1 },
        );
        assert!(go.len() <= ca.len(), "GO should not alarm more than CA at an edge");
    }

    #[test]
    fn smallest_of_recovers_masked_target() {
        // Two close targets: CA training contaminated by the second target,
        // SO takes the cleaner window.
        let mut row = vec![1.0; 128];
        row[60] = 300.0;
        row[70] = 300.0;
        let cfg_so = CfarConfig { kind: CfarKind::SmallestOf, training: 8, guard: 2, pfa: 1e-4 };
        let so = cfar_row(&row, cfg_so);
        assert!(so.iter().any(|&(r, _, _)| r == 60));
        assert!(so.iter().any(|&(r, _, _)| r == 70));
    }

    #[test]
    fn os_cfar_detects_through_interferer_contamination() {
        // Four strong interferers inside the training window poison the CA
        // estimate; OS-CFAR's 0.75-rank cell ignores them.
        let mut row = vec![1.0; 128];
        row[64] = 120.0; // target under test
        for g in [54, 56, 72, 74] {
            row[g] = 500.0; // interferers in the training window
        }
        let os = CfarConfig {
            kind: CfarKind::OrderedStatistic(OsRank::from_fraction(0.75)),
            training: 12,
            guard: 2,
            pfa: 1e-4,
        };
        let ca = CfarConfig { kind: CfarKind::CellAveraging, ..os };
        let hits_os = cfar_row(&row, os);
        let hits_ca = cfar_row(&row, ca);
        assert!(hits_os.iter().any(|&(r, _, _)| r == 64), "OS missed the target");
        assert!(
            !hits_ca.iter().any(|&(r, _, _)| r == 64),
            "CA should be masked by the interferers here"
        );
    }

    #[test]
    fn os_rank_round_trips() {
        let r = OsRank::from_fraction(0.75);
        assert!((r.fraction() - 0.75).abs() < 1e-3);
        assert_eq!(OsRank::from_fraction(2.0).fraction(), 1.0);
        assert_eq!(OsRank::from_fraction(-1.0).fraction(), 0.0);
    }

    #[test]
    fn os_cfar_controls_false_alarms_on_noise() {
        let row = noise_row(4096, 1.0, 21);
        let os = CfarConfig {
            kind: CfarKind::OrderedStatistic(OsRank::from_fraction(0.75)),
            pfa: 1e-6,
            ..Default::default()
        };
        let dets = cfar_row(&row, os);
        assert!(dets.len() <= 4, "too many OS false alarms: {}", dets.len());
    }

    #[test]
    fn detect_labels_beam_and_bin() {
        let mut cube = BeamCube::zeros(vec![5, 9], 2, 64);
        let row = cube.row_mut(1, 1);
        for v in row.iter_mut() {
            *v = C32::new(1.0, 0.0);
        }
        row[30] = C32::new(40.0, 0.0);
        let dets = detect(&cube, CfarConfig { pfa: 1e-3, ..Default::default() }).unwrap();
        let hit = dets.iter().find(|d| d.range == 30).expect("detection expected");
        assert_eq!(hit.beam, 1);
        assert_eq!(hit.bin, 9);
        assert!(hit.snr_db > 20.0);
    }

    #[test]
    fn empty_row_yields_nothing() {
        assert!(cfar_row(&[], CfarConfig::default()).is_empty());
    }

    #[test]
    fn degenerate_window_is_a_typed_error_not_silence() {
        // training = 0: no cell can ever have a training window.
        let cube = BeamCube::zeros(vec![0, 1], 1, 64);
        let cfg = CfarConfig { training: 0, ..Default::default() };
        let err = detect(&cube, cfg).unwrap_err();
        assert!(matches!(err, CfarError::DegenerateWindow { training: 0, .. }));
        assert!(err.to_string().contains("degenerate CFAR window"));

        // Rows shorter than guard + 1: both windows fall off every cell.
        let short = BeamCube::zeros(vec![0], 1, 3);
        let cfg = CfarConfig { training: 16, guard: 2, ..Default::default() };
        assert!(matches!(
            detect(&short, cfg),
            Err(CfarError::DegenerateWindow { guard: 2, ranges: 3, .. })
        ));
        // One gate past the guard is enough to train somewhere.
        assert!(CfarConfig { training: 16, guard: 2, ..Default::default() }.validate(4).is_ok());
    }

    #[test]
    fn edge_cells_use_one_sided_training() {
        let mut row = vec![1.0; 64];
        row[0] = 200.0; // only lagging window available
        let dets = cfar_row(&row, CfarConfig { pfa: 1e-3, ..Default::default() });
        assert!(dets.iter().any(|&(r, _, _)| r == 0));
    }
}
