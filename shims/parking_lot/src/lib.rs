//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the small API subset it uses: [`Mutex`] and [`RwLock`] with the
//! parking_lot calling convention (no `Result`, no poisoning — a panic
//! while holding a lock simply hands the data to the next holder).

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock that never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that never returns a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
