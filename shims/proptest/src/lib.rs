//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the API subset it uses: the [`proptest!`] macro over `name in
//! strategy` parameters, range / tuple / [`collection::vec`] / [`any`]
//! strategies, `prop_assert*` macros, and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest: inputs are sampled uniformly (no
//! bias toward edge cases), failures are not shrunk, and the case seed is
//! a deterministic hash of the test name — every run explores the same
//! inputs, which keeps CI reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The generator the macros thread through strategies.
pub type TestRng = StdRng;

/// Deterministic per-test generator (FNV-1a hash of the test name).
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A value generator. Unlike real proptest there is no shrinking tree;
/// `generate` directly yields a sampled value.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy for "any value of `T`" (full range for integers, `[0,1)` for
/// floats — the subset the workspace needs).
pub struct AnyStrategy<T>(PhantomData<T>);

/// `any::<T>()` — the canonical strategy for a primitive type.
pub fn any<T: SampleUniform>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: SampleUniform> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen::<T>()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `elem` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(elem, size)`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.lo..self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The usual wildcard import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a generated case (panics with the failing
/// inputs' case number; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assertion inside a generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assertion inside a generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for every generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.5f64..2.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
        }

        /// Tuples and vecs compose.
        #[test]
        fn composites(
            pair in (0u32..5, 10u64..20),
            fixed in crate::collection::vec(any::<u8>(), 7),
            var in crate::collection::vec(0usize..3, 1..5),
        ) {
            prop_assert!(pair.0 < 5 && pair.1 >= 10);
            prop_assert_eq!(fixed.len(), 7);
            prop_assert!((1..5).contains(&var.len()));
            prop_assert_ne!(var.len(), 0);
        }
    }

    #[test]
    fn determinism_across_generators() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
