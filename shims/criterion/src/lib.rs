//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`], the
//! [`criterion_group!`] / [`criterion_main!`] macros and [`black_box`].
//! Measurement is a plain wall-clock mean over `sample_size` runs (no
//! warm-up analysis, outlier rejection, or HTML reports).
//!
//! When the `BENCH_JSON` environment variable names a file, the harness
//! additionally writes every measurement as a JSON array to that path
//! when the `criterion_main!`-generated `main` finishes — the
//! machine-readable artifact CI uploads per bench run.

use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, recorded for the JSON report.
struct BenchRecord {
    name: String,
    mean_s: f64,
    iters: u64,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Writes every measurement recorded so far as a JSON array to the path
/// named by `$BENCH_JSON`, if set (no-op otherwise). Called by the
/// `criterion_main!`-generated `main` after all groups have run.
pub fn write_json_report() {
    let Ok(path) = std::env::var("BENCH_JSON") else { return };
    if path.is_empty() {
        return;
    }
    let rows: Vec<String> = records()
        .lock()
        .expect("bench record lock")
        .iter()
        .map(|r| {
            format!(
                "{{\"name\": \"{}\", \"mean_s\": {:.9}, \"iters\": {}}}",
                r.name.replace('\\', "\\\\").replace('"', "\\\""),
                r.mean_s,
                r.iters
            )
        })
        .collect();
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    if let Err(e) = std::fs::write(&path, body) {
        eprintln!("BENCH_JSON: cannot write {path}: {e}");
    }
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup call regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: u32,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(samples: u32) -> Self {
        Self { samples, total: Duration::ZERO, iters: 0 }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
        }
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<40} (no measurement)");
            return;
        }
        let mean = self.total.as_secs_f64() / self.iters as f64;
        records().lock().expect("bench record lock").push(BenchRecord {
            name: name.to_string(),
            mean_s: mean,
            iters: self.iters,
        });
        let (value, unit) = if mean >= 1.0 {
            (mean, "s")
        } else if mean >= 1e-3 {
            (mean * 1e3, "ms")
        } else if mean >= 1e-6 {
            (mean * 1e6, "µs")
        } else {
            (mean * 1e9, "ns")
        };
        println!("{name:<40} {value:>10.3} {unit}  ({} iters)", self.iters);
    }
}

/// Benchmark registry and runner.
pub struct Criterion {
    sample_size: u32,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default per-benchmark sample count.
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { sample_size: self.sample_size, _parent: self }
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }
}

/// A named group sharing a sample size.
pub struct BenchmarkGroup<'a> {
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Ends the group (statistics would be finalized here in criterion).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (--bench, filters); this
            // minimal harness runs everything unconditionally.
            $($group();)+
            // One JSON artifact per bench binary when $BENCH_JSON is set.
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("trivial", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert_eq!(runs, 3);
    }

    #[test]
    fn group_sample_size_and_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut setups = 0u32;
        let mut runs = 0u32;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        g.finish();
        assert_eq!((setups, runs), (2, 2));
    }

    #[test]
    fn json_report_round_trips_measurements() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("json \"quoted\" bench", |b| b.iter(|| 1 + 1));
        let dir = std::env::temp_dir().join("criterion-shim-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bench.json");
        // SAFETY: tests in this crate run in one process; no other thread
        // reads the environment concurrently with this test.
        std::env::set_var("BENCH_JSON", &path);
        write_json_report();
        std::env::remove_var("BENCH_JSON");
        let body = std::fs::read_to_string(&path).expect("report written");
        assert!(body.trim_start().starts_with('['), "a JSON array: {body}");
        assert!(body.contains("json \\\"quoted\\\" bench"), "escaped name: {body}");
        assert!(body.contains("\"mean_s\""), "mean recorded: {body}");
        assert!(body.contains("\"iters\": 2"), "iteration count recorded: {body}");
    }
}
