//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the API subset it uses: `crossbeam::channel` unbounded MPSC
//! channels, backed by `std::sync::mpsc` (whose sender has been `Sync` and
//! lock-free since the std channel rewrite, which itself absorbed
//! crossbeam-channel).

/// Multi-producer channels with the crossbeam calling convention.
pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_clone() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Empty);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Timeout
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)).unwrap_err(),
            RecvTimeoutError::Disconnected
        );
    }
}
