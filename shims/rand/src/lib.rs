//! Offline stand-in for the `rand` crate.
//!
//! The build container cannot reach a cargo registry, so the workspace
//! vendors the API subset it uses: a seedable deterministic generator
//! ([`rngs::StdRng`], xoshiro256** seeded through splitmix64) and the
//! [`Rng::gen_range`] / [`Rng::gen`] sampling surface for the primitive
//! numeric types. Not cryptographically secure — statistical use only.

use std::ops::Range;

/// Types that can be produced uniformly from raw generator output.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// A "standard" sample: `[0, 1)` for floats, full range for integers.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

/// Raw 64-bit generator interface (object-safe core of [`Rng`]).
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range needs a non-empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of one 64-bit draw is irrelevant at these spans.
                let draw = rng.next_u64() as u128;
                let off = (draw * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
            fn sample_standard(rng: &mut dyn RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range needs a non-empty range");
        let u = Self::sample_standard(rng);
        // Clamp below hi so half-open semantics survive rounding.
        (lo + u * (hi - lo)).min(hi - hi.abs() * f64::EPSILON).max(lo)
    }
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range needs a non-empty range");
        let u = Self::sample_standard(rng);
        (lo + u * (hi - lo)).min(hi - hi.abs() * f32::EPSILON).max(lo)
    }
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUniform for bool {
    fn sample_range(rng: &mut dyn RngCore, _lo: Self, _hi: Self) -> Self {
        Self::sample_standard(rng)
    }
    fn sample_standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level sampling methods, like `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the half-open `range`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// A "standard" sample (`[0,1)` floats, full-range integers).
    fn gen<T: SampleUniform>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Construction from seed material, like `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Deterministic construction from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** with splitmix64
    /// seed expansion. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn float_ranges_are_half_open_and_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&x));
            let y: f32 = r.gen_range(0.0..6.283_185_5);
            assert!((0.0..6.283_185_5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_their_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v: usize = r.gen_range(0..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floats_look_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
