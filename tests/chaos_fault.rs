//! Chaos suite: randomized seeded fault schedules against the full real
//! pipeline, across both I/O strategies and all three failure policies.
//!
//! Invariants, per schedule:
//! 1. the run always terminates (stage watchdogs bound every wait; CI adds
//!    a wall-clock timeout on top),
//! 2. it either completes — accounting for every CPI as a report or a
//!    recorded drop — or fails with a typed root-cause error, never the
//!    bare `CommError::Aborted` of a torn-down bystander,
//! 3. re-running the identical configuration reproduces the same outcome
//!    (same drops, byte-identical reports).

use proptest::prelude::*;
use stap_core::config::{FailurePolicy, RetryPolicy, StapConfig, WatchdogPolicy};
use stap_core::{IoStrategy, ScheduleMode, StapRunOutput, StapSystem};
use stap_kernels::cube::CubeDims;
use stap_pfs::{Fault, FaultPlan, FaultWindow};
use stap_pipeline::{PipelineError, INFRASTRUCTURE_LOSS_MARKER};
use stap_radar::{Scene, Target};
use std::time::Duration;

const CPIS: u64 = 4;

/// splitmix64: the chaos schedule is a pure function of the case seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of bounded draws derived from one seed.
struct Draws {
    state: u64,
}

impl Draws {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state = mix(self.state);
        self.state % bound.max(1)
    }
}

fn tiny_config(io: IoStrategy, policy: FailurePolicy, plan: FaultPlan) -> StapConfig {
    StapConfig {
        dims: CubeDims::new(16, 4, 64),
        scene: Scene {
            targets: vec![Target {
                range_gate: 20,
                doppler: 0.25,
                spatial_freq: 0.15,
                snr_db: 25.0,
            }],
            jammers: vec![],
            clutter: None,
            noise_power: 1.0,
        },
        io,
        cpis: CPIS,
        warmup: 1,
        fanout: 2,
        failure_policy: policy,
        fault_plan: Some(plan),
        watchdog: Some(WatchdogPolicy::default()),
        ..StapConfig::default()
    }
}

/// Builds 1–3 faults of mixed kinds from the case seed.
fn random_plan(seed: u64) -> FaultPlan {
    let mut d = Draws::new(seed);
    let mut plan = FaultPlan::new(seed);
    let count = 1 + d.next(3);
    for _ in 0..count {
        let file = StapConfig::file_name(d.next(2) as usize);
        let from = d.next(CPIS);
        let until = if d.next(4) == 0 { u64::MAX } else { from + 1 + d.next(CPIS - from) };
        let window = FaultWindow::new(from, until);
        plan = plan.with(match d.next(5) {
            0 => Fault::FileUnavailable { file, window },
            1 => Fault::ServerUnavailable { server: d.next(16) as usize, window },
            2 => Fault::Transient { file, fail_attempts: 1 + d.next(3) as u32, window },
            3 => Fault::Flaky { file, p: d.next(10) as f64 / 10.0, window },
            _ => Fault::SlowRead { file, delay: Duration::from_millis(1 + d.next(4)), window },
        });
    }
    plan
}

fn policy_for(choice: usize) -> FailurePolicy {
    match choice {
        0 => FailurePolicy::Abort,
        1 => FailurePolicy::Retry(RetryPolicy::new(2, Duration::from_millis(1))),
        _ => FailurePolicy::SkipCpi {
            retry: RetryPolicy::new(1, Duration::from_millis(1)),
            max_consecutive: 3,
        },
    }
}

/// The error must carry a root cause — a bystander's `Aborted` means the
/// real failure was lost.
fn assert_typed_root_cause(err: &PipelineError) {
    match err {
        PipelineError::Comm(stap_comm::CommError::Aborted) => {
            panic!("bare Aborted leaked out of a chaos run")
        }
        PipelineError::Stage { stage, message } => {
            assert!(!stage.is_empty() && !message.is_empty());
        }
        _ => {}
    }
}

fn outcome_fingerprint(out: &Result<StapRunOutput, PipelineError>) -> String {
    match out {
        Ok(o) => {
            let drops: Vec<String> = o.dropped.iter().map(|g| g.cpi.to_string()).collect();
            let bytes: Vec<u8> = o.reports.iter().flat_map(|r| r.to_bytes()).collect();
            format!("ok drops=[{}] report_bytes={:?}", drops.join(","), bytes)
        }
        // Which of several simultaneously-failing nodes surfaces first can
        // differ between runs, so the fingerprint pins the error *site*
        // (variant + stage), not the full message.
        Err(PipelineError::Stage { stage, .. }) => format!("err stage={stage}"),
        Err(PipelineError::Timeout { .. }) => "err timeout".into(),
        Err(e) => format!("err {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chaos_schedules_never_hang_and_always_account_for_every_cpi(
        seed in 0u64..u64::MAX,
        io_choice in 0usize..2,
        policy_choice in 0usize..3,
    ) {
        let io = if io_choice == 0 { IoStrategy::Embedded } else { IoStrategy::SeparateTask };
        let policy = policy_for(policy_choice);
        let plan = random_plan(seed);
        let cfg = tiny_config(io, policy, plan);

        let first = StapSystem::prepare(cfg.clone()).unwrap().run();
        match &first {
            Ok(out) => {
                prop_assert_eq!(
                    out.reports.len() + out.dropped.len(),
                    CPIS as usize,
                    "every CPI is a report or a recorded drop"
                );
                if !policy.skips() {
                    prop_assert!(out.dropped.is_empty(), "only SkipCpi may drop CPIs");
                }
                let mut seen: Vec<u64> = out
                    .reports
                    .iter()
                    .map(|r| r.cpi)
                    .chain(out.dropped.iter().map(|g| g.cpi))
                    .collect();
                seen.sort_unstable();
                prop_assert_eq!(seen, (0..CPIS).collect::<Vec<_>>());
            }
            Err(e) => assert_typed_root_cause(e),
        }

        // Same seed, same schedule, same outcome.
        let second = StapSystem::prepare(cfg.clone()).unwrap().run();
        prop_assert_eq!(outcome_fingerprint(&first), outcome_fingerprint(&second));

        // Scheduling is orthogonal to fault handling: the work-stealing
        // executor must reproduce the same drops, the same retries, and
        // byte-identical reports as static scheduling under the identical
        // fault schedule.
        let stolen = StapSystem::prepare(StapConfig {
            schedule: ScheduleMode::Steal,
            ..cfg
        })
        .unwrap()
        .run();
        prop_assert_eq!(outcome_fingerprint(&first), outcome_fingerprint(&stolen));
        if let (Ok(a), Ok(b)) = (&first, &stolen) {
            prop_assert_eq!(a.retries, b.retries, "retry counts differ across schedulers");
        }
    }

    /// Fleet-level chaos: a seeded *permanent* loss (stripe server or
    /// compute node) against every policy. Invariants on top of the
    /// generic three:
    /// 4. permanent losses are never retried or skipped into oblivion —
    ///    when one is observed the run fails fast, and
    /// 5. the flat error text carries [`INFRASTRUCTURE_LOSS_MARKER`], so a
    ///    failover layer that only sees a dead worker's message can still
    ///    classify "re-plan on the degraded pool" vs "the data is bad".
    #[test]
    fn fleet_loss_chaos_terminates_with_classifiable_errors(
        seed in 0u64..u64::MAX,
        io_choice in 0usize..2,
        policy_choice in 0usize..3,
    ) {
        let io = if io_choice == 0 { IoStrategy::Embedded } else { IoStrategy::SeparateTask };
        let policy = policy_for(policy_choice);
        let mut d = Draws::new(seed);
        let from = d.next(CPIS);
        let fault = if d.next(2) == 0 {
            Fault::ServerLoss { server: d.next(16) as usize, from }
        } else {
            Fault::NodeCrash {
                node: d.next(8) as usize,
                window: FaultWindow::new(from, from + 1 + d.next(CPIS - from)),
            }
        };
        let cfg = tiny_config(io, policy, FaultPlan::new(seed).with(fault));

        let first = StapSystem::prepare(cfg.clone()).unwrap().run();
        match &first {
            // The loss may miss every issued read (a server no extent
            // lands on, a node that hosts no reader): then the run is a
            // clean, complete one — permanent faults never silently drop.
            Ok(out) => {
                prop_assert_eq!(out.reports.len() as u64, CPIS);
                prop_assert!(out.dropped.is_empty(), "fleet losses must not skip CPIs");
            }
            Err(e) => {
                assert_typed_root_cause(e);
                prop_assert!(
                    e.to_string().contains(INFRASTRUCTURE_LOSS_MARKER)
                        || matches!(e, PipelineError::Timeout { .. }),
                    "fleet loss surfaced unclassifiably: {e}"
                );
            }
        }

        // Same seed, same loss, same outcome.
        let second = StapSystem::prepare(cfg).unwrap().run();
        prop_assert_eq!(outcome_fingerprint(&first), outcome_fingerprint(&second));
    }
}
