//! Golden-file regression for the trace exporters: the Chrome trace JSON
//! and the `--trace text` phase table are machine-readable artifacts
//! (Perfetto, dashboards, diffing between runs), so their exact bytes are
//! locked against checked-in goldens. Under `--virtual-clock` every
//! timestamp counts clock observations instead of elapsed seconds and each
//! node owns its own clock, so the output is bit-stable across runs,
//! machines, and build profiles.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test trace_golden
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_ppstap(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ppstap")).args(args).output().expect("run ppstap");
    assert!(
        out.status.success(),
        "ppstap {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares against the checked-in golden, reporting the first divergent
/// line instead of dumping both multi-kilobyte documents.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test --test trace_golden`",
            path.display()
        )
    });
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{name} diverges at line {}; if intended, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test trace_golden`",
            i + 1
        );
    }
    panic!(
        "{name}: output length changed ({} vs {} lines); if intended, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test trace_golden`",
        actual.lines().count(),
        expected.lines().count()
    );
}

#[test]
fn chrome_trace_under_virtual_clock_is_stable() {
    let path = std::env::temp_dir().join(format!("ppstap_golden_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    run_ppstap(&[
        "run",
        "--cpis",
        "3",
        "--virtual-clock",
        "--trace",
        &format!("chrome:{path_str}"),
    ]);
    let trace = std::fs::read_to_string(&path).expect("read trace file");
    let _ = std::fs::remove_file(&path);
    check_golden("trace_run_cpis3.chrome.json", &trace);
}

#[test]
fn text_phase_table_under_virtual_clock_is_stable() {
    let out = run_ppstap(&["run", "--cpis", "3", "--virtual-clock", "--trace", "text"]);
    assert!(out.contains("phase statistics"), "trace table missing from output");
    check_golden("trace_run_cpis3.txt", &out);
}
