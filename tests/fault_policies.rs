//! Acceptance tests for the failure policies: `SkipCpi` degraded mode drops
//! exactly the faulted CPIs and leaves the survivors bit-identical, `Retry`
//! clears fault windows shorter than its budget, and the consecutive-drop
//! budget still aborts with a typed root cause.
//!
//! All tests use `fanout: 1`, so every CPI reads the same staged cube: the
//! weight task's last-good weights then equal the weights a dropped CPI
//! would have produced, making surviving reports byte-comparable against a
//! fault-free run.

use stap_core::config::{FailurePolicy, RetryPolicy, StapConfig, WatchdogPolicy};
use stap_core::{IoStrategy, StapRunOutput, StapSystem};
use stap_pfs::{Fault, FaultPlan, FaultWindow};
use stap_pipeline::PipelineError;
use stap_radar::{Scene, Target};
use std::time::Duration;

fn scene() -> Scene {
    Scene {
        targets: vec![Target { range_gate: 40, doppler: 0.25, spatial_freq: 0.15, snr_db: 25.0 }],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    }
}

fn base_config(io: IoStrategy) -> StapConfig {
    StapConfig { scene: scene(), io, cpis: 10, warmup: 2, fanout: 1, ..StapConfig::default() }
}

/// Transient outages on CPIs 3 and 6, each outlasting any retry budget.
fn two_cpi_fault_plan() -> FaultPlan {
    FaultPlan::new(7)
        .with(Fault::Transient {
            file: StapConfig::file_name(0),
            fail_attempts: u32::MAX,
            window: FaultWindow::new(3, 4),
        })
        .with(Fault::Transient {
            file: StapConfig::file_name(0),
            fail_attempts: u32::MAX,
            window: FaultWindow::new(6, 7),
        })
}

fn run_with(cfg: StapConfig) -> StapRunOutput {
    StapSystem::prepare(cfg).unwrap().run().unwrap()
}

fn skip_policy() -> FailurePolicy {
    FailurePolicy::SkipCpi {
        retry: RetryPolicy::new(1, Duration::from_millis(1)),
        max_consecutive: 2,
    }
}

/// Checks every surviving report byte-for-byte against the fault-free run.
fn assert_survivors_identical(clean: &StapRunOutput, degraded: &StapRunOutput) {
    for report in &degraded.reports {
        let reference = clean
            .reports
            .iter()
            .find(|r| r.cpi == report.cpi)
            .unwrap_or_else(|| panic!("no fault-free report for CPI {}", report.cpi));
        assert_eq!(
            report.to_bytes(),
            reference.to_bytes(),
            "CPI {} diverged from the fault-free run",
            report.cpi
        );
    }
}

#[test]
fn skip_cpi_drops_exactly_the_faulted_cpis_embedded() {
    let clean = run_with(base_config(IoStrategy::Embedded));
    assert_eq!(clean.reports.len(), 10);

    let cfg = StapConfig {
        failure_policy: skip_policy(),
        fault_plan: Some(two_cpi_fault_plan()),
        watchdog: Some(WatchdogPolicy::default()),
        ..base_config(IoStrategy::Embedded)
    };
    let out = run_with(cfg);

    let dropped: Vec<u64> = out.dropped.iter().map(|g| g.cpi).collect();
    assert_eq!(dropped, vec![3, 6], "exactly the faulted CPIs drop");
    assert_eq!(out.reports.len(), 8, "one report per surviving CPI");
    let surviving: Vec<u64> = out.reports.iter().map(|r| r.cpi).collect();
    assert_eq!(surviving, vec![0, 1, 2, 4, 5, 7, 8, 9]);
    for g in &out.dropped {
        assert!(g.reason.contains("transient"), "drop names its cause: {}", g.reason);
        assert!(!g.origin.is_empty(), "drop names its origin stage");
    }
    assert!(out.retries >= 2, "each drop first burned its retry budget");
    assert!(out.delivered_throughput() < out.throughput());
    assert_survivors_identical(&clean, &out);
}

#[test]
fn skip_cpi_drops_exactly_the_faulted_cpis_separate_io() {
    let clean = run_with(base_config(IoStrategy::SeparateTask));

    let cfg = StapConfig {
        failure_policy: skip_policy(),
        fault_plan: Some(two_cpi_fault_plan()),
        ..base_config(IoStrategy::SeparateTask)
    };
    let out = run_with(cfg);

    let dropped: Vec<u64> = out.dropped.iter().map(|g| g.cpi).collect();
    assert_eq!(dropped, vec![3, 6]);
    assert_eq!(out.reports.len(), 8);
    assert_eq!(out.dropped[0].origin, "parallel read", "drop originates at the read task");
    assert_survivors_identical(&clean, &out);
}

#[test]
fn retry_clears_fault_windows_shorter_than_the_budget() {
    let clean = run_with(base_config(IoStrategy::Embedded));

    // Two failing attempts per read, three retries in the budget: every
    // CPI recovers, nothing drops.
    let plan = FaultPlan::new(7).with(Fault::Transient {
        file: StapConfig::file_name(0),
        fail_attempts: 2,
        window: FaultWindow::new(3, 5),
    });
    let cfg = StapConfig {
        failure_policy: FailurePolicy::Retry(RetryPolicy::new(3, Duration::from_millis(1))),
        fault_plan: Some(plan),
        ..base_config(IoStrategy::Embedded)
    };
    let out = run_with(cfg);
    assert_eq!(out.reports.len(), 10, "the retry budget clears every fault");
    assert!(out.dropped.is_empty());
    assert!(out.retries >= 2, "recovery consumed retries: {}", out.retries);
    assert_eq!(out.delivered_throughput(), out.throughput());
    assert_survivors_identical(&clean, &out);
}

#[test]
fn retry_exhaustion_aborts_with_the_root_cause() {
    let plan = FaultPlan::new(7).with(Fault::Transient {
        file: StapConfig::file_name(0),
        fail_attempts: u32::MAX,
        window: FaultWindow::new(3, 4),
    });
    let cfg = StapConfig {
        failure_policy: FailurePolicy::Retry(RetryPolicy::new(2, Duration::from_millis(1))),
        fault_plan: Some(plan),
        ..base_config(IoStrategy::Embedded)
    };
    let err = StapSystem::prepare(cfg).unwrap().run().unwrap_err();
    match err {
        PipelineError::Stage { stage, message } => {
            assert_eq!(stage, "Doppler filter");
            assert!(message.contains("transient"), "root cause survives retries: {message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn consecutive_drop_budget_aborts_with_a_typed_error() {
    // CPIs 2..6 all fault; the budget tolerates 2 back-to-back drops, so
    // the third consecutive drop must abort with a named reason.
    let plan = FaultPlan::new(7).with(Fault::Transient {
        file: StapConfig::file_name(0),
        fail_attempts: u32::MAX,
        window: FaultWindow::new(2, 6),
    });
    let cfg = StapConfig {
        failure_policy: skip_policy(),
        fault_plan: Some(plan),
        ..base_config(IoStrategy::Embedded)
    };
    let err = StapSystem::prepare(cfg).unwrap().run().unwrap_err();
    match err {
        PipelineError::Stage { stage, message } => {
            assert_eq!(stage, "Doppler filter");
            assert!(message.contains("consecutive"), "budget named in: {message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn same_seed_reproduces_the_same_degraded_run() {
    let cfg = StapConfig {
        failure_policy: skip_policy(),
        fault_plan: Some(two_cpi_fault_plan()),
        ..base_config(IoStrategy::Embedded)
    };
    let a = run_with(cfg.clone());
    let b = run_with(cfg);
    let drops = |o: &StapRunOutput| o.dropped.iter().map(|g| g.cpi).collect::<Vec<_>>();
    assert_eq!(drops(&a), drops(&b));
    assert_eq!(a.retries, b.retries);
    let bytes = |o: &StapRunOutput| o.reports.iter().map(|r| r.to_bytes()).collect::<Vec<_>>();
    assert_eq!(bytes(&a), bytes(&b), "same seed replays byte-for-byte");
}
