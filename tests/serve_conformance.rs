//! Serve-mode conformance: the DES capacity model (`ppstap serve --sim`)
//! and the real fleet executor (`ppstap serve`) share one `Scheduler`, so
//! on the same workload script they must agree on *scheduling* outcomes
//! exactly (admission, dispatch order under priorities) and on *timing*
//! outcomes within documented tolerance once the simulator is calibrated
//! against a single uncontended executed run.
//!
//! Two layers:
//! 1. A fixed 6-mission contention script executed for real and replayed
//!    through the simulator with a `ReadModel::Measured` calibration.
//!    Start order must match exactly; per-mission queue waits, makespan,
//!    and per-mission throughput must agree within the tolerances below.
//!    Writes `target/conformance/serve_tolerance_report.txt` (uploaded as
//!    a CI artifact) recording the worst observed disagreement.
//! 2. Property-based random workload scripts through the simulator:
//!    `simulate_fleet` must always terminate (admission only queues plans
//!    that fit an empty pool, so the queue can always drain) and must
//!    conserve missions — every submission ends up rejected, cancelled,
//!    or completed, with nothing left queued or running.

use proptest::prelude::*;
use stap_serve::{
    run_fleet, simulate_fleet, FleetFault, ReadModel, ServeConfig, SimConfig, WorkloadScript,
};
use std::sync::Mutex;

/// Serializes writers of the shared tolerance report: the tests in this
/// binary run on parallel threads, and each owns one titled section.
static REPORT_LOCK: Mutex<()> = Mutex::new(());

/// Replaces (or appends) one `== title ==` section of
/// `target/conformance/serve_tolerance_report.txt`, preserving every
/// other section.
fn write_report_section(title: &str, body: &[String]) {
    let _guard = REPORT_LOCK.lock().expect("report lock");
    std::fs::create_dir_all("target/conformance").expect("create report dir");
    let path = "target/conformance/serve_tolerance_report.txt";
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let marker = format!("== {title} ==");
    let mut kept: Vec<&str> = Vec::new();
    let mut skipping = false;
    for line in existing.lines() {
        if line.starts_with("== ") {
            skipping = line == marker;
        }
        if !skipping {
            kept.push(line);
        }
    }
    let mut out = kept.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out.push_str(&marker);
    out.push('\n');
    out.push_str(&body.join("\n"));
    out.push('\n');
    std::fs::write(path, out).expect("write serve tolerance report");
}

/// Tolerances for executed-vs-simulated agreement.
///
/// Queue waits and makespan are compared *dimensionlessly*: each mode's
/// value is divided by that mode's own mean mission runtime. This cancels
/// the dominant noise source — co-scheduled real pipelines contend for
/// host CPU and inflate wall-clock runtimes by a factor the capacity
/// model deliberately does not know about (it models the shared store,
/// not the host). What remains is the scheduling structure (who waited
/// how many service times), which both modes derive from the same
/// `Scheduler` and should agree on to well under one service time.
const QW_TOL_RUNTIMES: f64 = 0.9;
/// Normalized makespan |exec − sim| bound, in mean-runtime units. Six
/// missions on two workers occupy ~3 service rounds in both modes; one
/// full round of slack absorbs dispatch-loop granularity (~10 ms polls)
/// and CI jitter.
const MAKESPAN_TOL_RUNTIMES: f64 = 1.0;
/// Per-mission throughput ratio sim/exec must fall in
/// `[1/TPUT_RATIO_TOL, TPUT_RATIO_TOL]`. The simulator is calibrated from
/// an *uncontended* run, so co-location CPU contention in the executed
/// fleet legitimately shows up as ratio > 1; a loose band still catches
/// unit mistakes (seconds-vs-CPIs, per-CPI-vs-per-run) which miss by 8×+.
const TPUT_RATIO_TOL: f64 = 2.5;
/// Fraction of an uncontended mission's wall-clock spent reading from the
/// shared store. The small real cube (16×4×64 over 2 I/O nodes) is
/// compute-dominated; the exact split barely moves predictions because
/// the calibrated per-CPI cost is held fixed either way.
const READ_FRACTION: f64 = 0.25;

/// CPI count for the calibration run; the contention missions' CPI count
/// is then sized from the measured per-CPI time (see
/// [`contention_script`]).
const CALIBRATION_CPIS: u64 = 8;

/// Submission stagger between consecutive missions, seconds. Must exceed
/// the executor's ~10 ms dispatch-poll granularity so each submit is seen
/// (and greedily dispatched) before the next arrives — the same
/// one-at-a-time semantics the DES gives distinct event times.
const STAGGER_SECS: f64 = 0.015;

/// The fixed contention script: six 25-node missions staggered
/// [`STAGGER_SECS`] apart on a 2-worker fleet. m0/m1 dispatch into the
/// idle fleet; the rest queue, and priorities (m4/m5 at 5 beat m2/m3 at 1
/// despite arriving later) decide the drain order: m0 m1 m4 m5 m2 m3.
///
/// The per-mission CPI count is sized so the nominal runtime is at least
/// 4× the whole submission window on *this* machine — otherwise a fast
/// host lets m0 finish before m4 is submitted and the drain order
/// legitimately differs between modes.
fn contention_script(per_cpi_secs: f64) -> WorkloadScript {
    let window = 5.0 * STAGGER_SECS;
    let cpis = ((window * 4.0 / per_cpi_secs).ceil() as u64).clamp(8, 512);
    let mut text = String::new();
    for (i, pri) in [0u8, 0, 1, 1, 5, 5].iter().enumerate() {
        text.push_str(&format!(
            "at {:.3} submit name=m{i} nodes=25 cpis={cpis} priority={pri}\n",
            i as f64 * STAGGER_SECS
        ));
    }
    WorkloadScript::parse(&text).expect("fixed script parses")
}

fn fleet_config() -> ServeConfig {
    ServeConfig {
        pool_nodes: 64,
        workers: 2,
        queue_capacity: 16,
        stripe_servers: 128,
        ..ServeConfig::default()
    }
}

/// Names ordered by dispatch time.
fn start_order(pairs: &mut [(f64, String)]) -> Vec<String> {
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    pairs.iter().map(|(_, n)| n.clone()).collect()
}

#[test]
fn fixed_fleet_sim_matches_execution_within_tolerance_and_report_written() {
    // Calibrate the read model from one uncontended executed mission.
    let solo = WorkloadScript::parse("at 0 submit name=solo nodes=25 cpis=8\n")
        .expect("solo script parses");
    let solo_out = run_fleet(&solo, &ServeConfig { workers: 1, ..fleet_config() });
    assert_eq!(solo_out.missions.len(), 1, "calibration run must complete");
    let solo_m = &solo_out.missions[0];
    let solo_runtime = solo_m.end - solo_m.start;
    assert!(solo_runtime > 0.0);
    let per_cpi = solo_runtime / CALIBRATION_CPIS as f64;
    let model = ReadModel::Measured { runtime_per_cpi: per_cpi, read_fraction: READ_FRACTION };

    // Execute the contention script for real, then replay it in the DES.
    let script = contention_script(per_cpi);
    let exec = run_fleet(&script, &fleet_config());
    let sim = simulate_fleet(&script, &SimConfig { serve: fleet_config(), read_model: model });

    assert_eq!(exec.missions.len(), 6, "all six executed missions complete");
    assert_eq!(sim.rows.len(), 6, "all six simulated missions complete");
    assert!(exec.rejected.is_empty() && sim.rejected.is_empty());

    // Scheduling conformance: identical dispatch order (priorities beat
    // arrival order for the queued tail).
    let exec_order = start_order(
        &mut exec.missions.iter().map(|m| (m.start, m.name.clone())).collect::<Vec<_>>(),
    );
    let sim_order =
        start_order(&mut sim.rows.iter().map(|r| (r.start, r.name.clone())).collect::<Vec<_>>());
    let expected = ["m0", "m1", "m4", "m5", "m2", "m3"];
    assert_eq!(exec_order, expected, "executed dispatch order");
    assert_eq!(sim_order, expected, "simulated dispatch order");

    // Timing conformance, normalized per mode (see tolerance docs above).
    let exec_mean_rt =
        exec.missions.iter().map(|m| m.end - m.start).sum::<f64>() / exec.missions.len() as f64;
    let sim_mean_rt = sim.rows.iter().map(|r| r.end - r.start).sum::<f64>() / sim.rows.len() as f64;
    assert!(exec_mean_rt > 0.0 && sim_mean_rt > 0.0);

    let mut lines = vec![
        format!("calibration: runtime_per_cpi={per_cpi:.4}s read_fraction={READ_FRACTION}"),
        format!("dispatch order (both modes): {}", expected.join(" ")),
        format!(
            "mean runtime: exec={exec_mean_rt:.3}s sim={sim_mean_rt:.3}s (normalization units)"
        ),
        String::new(),
        format!(
            "{:<8} {:>9} {:>9} {:>8} {:>10} {:>10} {:>7}",
            "mission", "exec qw", "sim qw", "|d| nrm", "exec CPI/s", "sim CPI/s", "ratio"
        ),
    ];
    let (mut worst_qw, mut worst_ratio) = (0.0f64, 1.0f64);
    for m in &exec.missions {
        let r = sim.rows.iter().find(|r| r.name == m.name).expect("mission simulated");
        let qw_diff = (m.queue_wait / exec_mean_rt - r.queue_wait / sim_mean_rt).abs();
        let ratio = r.throughput / m.throughput;
        worst_qw = worst_qw.max(qw_diff);
        worst_ratio = worst_ratio.max(ratio.max(1.0 / ratio));
        lines.push(format!(
            "{:<8} {:>9.3} {:>9.3} {:>8.3} {:>10.2} {:>10.2} {:>7.2}",
            m.name, m.queue_wait, r.queue_wait, qw_diff, m.throughput, r.throughput, ratio
        ));
        assert!(
            qw_diff <= QW_TOL_RUNTIMES,
            "{}: normalized queue-wait disagreement {qw_diff:.3} > {QW_TOL_RUNTIMES}",
            m.name
        );
        assert!(
            (1.0 / TPUT_RATIO_TOL..=TPUT_RATIO_TOL).contains(&ratio),
            "{}: sim/exec throughput ratio {ratio:.2} outside [{:.2}, {TPUT_RATIO_TOL}]",
            m.name,
            1.0 / TPUT_RATIO_TOL
        );
    }
    let mk_diff = (exec.makespan / exec_mean_rt - sim.makespan / sim_mean_rt).abs();
    lines.push(String::new());
    lines.push(format!(
        "makespan: exec={:.3}s sim={:.3}s normalized |d|={mk_diff:.3} (tol {MAKESPAN_TOL_RUNTIMES})",
        exec.makespan, sim.makespan
    ));
    lines.push(format!(
        "worst: queue-wait |d|={worst_qw:.3} (tol {QW_TOL_RUNTIMES}), tput ratio={worst_ratio:.2} (tol {TPUT_RATIO_TOL})"
    ));
    write_report_section("executed fleet vs calibrated DES capacity model", &lines);
    assert!(
        mk_diff <= MAKESPAN_TOL_RUNTIMES,
        "normalized makespan disagreement {mk_diff:.3} > {MAKESPAN_TOL_RUNTIMES}"
    );
}

/// Executed-vs-simulated staging-occupancy tolerance, cubes. With an
/// unpaced frontend both modes fill each mission's ring toward its
/// depth; the executed peak can sit one cube under the depth when the
/// consumer's first pop interleaves with the producer's burst, so exact
/// equality is not guaranteed — one cube of slack is.
const STAGING_PEAK_TOL: u64 = 1;
/// Executed-vs-simulated SLA hit-rate tolerance. The streamed script's
/// bounds are orders of magnitude above either mode's latency, so the
/// graded sets must agree exactly; any disagreement is a verdict bug,
/// not timing noise.
const SLA_RATE_TOL: f64 = 1e-9;

#[test]
fn streamed_fleet_sim_matches_execution_on_staging_and_sla() {
    let text = "\
at 0.000 submit name=s0 nodes=25 cpis=4 source=stream staging=4 backpressure=block max-latency=120\n\
at 0.015 submit name=s1 nodes=25 cpis=4 source=stream staging=3 backpressure=block max-latency=120\n\
at 0.030 submit name=s2 nodes=25 cpis=4 source=stream staging=2 backpressure=block\n";
    let script = WorkloadScript::parse(text).expect("stream script parses");
    let exec = run_fleet(&script, &fleet_config());
    let sim = simulate_fleet(
        &script,
        &SimConfig { serve: fleet_config(), read_model: ReadModel::Planned },
    );
    assert_eq!(exec.missions.len(), 3, "all streamed missions execute to completion");
    assert_eq!(sim.rows.len(), 3, "all streamed missions simulate to completion");

    let mut lines = vec![
        "unpaced stream-fed missions; ring occupancy and SLA verdicts".to_string(),
        String::new(),
        format!("{:<8} {:>9} {:>8} {:>8}", "mission", "ring", "exec pk", "sim pk"),
    ];
    let depths = [("s0", 4u64), ("s1", 3), ("s2", 2)];
    for (name, depth) in depths {
        let m = exec.missions.iter().find(|m| m.name == name).expect("executed mission");
        let r = sim.rows.iter().find(|r| r.name == name).expect("simulated mission");
        lines.push(format!("{:<8} {:>9} {:>8} {:>8}", name, depth, m.staging_peak, r.staging_peak));
        assert!(m.staging_peak >= 1 && m.staging_peak <= depth, "{name}: executed peak in ring");
        assert!(r.staging_peak >= 1 && r.staging_peak <= depth, "{name}: simulated peak in ring");
        assert!(
            m.staging_peak.abs_diff(r.staging_peak) <= STAGING_PEAK_TOL,
            "{name}: staging occupancy disagrees — exec {} vs sim {} (tol {STAGING_PEAK_TOL})",
            m.staging_peak,
            r.staging_peak
        );
    }
    let exec_sla = exec.sla_hit_rate().expect("two bounded missions executed");
    let sim_sla = sim.sla_hit_rate().expect("two bounded missions simulated");
    lines.push(String::new());
    lines.push(format!(
        "SLA hit-rate: exec={:.0}% sim={:.0}% (tol {SLA_RATE_TOL})",
        exec_sla * 100.0,
        sim_sla * 100.0
    ));
    write_report_section("streamed missions: staging occupancy and SLA", &lines);
    assert!(
        (exec_sla - sim_sla).abs() <= SLA_RATE_TOL,
        "SLA hit-rate disagrees: exec {exec_sla} vs sim {sim_sla}"
    );
}

/// Executed-vs-simulated SLA hit-rate tolerance *under an injected fleet
/// fault*. Which missions fail over is a pure function of the script and
/// the fault schedule (every file-fed mission whose CPI count reaches the
/// loss CPI observes it) in both modes, and the script's latency bounds
/// sit orders of magnitude above either mode's runtimes, so the graded
/// sets — and therefore both the headline hit-rate and the no-failover
/// counterfactual — must agree exactly; any disagreement is a failover
/// classification bug, not timing noise.
const FAULT_SLA_RATE_TOL: f64 = 1e-9;

#[test]
fn fleet_fault_sim_matches_execution_on_failovers_and_sla() {
    // f0/f1 (4 CPIs) cross the loss at CPI 3 and must fail over; f2
    // (2 CPIs) finishes before the server dies and must complete clean.
    let text = "\
at 0.000 submit name=f0 nodes=25 cpis=4 max-latency=120\n\
at 0.015 submit name=f1 nodes=25 cpis=4 max-latency=120\n\
at 0.030 submit name=f2 nodes=25 cpis=2 max-latency=120\n";
    let script = WorkloadScript::parse(text).expect("fault script parses");
    let fault = Some(FleetFault { server: 0, at_cpi: 3 });
    let cfg = ServeConfig { fault, ..fleet_config() };
    let exec = run_fleet(&script, &cfg);
    let sim = simulate_fleet(&script, &SimConfig { serve: cfg, read_model: ReadModel::Planned });

    assert_eq!(exec.missions.len(), 3, "all executed missions survive the loss");
    assert_eq!(sim.rows.len(), 3, "all simulated missions survive the loss");

    // Failover conformance: the same missions fail over in both modes.
    let mut exec_fo: Vec<&str> =
        exec.missions.iter().filter(|m| m.failover.is_some()).map(|m| m.name.as_str()).collect();
    let mut sim_fo: Vec<&str> =
        sim.rows.iter().filter(|r| r.failover.is_some()).map(|r| r.name.as_str()).collect();
    exec_fo.sort_unstable();
    sim_fo.sort_unstable();
    assert_eq!(exec_fo, ["f0", "f1"], "executed failover set");
    assert_eq!(sim_fo, ["f0", "f1"], "simulated failover set");

    // SLA conformance: headline hit-rate and the no-failover
    // counterfactual agree within the documented tolerance.
    let exec_sla = exec.sla_hit_rate().expect("bounded missions executed");
    let sim_sla = sim.sla_hit_rate().expect("bounded missions simulated");
    let exec_cf = exec.sla_hit_rate_no_failover().expect("counterfactual graded");
    let sim_cf = sim.sla_hit_rate_no_failover().expect("counterfactual graded");
    let lines = vec![
        format!("fault: server-loss:0@3 over {} missions", exec.missions.len()),
        format!("failover set (both modes): {}", exec_fo.join(" ")),
        format!(
            "SLA hit-rate: exec={:.0}% sim={:.0}% (tol {FAULT_SLA_RATE_TOL})",
            exec_sla * 100.0,
            sim_sla * 100.0
        ),
        format!(
            "SLA hit-rate without failover: exec={:.0}% sim={:.0}%",
            exec_cf * 100.0,
            sim_cf * 100.0
        ),
    ];
    write_report_section("fleet fault: executed vs simulated SLA hit-rates", &lines);
    assert!(
        (exec_sla - sim_sla).abs() <= FAULT_SLA_RATE_TOL,
        "SLA hit-rate disagrees under the fault: exec {exec_sla} vs sim {sim_sla}"
    );
    assert!(
        (exec_cf - sim_cf).abs() <= FAULT_SLA_RATE_TOL,
        "no-failover counterfactual disagrees: exec {exec_cf} vs sim {sim_cf}"
    );
    assert!(exec_cf < exec_sla, "redundancy-free counterfactual must be strictly worse");
}

#[test]
fn simulator_is_deterministic_on_the_fixed_script() {
    let script = contention_script(0.012);
    let cfg = SimConfig { serve: fleet_config(), read_model: ReadModel::Planned };
    let a = simulate_fleet(&script, &cfg);
    let b = simulate_fleet(&script, &cfg);
    assert_eq!(a, b, "same script + config must reproduce the same fleet report");
}

/// splitmix64: the workload script is a pure function of the case seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of bounded draws derived from one seed.
struct Draws {
    state: u64,
}

impl Draws {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state = mix(self.state);
        self.state % bound.max(1)
    }
}

/// Builds a random-but-valid workload script from one seed: staggered
/// submissions with mixed priorities and node demands (including
/// below-minimum demands that must be rejected with a typed reason, and
/// occasional unmeetable SLAs that must be rejected as infeasible), plus
/// cancellations targeting roughly a quarter of the submissions.
fn random_script(seed: u64, missions: usize) -> (WorkloadScript, usize) {
    let mut d = Draws::new(seed);
    let mut text = String::new();
    let mut cancels = Vec::new();
    for i in 0..missions {
        let at = i as f64 * 0.05 + d.next(40) as f64 * 0.01;
        let nodes = 5 + d.next(30); // 5..35: below the 7-node pipeline floor sometimes
        let cpis = 2 + d.next(4);
        let pri = d.next(8);
        text.push_str(&format!(
            "at {at:.2} submit name=m{i} nodes={nodes} cpis={cpis} priority={pri}"
        ));
        if d.next(5) == 0 {
            text.push_str(" max-latency=0.0001"); // unmeetable: forces NoFeasiblePlan
        }
        text.push('\n');
        if d.next(4) == 0 {
            cancels
                .push(format!("at {:.2} cancel name=m{i}\n", at + 0.01 + d.next(30) as f64 * 0.01));
        }
    }
    for c in cancels {
        text.push_str(&c);
    }
    (WorkloadScript::parse(&text).expect("generated script parses"), missions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fleets drain: `simulate_fleet` returns (no deadlock — the
    /// admission invariant guarantees every queued plan fits an empty
    /// pool) and conserves missions: submitted == rejected + cancelled +
    /// completed + failed, with per-row timing sanity. Half the cases
    /// inject a seeded mid-mission stripe-server loss: failover must
    /// degrade missions, never leak one out of the conservation ledger.
    #[test]
    fn random_fleets_terminate_and_conserve_missions(
        seed in any::<u64>(),
        missions in 3usize..8,
        workers in 1usize..4,
        queue_capacity in 1usize..5,
        pool_nodes in 20usize..70,
        fault_server in 0usize..64,
        fault_cpi in 0u64..12,
    ) {
        // fault_cpi >= 6 encodes "no fault": half the cases run fault-free.
        let fault =
            (fault_cpi < 6).then_some(FleetFault { server: fault_server, at_cpi: fault_cpi });
        let (script, submitted) = random_script(seed, missions);
        let cfg = SimConfig {
            serve: ServeConfig {
                pool_nodes,
                workers,
                queue_capacity,
                stripe_servers: 64,
                fault,
                ..ServeConfig::default()
            },
            read_model: ReadModel::Planned,
        };
        let report = simulate_fleet(&script, &cfg);

        let c = report.counters;
        prop_assert_eq!(c.submitted, submitted as u64, "every submit event counted");
        prop_assert_eq!(
            c.submitted,
            c.rejected + c.cancelled + c.completed + c.failed,
            "mission conservation: nothing left queued or running"
        );
        prop_assert_eq!(report.rows.len() as u64, c.completed);
        prop_assert_eq!(report.rejected.len() as u64, c.rejected);
        prop_assert_eq!(report.cancelled.len() as u64, c.cancelled);
        prop_assert_eq!(c.failed, 0u64, "the capacity model never fails a mission");
        for (_, reason) in &report.rejected {
            prop_assert!(!reason.is_empty(), "rejections carry a typed reason");
        }
        for row in &report.rows {
            prop_assert!(row.start >= row.submit - 1e-9, "{}: dispatch before submit", row.name);
            prop_assert!(row.end > row.start, "{}: non-positive runtime", row.name);
            prop_assert!(row.queue_wait >= -1e-9, "{}: negative queue wait", row.name);
            prop_assert!((row.queue_wait - (row.start - row.submit)).abs() < 1e-6);
            prop_assert!(row.end <= report.makespan + 1e-9);
            prop_assert!(row.slowdown >= 1.0 - 1e-9, "{}: runtime below nominal", row.name);
            if let Some(note) = &row.failover {
                prop_assert!(
                    note.contains("stripe server"),
                    "{}: failover note must name the lost unit, got '{note}'",
                    row.name
                );
            }
        }
    }
}
