//! Planner acceptance shape: the searched Pareto front must rediscover the
//! paper's qualitative findings and dominate the proportional heuristic.
//!
//! - The front is never empty and every surviving plan's DES throughput is
//!   within 15% of its analytic prediction (the two-stage evaluator is
//!   consistent).
//! - Combining PC+CFAR is always represented on the front (Section 5.3:
//!   combining never hurts).
//! - No separate-I/O plan is latency-optimal (the extra Read stage buys
//!   throughput headroom, never latency).
//! - At 100 nodes the sf=16 file system is dominated outright (Table 1's
//!   read ceiling).
//! - The front's best throughput is at least the heuristic assignment's at
//!   every paper node count.

use stap_model::machines::MachineModel;
use stap_planner::{plan, Outcome, PlanOrigin, PlannerConfig};

#[test]
fn front_nonempty_and_des_consistent_at_100() {
    let report = plan(&PlannerConfig::new(vec![MachineModel::paragon(64)], 100));
    let front = report.front();
    assert!(!front.is_empty(), "empty Pareto front");
    for p in front {
        let err =
            p.des_error_pct.expect("front plans must be DES-validated when validate_des is on");
        assert!(err < 15.0, "plan #{} DES throughput diverges {err:.1}% from analytic", p.id);
    }
}

#[test]
fn combined_tail_always_on_front_and_separate_io_never_latency_optimal() {
    for nodes in [25usize, 50, 100] {
        let report = plan(&PlannerConfig::new(
            vec![MachineModel::paragon(16), MachineModel::paragon(64)],
            nodes,
        ));
        let front = report.front();
        assert!(!front.is_empty(), "empty front at {nodes} nodes");
        assert!(
            front.iter().any(|p| p.tail == stap_core::TailStructure::Combined),
            "no combined PC+CFAR plan on the front at {nodes} nodes"
        );
        let best_latency = report.best_latency().expect("non-empty front");
        assert_eq!(
            best_latency.io,
            stap_core::IoStrategy::Embedded,
            "separate-I/O plan #{} is latency-optimal at {nodes} nodes",
            best_latency.id
        );
    }
}

#[test]
fn sf16_dominated_at_100_nodes() {
    let report =
        plan(&PlannerConfig::new(vec![MachineModel::paragon(16), MachineModel::paragon(64)], 100));
    for p in report.front() {
        assert_eq!(p.stripe_factor, 64, "sf=16 plan #{} survived to the front at 100 nodes", p.id);
    }
    // Dominated sf=16 plans must carry provenance naming their dominator.
    assert!(
        report
            .plans
            .iter()
            .filter(|p| p.stripe_factor == 16)
            .all(|p| !matches!(p.outcome, Outcome::Front)),
        "inconsistent outcome labeling"
    );
}

#[test]
fn search_dominates_the_proportional_heuristic() {
    for nodes in [25usize, 50, 100] {
        let report =
            plan(&PlannerConfig::new(vec![MachineModel::paragon(64)], nodes).without_des());
        let best = report.best_throughput().expect("non-empty front").analytic.throughput;
        let heuristic = report
            .plans
            .iter()
            .filter(|p| p.origin == PlanOrigin::Heuristic)
            .map(|p| p.analytic.throughput)
            .fold(0.0f64, f64::max);
        assert!(heuristic > 0.0, "heuristic seed missing at {nodes} nodes");
        assert!(
            best >= heuristic - 1e-9,
            "searched front ({best:.3}) lost to the heuristic ({heuristic:.3}) at {nodes} nodes"
        );
    }
}
