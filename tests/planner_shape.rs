//! Planner acceptance shape: the searched Pareto front must rediscover the
//! paper's qualitative findings and dominate the proportional heuristic.
//!
//! - The front is never empty and every surviving plan's DES throughput is
//!   within 15% of its analytic prediction (the two-stage evaluator is
//!   consistent).
//! - Combining PC+CFAR is always represented on the front (Section 5.3:
//!   combining never hurts).
//! - No separate-I/O plan is latency-optimal (the extra Read stage buys
//!   throughput headroom, never latency).
//! - At 100 nodes the sf=16 file system is dominated outright (Table 1's
//!   read ceiling).
//! - The front's best throughput is at least the heuristic assignment's at
//!   every paper node count.

use stap_model::machines::MachineModel;
use stap_planner::{plan, Outcome, PlanOrigin, PlannerConfig};

#[test]
fn front_nonempty_and_des_consistent_at_100() {
    let report = plan(&PlannerConfig::new(vec![MachineModel::paragon(64)], 100));
    let front = report.front();
    assert!(!front.is_empty(), "empty Pareto front");
    for p in front {
        let err =
            p.des_error_pct.expect("front plans must be DES-validated when validate_des is on");
        assert!(err < 15.0, "plan #{} DES throughput diverges {err:.1}% from analytic", p.id);
    }
}

#[test]
fn combined_tail_always_on_front_and_separate_io_never_latency_optimal() {
    for nodes in [25usize, 50, 100] {
        let report = plan(&PlannerConfig::new(
            vec![MachineModel::paragon(16), MachineModel::paragon(64)],
            nodes,
        ));
        let front = report.front();
        assert!(!front.is_empty(), "empty front at {nodes} nodes");
        assert!(
            front.iter().any(|p| p.tail == stap_core::TailStructure::Combined),
            "no combined PC+CFAR plan on the front at {nodes} nodes"
        );
        let best_latency = report.best_latency().expect("non-empty front");
        assert_eq!(
            best_latency.io,
            stap_core::IoStrategy::Embedded,
            "separate-I/O plan #{} is latency-optimal at {nodes} nodes",
            best_latency.id
        );
    }
}

#[test]
fn sf16_dominated_at_100_nodes() {
    let report =
        plan(&PlannerConfig::new(vec![MachineModel::paragon(16), MachineModel::paragon(64)], 100));
    for p in report.front() {
        assert_eq!(p.stripe_factor, 64, "sf=16 plan #{} survived to the front at 100 nodes", p.id);
    }
    // Dominated sf=16 plans must carry provenance naming their dominator.
    assert!(
        report
            .plans
            .iter()
            .filter(|p| p.stripe_factor == 16)
            .all(|p| !matches!(p.outcome, Outcome::Front)),
        "inconsistent outcome labeling"
    );
}

#[test]
fn sla_planning_rediscovers_a_wide_stripe_at_100_nodes() {
    // The acceptance scenario for SLA-aware planning: at the paper's
    // 100-node workload with the stripe factor left to the search, asking
    // for a latency bound must return a feasible plan — and its stripe
    // factor must not be the sf=16 the paper started from (Table 1's read
    // ceiling makes 16 a losing choice at this scale).
    let cfg = PlannerConfig::new(vec![MachineModel::paragon_tunable()], 100)
        .without_des()
        .with_max_latency(0.32);
    let report = plan(&cfg);
    let sla = report.sla.as_ref().expect("SLA outcome recorded");
    assert!(sla.infeasible.is_none(), "{:?}", sla.infeasible);
    let best = report.best_within_sla().expect("a 0.32 s plan exists at 100 nodes");
    assert!(best.ranked().latency <= 0.32, "latency {} breaks the SLA", best.ranked().latency);
    assert_ne!(best.stripe_factor, 16, "the planner kept the paper's losing stripe factor");
    // The reported best is the throughput argmax among the feasible plans.
    for &i in &sla.feasible_ids {
        assert!(report.plans[i].ranked().throughput <= best.ranked().throughput + 1e-12);
        assert!(report.plans[i].ranked().latency <= 0.32);
    }
}

#[test]
fn hetero_pool_front_uses_the_fast_class() {
    // On the mixed 96+32 pool the front plans must carry per-class
    // breakdowns, and at least one front plan must actually use fast nodes.
    let cfg = PlannerConfig::new(vec![MachineModel::paragon_hetero()], 100).without_des();
    let report = plan(&cfg);
    let mut fast_used = false;
    for p in report.front() {
        assert!(!p.assignment.class_counts.is_empty(), "#{} lost its packing", p.id);
        for row in &p.assignment.class_counts {
            // Rows follow declaration order: [0] = "gp", [1] = "fast".
            fast_used |= row.len() > 1 && row[1] > 0;
        }
    }
    assert!(fast_used, "no front plan used the fast class");
}

#[test]
fn search_dominates_the_proportional_heuristic() {
    for nodes in [25usize, 50, 100] {
        let report =
            plan(&PlannerConfig::new(vec![MachineModel::paragon(64)], nodes).without_des());
        let best = report.best_throughput().expect("non-empty front").analytic.throughput;
        let heuristic = report
            .plans
            .iter()
            .filter(|p| p.origin == PlanOrigin::Heuristic)
            .map(|p| p.analytic.throughput)
            .fold(0.0f64, f64::max);
        assert!(heuristic > 0.0, "heuristic seed missing at {nodes} nodes");
        assert!(
            best >= heuristic - 1e-9,
            "searched front ({best:.3}) lost to the heuristic ({heuristic:.3}) at {nodes} nodes"
        );
    }
}
