//! End-to-end detection through the real threaded pipeline, driven by the
//! scenario catalog (supersedes the old `end_to_end_detection` /
//! `moving_targets` suites: their scenes are now the `two-target`,
//! `benchmark`, and `maneuvering` catalog entries, and truth matching goes
//! through the shared `stap-scenario` / `stap-kernels::truth` helpers).
//!
//! The evaluator itself covers the default structure; these tests point
//! the same truth-matched scoring at the structural variants — separate
//! I/O nodes, combined tail, PIOFS, degenerate and wide node counts, the
//! eigencanceler — plus the staged-file discipline (restaging, report
//! round-trips).

use ppstap::core::config::{NodeCounts, StapConfig};
use ppstap::core::{IoStrategy, StapSystem, TailStructure};
use ppstap::kernels::truth::score;
use ppstap::pfs::FsConfig;
use ppstap::scenario::evaluate::truth_gates;
use ppstap::scenario::{evaluate, find, Scenario};

fn two_target() -> Scenario {
    find("two-target").expect("catalog has two-target")
}

/// Runs `cfg` and scores every steady-state CPI's detections against the
/// scenario's (possibly drifting) truth gates: every truth hit, at every
/// scored CPI.
fn assert_truths_found(scenario: &Scenario, cfg: StapConfig, label: &str) {
    let (nbins, ranges) = (cfg.dims.pulses, cfg.dims.ranges);
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert!(!out.reports.is_empty(), "{label}: no reports");
    // Skip CPI 0 (cold-start uniform weights).
    for r in out.reports.iter().filter(|r| r.cpi >= 1) {
        let truths = truth_gates(scenario, r.cpi, nbins, ranges);
        let s = score(&r.detections, &truths, nbins, ranges).expect("consistent surface");
        assert_eq!(
            s.hit_count(),
            truths.len(),
            "{label}: CPI {} hit {}/{} truths (hits {:?})",
            r.cpi,
            s.hit_count(),
            truths.len(),
            s.hits
        );
    }
}

#[test]
fn embedded_io_pipeline_detects_targets() {
    let s = two_target();
    let sys = StapSystem::prepare(s.config()).unwrap();
    let out = sys.run().unwrap();
    assert_eq!(out.reports.len(), s.cpis as usize);
    assert!(out.throughput() > 0.0);
    assert!(out.latency() > 0.0);
    assert_truths_found(&s, s.config(), "embedded");
}

#[test]
fn separate_io_pipeline_detects_targets() {
    let s = two_target();
    let cfg = StapConfig { io: IoStrategy::SeparateTask, ..s.config() };
    assert_truths_found(&s, cfg, "separate");
}

#[test]
fn combined_tail_pipeline_detects_targets() {
    let s = two_target();
    let cfg = StapConfig { tail: TailStructure::Combined, ..s.config() };
    assert_truths_found(&s, cfg, "combined");
}

#[test]
fn all_three_structures_agree_on_detections() {
    // Same seed + same scene: the three pipeline structures must produce
    // identical detection records (structure changes scheduling, not
    // arithmetic).
    let s = two_target();
    let run = |io, tail| {
        let cfg = StapConfig { io, tail, ..s.config() };
        let sys = StapSystem::prepare(cfg).unwrap();
        let out = sys.run().unwrap();
        out.reports
            .into_iter()
            .map(|r| {
                let mut dets: Vec<_> = r
                    .detections
                    .iter()
                    .map(|d| (d.beam, d.bin, d.range, d.power.to_bits()))
                    .collect();
                dets.sort_unstable();
                (r.cpi, dets)
            })
            .collect::<Vec<_>>()
    };
    let a = run(IoStrategy::Embedded, TailStructure::Split);
    let b = run(IoStrategy::SeparateTask, TailStructure::Split);
    let c = run(IoStrategy::Embedded, TailStructure::Combined);
    assert_eq!(a, b, "embedded vs separate");
    assert_eq!(a, c, "split vs combined");
}

#[test]
fn piofs_sync_only_path_works() {
    // The PIOFS personality forbids async reads; the embedded Doppler task
    // must fall back to synchronous reads and still work.
    let s = two_target();
    let cfg = StapConfig { fs: FsConfig::piofs(), ..s.config() };
    assert_truths_found(&s, cfg, "piofs");
}

#[test]
fn single_node_stages_work() {
    // Degenerate parallelism: every stage on one node.
    let mut s = two_target();
    s.cpis = 3;
    let cfg = StapConfig {
        nodes: NodeCounts {
            read: 1,
            doppler: 1,
            easy_weight: 1,
            hard_weight: 1,
            easy_bf: 1,
            hard_bf: 1,
            pulse: 1,
            cfar: 1,
        },
        ..s.config()
    };
    assert_truths_found(&s, cfg, "single-node");
}

#[test]
fn wide_stages_work() {
    // More nodes than the defaults, including node counts that do not
    // divide the bin/range counts evenly.
    let mut s = two_target();
    s.cpis = 4;
    let cfg = StapConfig {
        nodes: NodeCounts {
            read: 3,
            doppler: 3,
            easy_weight: 2,
            hard_weight: 3,
            easy_bf: 2,
            hard_bf: 3,
            pulse: 3,
            cfar: 2,
        },
        io: IoStrategy::SeparateTask,
        ..s.config()
    };
    assert_truths_found(&s, cfg, "wide");
}

#[test]
fn eigencanceler_weights_detect_targets_too() {
    use ppstap::kernels::weights::WeightMethod;
    let s = two_target();
    let cfg =
        StapConfig { weight_method: WeightMethod::Eigencanceler { rank: None }, ..s.config() };
    assert_truths_found(&s, cfg, "eigencanceler");
}

#[test]
fn recorded_reports_round_trip_through_the_pfs() {
    use ppstap::kernels::report::DetectionReport as Report;
    use ppstap::pfs::OpenMode;
    let s = two_target();
    let cfg = StapConfig { record_reports: true, ..s.config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    // Every CPI's report must be readable back from the file system and
    // identical to what the sink collected.
    for report in &out.reports {
        let f = sys
            .fs()
            .open(&format!("report_{}.dat", report.cpi), OpenMode::Async)
            .expect("report file exists");
        let bytes = f.read_at(0, f.len() as usize).unwrap();
        let back = Report::from_bytes(&bytes).expect("well-formed record");
        assert_eq!(back.cpi, report.cpi);
        assert_eq!(back.detections, report.detections);
    }
}

#[test]
fn jammed_cluttered_scene_still_detects_after_adaptation() {
    // The benchmark world has a jammer and a clutter ridge; adaptive
    // weights (from CPI >= 1) must null them well enough to find both
    // targets and hold the scenario's shipped requirement.
    let s = find("benchmark").expect("catalog has benchmark");
    let e = evaluate(&s).expect("benchmark evaluates");
    assert_eq!(e.pd(), Some(1.0), "both targets at every scored CPI");
    let report = ppstap::scenario::check(&s.name, &s.requirement, &e);
    assert!(report.passed(), "benchmark requirement holds:\n{}", report.table());
}

#[test]
fn drifting_target_detections_walk_in_range() {
    // The maneuvering catalog entry drifts its target 8 gates per CPI;
    // detections must follow it and must NOT linger at the launch gate.
    let s = find("maneuvering").expect("catalog has maneuvering");
    let e = evaluate(&s).expect("maneuvering evaluates");
    assert_eq!(e.pd(), Some(1.0), "drifting target tracked at every scored CPI");
    let launch = s.scene.targets[0].range_gate;
    for r in e.reports.iter().filter(|r| r.cpi >= 2) {
        assert!(
            !r.cluster(4).detections.iter().any(|d| d.range.abs_diff(launch) <= 2),
            "CPI {}: stale detection at the launch gate {launch}",
            r.cpi
        );
    }
}

#[test]
fn restaged_files_change_what_the_pipeline_sees() {
    use ppstap::kernels::cube::DataCube;
    use ppstap::pfs::OpenMode;
    use ppstap::radar::CubeGenerator;

    // Sanity for the staging discipline itself: after overwriting every
    // slot with cubes whose first target moved, a rerun detects the new
    // gate, not the old.
    let mut s = two_target();
    s.cpis = 3;
    let cfg = s.config();
    let old_gate = s.scene.targets[0].range_gate;
    let sys = StapSystem::prepare(cfg.clone()).unwrap();
    let first = sys.run().unwrap();
    assert!(first.reports[1].detections.iter().any(|d| d.range.abs_diff(old_gate) <= 3));

    // The radar overwrites every slot with cubes for the moved scene.
    let new_gate = 60;
    let mut moved = s.scene.clone();
    moved.targets[0].range_gate = new_gate;
    let mut gen = CubeGenerator::new(cfg.dims, moved, cfg.waveform_len, 99);
    for slot in 0..cfg.fanout {
        let f = sys.fs().open(&StapConfig::file_name(slot), OpenMode::Async).unwrap();
        let cube: DataCube = gen.next_cube();
        f.write_at(0, &cube.to_range_major_bytes()).expect("staging write");
    }
    let second = sys.run().unwrap();
    let report = &second.reports[1];
    assert!(
        report.detections.iter().any(|d| d.range.abs_diff(new_gate) <= 3),
        "new target missed: {:?}",
        report.detections.iter().map(|d| d.range).collect::<Vec<_>>()
    );
    assert!(
        !report.detections.iter().any(|d| d.range.abs_diff(old_gate) <= 2),
        "old target should be gone"
    );
}
