//! End-to-end acceptance tests for the smart storage tier: routing a real
//! pipeline run through the server cache or through bounded out-of-core
//! chunks must be invisible to the detections — bit-for-bit — while the
//! run report gains the tier's counters.

use ppstap::core::config::StapConfig;
use ppstap::core::{IoStrategy, StapRunOutput, StapSystem};
use ppstap::pipeline::ClockSpec;
use ppstap::scenario::find;
use ppstap::store::CubeAccess;

/// Runs a configuration to completion under the virtual clock.
fn run(cfg: StapConfig) -> StapRunOutput {
    let sys = StapSystem::prepare(cfg).expect("system prepares");
    sys.run_with_clock(ClockSpec::virtual_default()).expect("run completes")
}

/// One CPI's detections as sortable bit-exact keys.
type CpiKeys = (u64, Vec<(usize, usize, usize, u64)>);

/// Sorted, bit-exact detection keys of a run.
fn keys(out: &StapRunOutput) -> Vec<CpiKeys> {
    out.reports
        .iter()
        .map(|r| {
            let mut dets: Vec<_> =
                r.detections.iter().map(|d| (d.beam, d.bin, d.range, d.power.to_bits())).collect();
            dets.sort_unstable();
            (r.cpi, dets)
        })
        .collect()
}

#[test]
fn out_of_core_detections_are_bit_identical_on_catalog_scenarios() {
    // The acceptance claim, on two catalog worlds with real interference
    // and motion: streaming cubes through chunks whose provable scratch
    // bound sits several times under the cube changes nothing downstream.
    for name in ["two-target", "benchmark"] {
        let scenario = find(name).expect("catalog scenario exists");
        let resident = run(scenario.config());
        let ooc_cfg =
            StapConfig { access: CubeAccess::OutOfCore { chunk_rows: 8 }, ..scenario.config() };
        let cube = ooc_cfg.dims.bytes() as u64;
        let ooc = run(ooc_cfg);
        assert_eq!(keys(&resident), keys(&ooc), "{name}: out-of-core changed detections");
        assert!(
            resident.reports.iter().map(|r| r.detections.len()).sum::<usize>() > 0,
            "{name}: parity must be over real detections"
        );
        let st = ooc.store.expect("out-of-core run reports tier counters");
        let (peak, bound) = st.footprint.expect("out-of-core run meters scratch");
        assert!(peak <= bound, "{name}: scratch peak {peak} exceeded bound {bound}");
        assert!(cube >= 4 * bound, "{name}: cube {cube} not >= 4x bound {bound}");
    }
}

#[test]
fn cached_run_matches_plain_run_and_reports_the_tier() {
    let plain = run(StapConfig::default());
    assert!(plain.store.is_none(), "plain resident run must not report a storage tier");
    assert!(!plain.run_report_json().contains("\"store\""));

    let cached = run(StapConfig { io: IoStrategy::Cached { mb: 8 }, ..StapConfig::default() });
    assert_eq!(keys(&plain), keys(&cached), "the server cache changed detections");
    let st = cached.store.expect("cached run reports tier counters");
    assert!(st.hits > 0, "8 MiB over a 1 MiB working set must produce repeat hits");
    assert_eq!(st.footprint, None, "resident access needs no scratch meter");
    let json = cached.run_report_json();
    assert!(json.contains("\"store\""), "run report gains the store section:\n{json}");
    assert!(json.contains("\"cache_hits\""), "store section carries counters:\n{json}");
}
