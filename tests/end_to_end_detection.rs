//! End-to-end integration: the real pipeline, on threads, from synthetic
//! radar scene through the striped file system to detection reports.

use stap_core::config::{NodeCounts, StapConfig};
use stap_core::{IoStrategy, StapSystem, TailStructure};
use stap_kernels::report::DetectionReport;
use stap_pfs::FsConfig;
use stap_radar::{Scene, Target};

/// A scene with two strong, well-separated targets (one in an easy bin, one
/// in a hard bin) and no clutter/jammer, so detection is unambiguous.
fn two_target_scene() -> Scene {
    Scene {
        targets: vec![
            Target { range_gate: 30, doppler: 0.25, spatial_freq: 0.10, snr_db: 25.0 },
            Target { range_gate: 90, doppler: 0.02, spatial_freq: -0.10, snr_db: 25.0 },
        ],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    }
}

fn base_config() -> StapConfig {
    StapConfig { scene: two_target_scene(), cpis: 5, warmup: 1, ..StapConfig::default() }
}

fn gates_detected(report: &DetectionReport) -> Vec<usize> {
    let clustered = report.cluster(4);
    let mut gates: Vec<usize> = clustered.detections.iter().map(|d| d.range).collect();
    gates.sort_unstable();
    gates.dedup();
    gates
}

fn assert_targets_found(reports: &[DetectionReport], label: &str) {
    assert!(!reports.is_empty(), "{label}: no reports");
    // Skip CPI 0 (cold-start uniform weights).
    for r in reports.iter().filter(|r| r.cpi >= 1) {
        let gates = gates_detected(r);
        assert!(
            gates.iter().any(|&g| (28..=34).contains(&g)),
            "{label}: easy target missed in CPI {} (gates {gates:?})",
            r.cpi
        );
        assert!(
            gates.iter().any(|&g| (88..=94).contains(&g)),
            "{label}: hard target missed in CPI {} (gates {gates:?})",
            r.cpi
        );
    }
}

#[test]
fn embedded_io_pipeline_detects_targets() {
    let sys = StapSystem::prepare(base_config()).unwrap();
    let out = sys.run().unwrap();
    assert_eq!(out.reports.len(), 5);
    assert_targets_found(&out.reports, "embedded");
    assert!(out.throughput() > 0.0);
    assert!(out.latency() > 0.0);
}

#[test]
fn separate_io_pipeline_detects_targets() {
    let cfg = StapConfig { io: IoStrategy::SeparateTask, ..base_config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "separate");
}

#[test]
fn combined_tail_pipeline_detects_targets() {
    let cfg = StapConfig { tail: TailStructure::Combined, ..base_config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "combined");
}

#[test]
fn all_three_structures_agree_on_detections() {
    // Same seed + same scene: the three pipeline structures must produce
    // identical clustered detections (structure changes scheduling, not
    // arithmetic).
    let run = |io, tail| {
        let cfg = StapConfig { io, tail, ..base_config() };
        let sys = StapSystem::prepare(cfg).unwrap();
        sys.run().unwrap().reports
    };
    let a = run(IoStrategy::Embedded, TailStructure::Split);
    let b = run(IoStrategy::SeparateTask, TailStructure::Split);
    let c = run(IoStrategy::Embedded, TailStructure::Combined);
    for cpi in 1..5usize {
        let ga = gates_detected(&a[cpi]);
        let gb = gates_detected(&b[cpi]);
        let gc = gates_detected(&c[cpi]);
        assert_eq!(ga, gb, "embedded vs separate at CPI {cpi}");
        assert_eq!(ga, gc, "split vs combined at CPI {cpi}");
    }
}

#[test]
fn piofs_sync_only_path_works() {
    // The PIOFS personality forbids async reads; the embedded Doppler task
    // must fall back to synchronous reads and still work.
    let cfg = StapConfig { fs: FsConfig::piofs(), ..base_config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "piofs");
}

#[test]
fn single_node_stages_work() {
    // Degenerate parallelism: every stage on one node.
    let cfg = StapConfig {
        nodes: NodeCounts {
            read: 1,
            doppler: 1,
            easy_weight: 1,
            hard_weight: 1,
            easy_bf: 1,
            hard_bf: 1,
            pulse: 1,
            cfar: 1,
        },
        cpis: 3,
        warmup: 1,
        ..base_config()
    };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "single-node");
}

#[test]
fn wide_stages_work() {
    // More nodes than the defaults, including node counts that do not
    // divide the bin/range counts evenly.
    let cfg = StapConfig {
        nodes: NodeCounts {
            read: 3,
            doppler: 3,
            easy_weight: 2,
            hard_weight: 3,
            easy_bf: 2,
            hard_bf: 3,
            pulse: 3,
            cfar: 2,
        },
        io: IoStrategy::SeparateTask,
        cpis: 4,
        warmup: 1,
        ..base_config()
    };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "wide");
}

#[test]
fn eigencanceler_weights_detect_targets_too() {
    use stap_kernels::weights::WeightMethod;
    let cfg =
        StapConfig { weight_method: WeightMethod::Eigencanceler { rank: None }, ..base_config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    assert_targets_found(&out.reports, "eigencanceler");
}

#[test]
fn recorded_reports_round_trip_through_the_pfs() {
    use stap_kernels::report::DetectionReport as Report;
    use stap_pfs::OpenMode;
    let cfg = StapConfig { record_reports: true, ..base_config() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    // Every CPI's report must be readable back from the file system and
    // identical to what the sink collected.
    for report in &out.reports {
        let f = sys
            .fs()
            .open(&format!("report_{}.dat", report.cpi), OpenMode::Async)
            .expect("report file exists");
        let bytes = f.read_at(0, f.len() as usize).unwrap();
        let back = Report::from_bytes(&bytes).expect("well-formed record");
        assert_eq!(back.cpi, report.cpi);
        assert_eq!(back.detections, report.detections);
    }
}

#[test]
fn jammed_cluttered_scene_still_detects_after_adaptation() {
    // The benchmark scene has a 25 dB jammer and 30 dB clutter; adaptive
    // weights (from CPI ≥ 1) must null them well enough to find both
    // targets.
    let cfg =
        StapConfig { scene: Scene::benchmark_small(), cpis: 5, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg).unwrap();
    let out = sys.run().unwrap();
    for r in out.reports.iter().filter(|r| r.cpi >= 1) {
        let gates = gates_detected(r);
        assert!(
            gates.iter().any(|&g| (38..=44).contains(&g)),
            "easy target missed in CPI {} (gates {gates:?})",
            r.cpi
        );
        assert!(
            gates.iter().any(|&g| (88..=94).contains(&g)),
            "hard target missed in CPI {} (gates {gates:?})",
            r.cpi
        );
    }
}
