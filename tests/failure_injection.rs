//! Failure injection against the full real system: a faulted CPI file
//! mid-run must surface a clean error, never a hang, and the system must
//! recover once the fault clears.

use stap_core::config::StapConfig;
use stap_core::{IoStrategy, StapSystem};
use stap_pipeline::PipelineError;
use stap_radar::{Scene, Target};

fn scene() -> Scene {
    Scene {
        targets: vec![Target { range_gate: 40, doppler: 0.25, spatial_freq: 0.15, snr_db: 25.0 }],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    }
}

#[test]
fn missing_cpi_file_fails_cleanly_embedded() {
    let cfg = StapConfig { scene: scene(), cpis: 5, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg).unwrap();
    // The radar's disk develops a fault on slot 2: reads of CPI 2 fail.
    sys.fs().inject_read_fault(&StapConfig::file_name(2)).unwrap();
    let err = sys.run().unwrap_err();
    match err {
        PipelineError::Stage { stage, message } => {
            assert_eq!(stage, "Doppler filter");
            assert!(message.contains("read") || message.contains("iread"), "{message}");
        }
        PipelineError::Comm(stap_comm::CommError::Aborted) => {
            // Acceptable: a peer surfaced the error first and this one was
            // torn down — but run() prefers root causes, so reaching here
            // would mean every node aborted, which cannot happen.
            panic!("root-cause error should win over Aborted");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn missing_cpi_file_fails_cleanly_separate_task() {
    let cfg = StapConfig {
        scene: scene(),
        io: IoStrategy::SeparateTask,
        cpis: 5,
        warmup: 1,
        ..StapConfig::default()
    };
    let sys = StapSystem::prepare(cfg).unwrap();
    sys.fs().inject_read_fault(&StapConfig::file_name(1)).unwrap();
    let err = sys.run().unwrap_err();
    match err {
        PipelineError::Stage { stage, .. } => assert_eq!(stage, "parallel read"),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn separate_io_mid_run_fault_fails_cleanly_and_recovers() {
    // A fault that only bites mid-run (slot 3, hit after two clean CPIs)
    // must surface on the dedicated I/O task's read path as a typed stage
    // error — and the same system must recover once the disk is repaired.
    // The files are restriped first, exercising the new stripe axis on the
    // real read path as well.
    let base = StapConfig::default();
    let cfg = StapConfig {
        scene: scene(),
        io: IoStrategy::SeparateTask,
        cpis: 5,
        warmup: 1,
        ..StapConfig::default()
    }
    .with_stripe(stap_pfs::StripeConfig::new(base.fs.stripe_unit, base.fs.stripe_factor * 4));
    let sys = StapSystem::prepare(cfg).unwrap();
    sys.fs().inject_read_fault(&StapConfig::file_name(3)).unwrap();
    let err = sys.run().unwrap_err();
    match err {
        PipelineError::Stage { stage, message } => {
            assert_eq!(stage, "parallel read");
            assert!(message.contains("read") || message.contains("iread"), "{message}");
        }
        other => panic!("unexpected error {other:?}"),
    }

    sys.fs().clear_read_fault(&StapConfig::file_name(3)).unwrap();
    let out = sys.run().unwrap();
    assert_eq!(out.reports.len(), 5);
}

#[test]
fn system_recovers_after_restaging() {
    // Fail once, restage the lost file, run again successfully — the file
    // system and pipeline wiring hold no poisoned state.
    let cfg = StapConfig { scene: scene(), cpis: 5, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg).unwrap();
    sys.fs().inject_read_fault(&StapConfig::file_name(3)).unwrap();
    assert!(sys.run().is_err());

    // The radar "repairs" the disk.
    sys.fs().clear_read_fault(&StapConfig::file_name(3)).unwrap();

    // The SAME system must now succeed: the communication world is built
    // fresh per run (a new abort flag), and the file system holds no
    // poisoned state.
    let out = sys.run().unwrap();
    assert_eq!(out.reports.len(), 5);
}
