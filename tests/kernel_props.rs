//! Differential kernel-correctness suite: every optimized kernel path
//! (cache-blocked panels, explicit SIMD, chunked fork-join decompositions)
//! must be **bit-identical** — 0 ULP — to the always-compiled scalar
//! reference, over random shapes including non-multiple-of-block range
//! counts and degenerate single-pulse cubes.
//!
//! The optimized paths earn this by vectorizing across *independent
//! outputs* (range-gate lanes), never inside a reduction, so each output
//! element sees the exact FP operation sequence of the reference loop.
//! These tests are the contract that keeps that true.
//!
//! On top of the kernel-level differentials, the scenario section pins
//! detection-set bit-parity end to end: the full pipeline's detection
//! reports are byte-identical across kernel paths on the catalog's
//! `two-target` and `noise-only` scenarios.

use ppstap::core::config::StapConfig;
use ppstap::core::StapSystem;
use ppstap::kernels::beamform::Beamformer;
use ppstap::kernels::cube::{partition_even, CubeDims, DataCube, DopplerCube};
use ppstap::kernels::doppler::{DopplerConfig, DopplerFilter};
use ppstap::kernels::pulse::{lfm_chirp, PulseCompressor};
use ppstap::kernels::weights::WeightSet;
use ppstap::kernels::KernelPath;
use ppstap::math::C32;
use ppstap::scenario::find;
use proptest::prelude::*;

/// splitmix64: all random data is a pure function of the case seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of f32 draws in [-1, 1).
struct Draws {
    state: u64,
}

impl Draws {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn f32(&mut self) -> f32 {
        self.state = mix(self.state);
        (self.state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
    }

    fn c32(&mut self) -> C32 {
        C32::new(self.f32(), self.f32())
    }
}

fn random_cube(dims: CubeDims, d: &mut Draws) -> DataCube {
    let mut cube = DataCube::zeros(dims);
    for v in cube.as_mut_slice() {
        *v = d.c32();
    }
    cube
}

fn assert_doppler_bits_equal(a: &DopplerCube, b: &DopplerCube, what: &str) {
    assert_eq!(a.as_slice().len(), b.as_slice().len(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: sample {i} differs: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Doppler: blocked, SIMD, and compact-chunk+stitch outputs are
    /// bit-identical to the scalar reference, easy and staggered paths,
    /// over random shapes (single-pulse cubes included).
    #[test]
    fn doppler_paths_are_bit_identical(
        seed in 0u64..u64::MAX,
        pulses in 1usize..21,
        channels in 1usize..5,
        ranges in 1usize..71,
        parts in 1usize..6,
    ) {
        let mut d = Draws::new(seed);
        let cube = random_cube(CubeDims::new(pulses, channels, ranges), &mut d);
        let cfg = DopplerConfig {
            stagger_offset: if pulses > 1 { 1 } else { 0 },
            ..DopplerConfig::default()
        };
        let filter = DopplerFilter::new(pulses, cfg);

        type FullFn = fn(&DopplerFilter, &DataCube, KernelPath) -> DopplerCube;
        type ChunkFn = fn(&DopplerFilter, &DataCube, usize, usize) -> DopplerCube;
        let variants: [(FullFn, ChunkFn); 2] = [
            (|f, c, p| f.filter_easy_with(c, p), |f, c, r0, r1| f.filter_easy_chunk(c, r0, r1)),
            (
                |f, c, p| f.filter_staggered_with(c, p),
                |f, c, r0, r1| f.filter_staggered_chunk(c, r0, r1),
            ),
        ];
        for (full, chunk) in variants {
            let reference = full(&filter, &cube, KernelPath::Reference);
            for path in [KernelPath::Blocked, KernelPath::Simd, KernelPath::Auto] {
                let fast = full(&filter, &cube, path);
                assert_doppler_bits_equal(&reference, &fast, &format!("{path}"));
            }
            // Compact chunks stitched back in range order — the steal
            // executor's decomposition — reproduce the same bits no
            // matter where the chunk boundaries fall.
            let mut stitched = DopplerCube::zeros(
                reference.staggers(),
                reference.bins(),
                reference.channels(),
                reference.ranges(),
            );
            for (r0, r1) in partition_even(ranges, parts.min(ranges)) {
                stitched.copy_range_from(&chunk(&filter, &cube, r0, r1), r0);
            }
            assert_doppler_bits_equal(&reference, &stitched, "chunk stitch");
        }
    }

    /// Beamforming: blocked and SIMD weighted sums are bit-identical to
    /// the scalar reference under random weights, shapes, and stagger
    /// counts.
    #[test]
    fn beamform_paths_are_bit_identical(
        seed in 0u64..u64::MAX,
        channels in 1usize..9,
        ranges in 1usize..71,
        nbins in 1usize..7,
        beams in 1usize..4,
        staggers in 1usize..3,
    ) {
        let mut d = Draws::new(seed);
        let mut cube = DopplerCube::zeros(staggers, nbins, channels, ranges);
        for v in cube.as_mut_slice() {
            *v = d.c32();
        }
        let dof = staggers * channels;
        let bins: Vec<usize> = (0..nbins).collect();
        let weights: Vec<Vec<Vec<C32>>> = bins
            .iter()
            .map(|_| (0..beams).map(|_| (0..dof).map(|_| d.c32()).collect()).collect())
            .collect();
        let ws = WeightSet { bins, weights, dof };

        let reference = Beamformer.apply_with(&cube, &ws, KernelPath::Reference);
        for path in [KernelPath::Blocked, KernelPath::Simd, KernelPath::Auto] {
            let fast = Beamformer.apply_with(&cube, &ws, path);
            prop_assert_eq!(reference.rows_total(), fast.rows_total());
            for beam in 0..beams {
                for (i, _) in reference.bins.iter().enumerate() {
                    for (r, (x, y)) in
                        reference.row(beam, i).iter().zip(fast.row(beam, i)).enumerate()
                    {
                        prop_assert!(
                            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                            "{} beam {} bin {} gate {}: {:?} vs {:?}",
                            path, beam, i, r, x, y
                        );
                    }
                }
            }
        }
    }

    /// Pulse compression: the batched panel kernel is bit-identical to the
    /// per-row reference, and row-chunk boundaries (the steal executor's
    /// decomposition) never change any row's bits.
    #[test]
    fn pulse_paths_are_bit_identical(
        seed in 0u64..u64::MAX,
        ranges in 2usize..81,
        rows in 1usize..21,
        wf_len in 2usize..17,
        chunk_rows in 1usize..8,
    ) {
        let mut d = Draws::new(seed);
        let wf = lfm_chirp(wf_len.min(ranges), 0.8);
        let pc = PulseCompressor::new(ranges, &wf);
        let data: Vec<C32> = (0..rows * ranges).map(|_| d.c32()).collect();

        let mut reference = data.clone();
        pc.compress_rows(&mut reference, ranges, KernelPath::Reference);

        for path in [KernelPath::Blocked, KernelPath::Simd, KernelPath::Auto] {
            let mut fast = data.clone();
            pc.compress_rows(&mut fast, ranges, path);
            for (i, (x, y)) in reference.iter().zip(&fast).enumerate() {
                prop_assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "{} sample {}: {:?} vs {:?}",
                    path, i, x, y
                );
            }
        }

        // Chunked: compress row chunks independently, as the steal pool
        // does, and compare against the whole-batch result.
        let mut chunked = data.clone();
        for chunk in chunked.chunks_mut(ranges * chunk_rows) {
            pc.compress_rows(chunk, ranges, KernelPath::Blocked);
        }
        for (i, (x, y)) in reference.iter().zip(&chunked).enumerate() {
            prop_assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "chunked sample {}: {:?} vs {:?}",
                i, x, y
            );
        }
    }
}

/// Detection reports of a full pipeline run, flattened to bytes.
fn report_bytes(cfg: StapConfig) -> Vec<u8> {
    let out = StapSystem::prepare(cfg).unwrap().run().unwrap();
    assert!(!out.reports.is_empty());
    out.reports.iter().flat_map(|r| r.to_bytes()).collect()
}

/// End-to-end detection-set bit-parity: the kernel path must never change
/// a single detection on the catalog's `two-target` (real targets through
/// both the easy and hard chains) and `noise-only` (false-alarm behavior)
/// scenarios.
#[test]
fn detection_sets_are_bit_identical_across_kernel_paths() {
    for name in ["two-target", "noise-only"] {
        let base = find(name).expect("catalog scenario").config();
        let scalar =
            report_bytes(StapConfig { kernel_path: KernelPath::Reference, ..base.clone() });
        for path in [KernelPath::Blocked, KernelPath::Simd, KernelPath::Auto] {
            let fast = report_bytes(StapConfig { kernel_path: path, ..base.clone() });
            assert_eq!(scalar, fast, "{name}: {path} detections differ from scalar");
        }
    }
}
