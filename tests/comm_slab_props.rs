//! Property suite for the zero-copy slab data plane: the arena-backed
//! buffer pool in `stap-comm` and its end-to-end A/B contract against the
//! `--copy-comm` baseline.
//!
//! Invariants:
//! 1. **Conservation** — every buffer the pool hands out is either live or
//!    back on a free list; the outstanding counter always equals the number
//!    of live pooled buffers, and dropping the last one leaves nothing
//!    leaked.
//! 2. **No use-after-recycle** — a recycled buffer's storage is poisoned in
//!    debug builds, so stale reads surface as NaN-patterned garbage instead
//!    of silently-valid old samples.
//! 3. **A/B parity** — a 3-CPI pipeline run produces byte-identical
//!    detection reports with the zero-copy data plane and with `--copy-comm`
//!    deep copies, and with static and work-stealing scheduling.

use ppstap::comm::{PoolVec, SlabPool};
use ppstap::core::config::StapConfig;
use ppstap::core::{ScheduleMode, StapSystem};
use ppstap::math::C32;
use ppstap::scenario::find;
use proptest::prelude::*;

/// splitmix64 driving the op sequence.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Draws {
    state: u64,
}

impl Draws {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state = mix(self.state);
        self.state % bound.max(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation under a random interleaving of takes, drops, clones,
    /// and freezes: the outstanding counter tracks live pooled buffers
    /// exactly, and a fully drained pool reports zero outstanding.
    #[test]
    fn pool_conserves_buffers_under_random_op_sequences(
        seed in 0u64..u64::MAX,
        ops in 1usize..60,
    ) {
        let mut d = Draws::new(seed);
        let pool: SlabPool<f32> = SlabPool::new();
        let mut live: Vec<PoolVec<f32>> = Vec::new();
        let mut frozen = Vec::new();
        for _ in 0..ops {
            match d.next(4) {
                0 => {
                    let cap = 1 + d.next(300) as usize;
                    let buf = pool.take_filled(cap, 0.5);
                    prop_assert!(buf.capacity() >= cap);
                    prop_assert_eq!(buf.len(), cap);
                    live.push(buf);
                }
                1 => {
                    if !live.is_empty() {
                        let i = d.next(live.len() as u64) as usize;
                        drop(live.swap_remove(i));
                    }
                }
                2 => {
                    if !live.is_empty() {
                        let i = d.next(live.len() as u64) as usize;
                        let c = live[i].clone();
                        prop_assert_eq!(&*c, &*live[i]);
                        live.push(c);
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let i = d.next(live.len() as u64) as usize;
                        frozen.push(live.swap_remove(i).freeze());
                    }
                }
            }
            // Frozen slabs still hold pool storage until every clone drops.
            prop_assert_eq!(
                pool.stats().outstanding,
                (live.len() + frozen.len()) as u64,
                "outstanding != live pooled buffers"
            );
        }
        drop(live);
        drop(frozen);
        let stats = pool.stats();
        prop_assert_eq!(stats.outstanding, 0, "drained pool leaked buffers");
        prop_assert_eq!(stats.takes, stats.fresh + stats.recycled);
    }

    /// Recycling really reuses storage: with one size class in play, a
    /// take-drop-take cycle comes back from the free list, not malloc.
    #[test]
    fn takes_after_drops_are_recycles(seed in 0u64..u64::MAX, cap in 1usize..200) {
        let _ = seed;
        let pool: SlabPool<C32> = SlabPool::new();
        let first = pool.take(cap);
        drop(first);
        let second = pool.take(cap);
        prop_assert_eq!(pool.stats().recycled, 1, "second take of the class must recycle");
        drop(second);
        prop_assert_eq!(pool.stats().outstanding, 0);
    }
}

/// A recycled buffer's storage is poisoned (debug builds): nothing the
/// previous owner wrote survives into the next take of the class.
#[cfg(debug_assertions)]
#[test]
fn recycled_storage_never_leaks_previous_contents() {
    let pool: SlabPool<f32> = SlabPool::new();
    let mut buf = pool.take(64);
    buf.extend_from_slice(&[7.0; 64]);
    let ptr = buf.as_ptr();
    drop(buf);
    // Same size class: this take recycles the dropped buffer's storage.
    let again = pool.take(64);
    assert_eq!(pool.stats().recycled, 1);
    assert_eq!(again.as_ptr(), ptr, "expected storage reuse");
    // The pool hands buffers out empty; inspect the raw prefix the previous
    // owner wrote (initialized memory — recycle overwrote it with the
    // poison pattern before parking) to prove the old samples are gone.
    let prefix: &[f32] = unsafe { std::slice::from_raw_parts(again.as_ptr(), 64) };
    assert!(
        prefix.iter().all(|v| v.to_bits() != 7.0f32.to_bits()),
        "previous owner's samples survived recycling"
    );
    assert!(prefix.iter().all(|v| v.is_nan()), "recycled storage is not poison-NaN");
}

/// Detection reports of a 3-CPI two-target run, flattened to bytes.
fn report_bytes(cfg: StapConfig) -> Vec<u8> {
    let out = StapSystem::prepare(cfg).unwrap().run().unwrap();
    assert_eq!(out.reports.len(), 3);
    out.reports.iter().flat_map(|r| r.to_bytes()).collect()
}

fn three_cpi_config() -> StapConfig {
    StapConfig { cpis: 3, warmup: 1, ..find("two-target").expect("catalog").config() }
}

/// The zero-copy data plane is an optimization, not a semantic: reports
/// are byte-identical with and without `--copy-comm`.
#[test]
fn copy_comm_and_zero_copy_reports_are_byte_identical() {
    let zero_copy = report_bytes(three_cpi_config());
    let copied = report_bytes(StapConfig { copy_comm: true, ..three_cpi_config() });
    assert_eq!(zero_copy, copied, "copy-comm changed the detection reports");
}

/// Work-stealing is a schedule, not a semantic: reports are byte-identical
/// under static and steal scheduling (the stolen chunks stitch in
/// deterministic range order).
#[test]
fn static_and_steal_reports_are_byte_identical() {
    let statics = report_bytes(three_cpi_config());
    let stolen = report_bytes(StapConfig { schedule: ScheduleMode::Steal, ..three_cpi_config() });
    assert_eq!(statics, stolen, "steal scheduling changed the detection reports");
}
