//! Property-based span invariants under randomized fault schedules: the
//! tracer's structural guarantees must survive retries, backoff pauses,
//! and skipped CPIs, not just clean runs.
//!
//! Per seeded `FaultPlan` schedule (the chaos suite's generator, run under
//! a retry or skip policy and the deterministic virtual clock):
//! 1. spans on one `(stage, node)` track are monotone and non-overlapping,
//! 2. every span nests inside its CPI's record interval, and the record's
//!    per-phase sums equal its spans' durations (proper nesting — recovered
//!    retry time lands in attempt-keyed `Read` and `Backoff` spans, never
//!    double-counted),
//! 3. the read-bearing stage opens *exactly one* attempt-0 `Read` span per
//!    node per CPI — dropped CPIs included, because the drop decision comes
//!    after the traced read attempt.

use proptest::prelude::*;
use stap_core::config::{FailurePolicy, RetryPolicy, StapConfig, WatchdogPolicy};
use stap_core::{IoStrategy, ScheduleMode, StapSystem};
use stap_kernels::cube::CubeDims;
use stap_pfs::{Fault, FaultPlan, FaultWindow};
use stap_pipeline::timing::Phase;
use stap_pipeline::ClockSpec;
use stap_radar::{Scene, Target};
use std::time::Duration;

const CPIS: u64 = 4;

/// splitmix64: the fault schedule is a pure function of the case seed.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of bounded draws derived from one seed.
struct Draws {
    state: u64,
}

impl Draws {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state = mix(self.state);
        self.state % bound.max(1)
    }
}

fn tiny_config(
    io: IoStrategy,
    policy: FailurePolicy,
    plan: FaultPlan,
    schedule: ScheduleMode,
) -> StapConfig {
    StapConfig {
        dims: CubeDims::new(16, 4, 64),
        scene: Scene {
            targets: vec![Target {
                range_gate: 20,
                doppler: 0.25,
                spatial_freq: 0.15,
                snr_db: 25.0,
            }],
            jammers: vec![],
            clutter: None,
            noise_power: 1.0,
        },
        io,
        cpis: CPIS,
        warmup: 1,
        fanout: 2,
        failure_policy: policy,
        fault_plan: Some(plan),
        watchdog: Some(WatchdogPolicy::default()),
        schedule,
        ..StapConfig::default()
    }
}

/// Builds 1–3 faults of mixed kinds from the case seed (the chaos suite's
/// schedule, minus `FileUnavailable`-forever which no retry policy can
/// outlive — aborted runs produce no report to check invariants on).
fn random_plan(seed: u64) -> FaultPlan {
    let mut d = Draws::new(seed);
    let mut plan = FaultPlan::new(seed);
    let count = 1 + d.next(3);
    for _ in 0..count {
        let file = StapConfig::file_name(d.next(2) as usize);
        let from = d.next(CPIS);
        let until = from + 1 + d.next(CPIS - from);
        let window = FaultWindow::new(from, until);
        plan = plan.with(match d.next(4) {
            0 => Fault::Transient { file, fail_attempts: 1 + d.next(3) as u32, window },
            1 => Fault::Flaky { file, p: d.next(8) as f64 / 10.0, window },
            2 => Fault::ServerUnavailable { server: d.next(16) as usize, window },
            _ => Fault::SlowRead { file, delay: Duration::from_millis(1 + d.next(4)), window },
        });
    }
    plan
}

fn retry_or_skip(choice: usize) -> FailurePolicy {
    if choice == 0 {
        FailurePolicy::Retry(RetryPolicy::new(3, Duration::from_millis(1)))
    } else {
        FailurePolicy::SkipCpi {
            retry: RetryPolicy::new(1, Duration::from_millis(1)),
            max_consecutive: CPIS as u32 + 1,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn span_invariants_hold_under_fault_schedules(
        seed in 0u64..u64::MAX,
        io_choice in 0usize..2,
        policy_choice in 0usize..2,
        schedule_choice in 0usize..2,
    ) {
        let io = if io_choice == 0 { IoStrategy::Embedded } else { IoStrategy::SeparateTask };
        let schedule =
            if schedule_choice == 0 { ScheduleMode::Static } else { ScheduleMode::Steal };
        let cfg = tiny_config(io, retry_or_skip(policy_choice), random_plan(seed), schedule);
        let sys = StapSystem::prepare(cfg).unwrap();
        // A schedule the policy cannot outlive (e.g. a server down for the
        // whole run under plain Retry) aborts with a typed error; there is
        // no report left to check invariants on.
        let Ok(out) = sys.run_with_clock(ClockSpec::virtual_default()) else { continue };
        let report = &out.timing;

        for (stage, nodes) in report.records.iter().enumerate() {
            for (node, recs) in nodes.iter().enumerate() {
                let track: Vec<_> = report
                    .spans
                    .iter()
                    .filter(|s| s.stage == stage && s.node == node)
                    .collect();
                // (1) Monotone, non-overlapping along the track.
                for w in track.windows(2) {
                    prop_assert!(
                        w[1].start >= w[0].end - 1e-12,
                        "overlap on stage {} node {}: {:?} then {:?}",
                        stage, node, w[0], w[1]
                    );
                }
                // (2) Nesting and per-phase reconciliation per CPI record.
                for r in recs {
                    let mut by_phase = [0.0f64; Phase::COUNT];
                    for s in track.iter().filter(|s| s.cpi == r.cpi) {
                        prop_assert!(
                            s.start >= r.start - 1e-12 && s.end <= r.end + 1e-12,
                            "span escapes its CPI on stage {} node {}: {:?}",
                            stage, node, s
                        );
                        by_phase[s.phase.index()] += s.secs();
                    }
                    for p in Phase::ALL {
                        prop_assert!(
                            (by_phase[p.index()] - r.phase(p)).abs() < 1e-9,
                            "stage {} node {} cpi {}: {:?} span sum {} != record {}",
                            stage, node, r.cpi, p, by_phase[p.index()], r.phase(p)
                        );
                    }
                }
            }
        }

        // (3) Exactly one attempt-0 Read span per read-bearing node per CPI
        // (stage 0 reads under both I/O designs), no matter how many
        // retries or drops the schedule forced.
        for (node, recs) in report.records[0].iter().enumerate() {
            for r in recs {
                let zero_attempts = report
                    .spans
                    .iter()
                    .filter(|s| {
                        s.stage == 0
                            && s.node == node
                            && s.cpi == r.cpi
                            && s.phase == Phase::Read
                            && s.attempt == 0
                    })
                    .count();
                prop_assert_eq!(
                    zero_attempts, 1,
                    "node {} cpi {}: expected exactly one attempt-0 Read span",
                    node, r.cpi
                );
            }
        }

        // The work-stealing executor must be visible in the trace: any CPI
        // that produced a report ran the Doppler fork-join, so a completed
        // steal-mode run always carries Steal-phase spans (and a static
        // run never does).
        let has_steal = report.spans.iter().any(|s| s.phase == Phase::Steal);
        if schedule == ScheduleMode::Steal && !out.reports.is_empty() {
            prop_assert!(has_steal, "steal schedule completed CPIs but traced no Steal spans");
        }
        if schedule == ScheduleMode::Static {
            prop_assert!(!has_steal, "static schedule must not trace Steal spans");
        }

        // Retried time must be visible: if the run recorded retries, some
        // span carries a non-zero attempt or a Backoff phase.
        if out.retries > 0 {
            prop_assert!(
                report.spans.iter().any(|s| s.attempt > 0 || s.phase == Phase::Backoff),
                "{} retries recorded but no retry/backoff spans traced",
                out.retries
            );
        }
    }
}
