//! Integration assertions that the regenerated evaluation reproduces the
//! *shape* of the paper's results: who wins, by roughly what factor, and
//! where the crossovers fall.

use stap_core::experiments::{fig8_from, table1, table2, table3, table4_from};

mod util {
    pub use stap_core::experiments::tables::Table;

    /// cells[machine][case] → value grid.
    pub fn grid(t: &Table, f: impl Fn(&stap_core::DesResult) -> f64) -> Vec<Vec<f64>> {
        t.cells.iter().map(|row| row.iter().map(&f).collect()).collect()
    }
}

use util::grid;

#[test]
fn evaluation_shape_matches_paper() {
    // Run each grid once and check every claim against the same data
    // (machine order: Paragon sf=16, Paragon sf=64, SP PIOFS).
    let t1 = table1();
    let t2 = table2();
    let t3 = table3();

    let tput1 = grid(&t1, |c| c.throughput);
    let lat1 = grid(&t1, |c| c.latency);

    // §5.1 claim 1: with sf=64 both throughput and latency show near-linear
    // speedup across the three cases.
    for w in tput1[1].windows(2) {
        assert!(w[1] / w[0] > 1.5, "sf=64 throughput scaling broke: {w:?}");
    }
    for w in lat1[1].windows(2) {
        assert!(w[1] / w[0] < 0.7, "sf=64 latency scaling broke: {w:?}");
    }

    // §5.1 claim 2: sf=16 matches sf=64 in the first two cases and
    // degrades in the third (the I/O bottleneck).
    for (case, (small, large)) in tput1[0].iter().zip(&tput1[1]).take(2).enumerate() {
        let ratio = small / large;
        assert!(ratio > 0.9, "sf=16 degraded too early (case {case}: {ratio})");
    }
    let ratio_big = tput1[0][2] / tput1[1][2];
    assert!(ratio_big < 0.8, "sf=16 bottleneck missing at 100 nodes ({ratio_big})");

    // §5.1 claim 3: the bottleneck does NOT significantly affect latency.
    assert!(
        lat1[0][2] / lat1[1][2] < 1.35,
        "sf=16 latency blew up: {} vs {}",
        lat1[0][2],
        lat1[1][2]
    );

    // §5.1 claim 4: the SP (sync-only PIOFS) does not scale like the
    // Paragon despite faster CPUs.
    let sp_speedup = tput1[2][2] / tput1[2][0];
    let pg_speedup = tput1[1][2] / tput1[1][0];
    assert!(
        sp_speedup < 0.7 * pg_speedup,
        "SP scaled too well: {sp_speedup} vs Paragon {pg_speedup}"
    );

    // §5.2 claims: separate-I/O throughput ≈ embedded on the Paragon, and
    // latency strictly worse everywhere (Eq. 4 has one more term).
    let tput2 = grid(&t2, |c| c.throughput);
    let lat2 = grid(&t2, |c| c.latency);
    for m in 0..2 {
        for case in 0..3 {
            let r = tput2[m][case] / tput1[m][case];
            assert!((0.8..1.25).contains(&r), "throughput moved too much: m={m} case={case} {r}");
        }
    }
    for m in 0..3 {
        for case in 0..3 {
            assert!(
                lat2[m][case] > lat1[m][case],
                "separate-I/O latency must be worse: m={m} case={case}"
            );
        }
    }

    // §6 claims: combining PC+CFAR improves latency in ALL cases on ALL
    // file systems, leaves throughput essentially unchanged, and the
    // improvement percentage decreases as nodes grow (Table 4).
    let tput3 = grid(&t3, |c| c.throughput);
    let lat3 = grid(&t3, |c| c.latency);
    for m in 0..3 {
        for case in 0..3 {
            assert!(lat3[m][case] < lat1[m][case], "combining didn't help: m={m} case={case}");
            let r = tput3[m][case] / tput1[m][case];
            assert!(r > 0.95, "combining hurt throughput: m={m} case={case} {r}");
        }
    }
    let t4 = table4_from(&t1, &t3);
    for (m, row) in t4.improvement_pct.iter().enumerate() {
        assert!(row.iter().all(|&v| v > 0.0), "negative improvement on machine {m}");
        assert!(
            row[0] >= row[1] && row[1] >= row[2],
            "improvement should shrink with node count: machine {m} {row:?}"
        );
        // Same magnitude band as the paper's Table 4 (≈5–12 %).
        assert!(
            row.iter().all(|&v| (1.0..25.0).contains(&v)),
            "improvement magnitude off: machine {m} {row:?}"
        );
    }

    // Fig. 8 packaging sanity: 6-task grid has 6 task rows, 7-task grid 7.
    let f8 = fig8_from(t1, t3);
    assert_eq!(f8.split.cells[0][0].tasks.len(), 7);
    assert_eq!(f8.combined.cells[0][0].tasks.len(), 6);

    // Table 2's totals include the dedicated readers.
    assert_eq!(t2.cells[0][0].total_nodes, 25 + 4);
    assert_eq!(t2.cells[0][0].tasks.len(), 8);
}

#[test]
fn hard_weight_task_gets_most_nodes_in_every_cell() {
    // The paper's tables assign the hard weight task the largest share.
    let t1 = table1();
    for row in &t1.cells {
        for cell in row {
            let hw = cell.tasks.iter().find(|t| t.label == "hard weight").expect("hard weight row");
            for t in &cell.tasks {
                assert!(hw.nodes >= t.nodes, "{} has {} > {}", t.label, t.nodes, hw.nodes);
            }
        }
    }
}

#[test]
fn io_utilization_tracks_stripe_factor() {
    let t1 = table1();
    // At 100 nodes: sf=16 servers run far hotter than sf=64's.
    let sf16 = &t1.cells[0][2];
    let sf64 = &t1.cells[1][2];
    assert!(sf16.io_utilization > 2.0 * sf64.io_utilization);
}
