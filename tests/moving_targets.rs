//! Multi-CPI integration: a drifting target tracked across CPIs through
//! the real pipeline, with per-slot staged files regenerated per CPI batch.
//!
//! The staged-file discipline (4 round-robin files, rewritten by the radar)
//! means the pipeline sees each slot's cube repeatedly within a 4-CPI
//! window; this test stages *drifting* cubes so the detections must walk in
//! range across slots.

use stap_core::config::StapConfig;
use stap_core::StapSystem;
use stap_kernels::cube::DataCube;
use stap_pfs::OpenMode;
use stap_radar::{CubeGenerator, Scene, Target, TargetDrift};

#[test]
fn drifting_target_detections_walk_in_range() {
    let scene = Scene {
        targets: vec![Target { range_gate: 20, doppler: 0.25, spatial_freq: 0.1, snr_db: 25.0 }],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    };
    let cfg = StapConfig { scene: scene.clone(), cpis: 4, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg.clone()).unwrap();

    // Restage the four slot files with a drifting target: slot k holds the
    // cube for CPI k, with the target at gate 20 + 8k.
    let mut gen = CubeGenerator::new(cfg.dims, scene, cfg.waveform_len, cfg.seed)
        .with_drift(vec![TargetDrift { gates_per_cpi: 8.0, doppler_per_cpi: 0.0 }]);
    for slot in 0..cfg.fanout {
        let f = sys.fs().open(&StapConfig::file_name(slot), OpenMode::Async).unwrap();
        let cube: DataCube = gen.next_cube();
        f.write_at(0, &cube.to_range_major_bytes()).expect("staging write");
    }

    let out = sys.run().unwrap();
    for report in out.reports.iter().filter(|r| r.cpi >= 1) {
        let expected_gate = 20 + 8 * report.cpi as usize;
        let clustered = report.cluster(4);
        assert!(
            clustered.detections.iter().any(|d| d.range.abs_diff(expected_gate) <= 3),
            "CPI {}: no detection near gate {expected_gate}; got {:?}",
            report.cpi,
            clustered.detections.iter().map(|d| d.range).collect::<Vec<_>>()
        );
        // And no detection lingering at the ORIGINAL gate once it moved away.
        if report.cpi >= 2 {
            assert!(
                !clustered.detections.iter().any(|d| d.range.abs_diff(20) <= 2),
                "CPI {}: stale detection at the launch gate",
                report.cpi
            );
        }
    }
}

#[test]
fn restaged_files_change_what_the_pipeline_sees() {
    // Sanity for the staging discipline itself: after overwriting slot 0
    // with a different cube, a rerun detects the new target, not the old.
    let scene_a = Scene {
        targets: vec![Target { range_gate: 30, doppler: 0.3, spatial_freq: 0.15, snr_db: 25.0 }],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    };
    let scene_b = Scene {
        targets: vec![Target { range_gate: 100, doppler: 0.3, spatial_freq: 0.15, snr_db: 25.0 }],
        ..scene_a.clone()
    };
    let cfg = StapConfig { scene: scene_a, cpis: 3, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg.clone()).unwrap();
    let first = sys.run().unwrap();
    assert!(first.reports[1].detections.iter().any(|d| d.range.abs_diff(30) <= 3));

    // The radar overwrites every slot with scene B cubes.
    let mut gen = CubeGenerator::new(cfg.dims, scene_b, cfg.waveform_len, 99);
    for slot in 0..cfg.fanout {
        let f = sys.fs().open(&StapConfig::file_name(slot), OpenMode::Async).unwrap();
        f.write_at(0, &gen.next_cube().to_range_major_bytes()).expect("staging write");
    }
    let second = sys.run().unwrap();
    let report = &second.reports[1];
    assert!(
        report.detections.iter().any(|d| d.range.abs_diff(100) <= 3),
        "new target missed: {:?}",
        report.detections.iter().map(|d| d.range).collect::<Vec<_>>()
    );
    assert!(
        !report.detections.iter().any(|d| d.range.abs_diff(30) <= 2),
        "old target should be gone"
    );
}
