//! Metamorphic properties of the detection plane, checked through the
//! real seven-task pipeline via the scenario evaluator:
//!
//! - Pd is non-decreasing in target SNR (checked with a large SNR step so
//!   finite-sample noise cannot fake a violation);
//! - on noise-only scenes the measured Pfa stays within a binomial
//!   confidence bound of the CFAR design point, whatever the seed;
//! - the detection set is bit-identical under `--source file` vs
//!   `--source stream` and under every I/O-strategy choice (embedded vs
//!   separate I/O nodes, split vs combined tail, file-system personality,
//!   staging fanout, ring depth) — the strategies move *when* data is
//!   read, never *what* is computed.

use ppstap::core::config::StapConfig;
use ppstap::core::{IoStrategy, SourceSpec, StapSystem, StreamSettings, TailStructure};
use ppstap::pipeline::ClockSpec;
use ppstap::scenario::{evaluate, find};
use proptest::prelude::*;

/// Sorted (cpi, beam, bin, range, power-bits) keys of every detection —
/// the exact-equality fingerprint of a run's detection set.
type DetectionKeys = Vec<(u64, Vec<(usize, usize, usize, u64)>)>;

fn detection_keys(reports: &[ppstap::kernels::DetectionReport]) -> DetectionKeys {
    reports
        .iter()
        .map(|r| {
            let mut dets: Vec<_> =
                r.detections.iter().map(|d| (d.beam, d.bin, d.range, d.power.to_bits())).collect();
            dets.sort_unstable();
            (r.cpi, dets)
        })
        .collect()
}

fn run_keys(cfg: StapConfig) -> DetectionKeys {
    let sys = StapSystem::prepare(cfg).expect("system prepares");
    let out = sys.run_with_clock(ClockSpec::virtual_default()).expect("run completes");
    detection_keys(&out.reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Raising every target's SNR by a large step never lowers Pd. The
    /// base SNR spans the detection knee (measured between -6 and -4 dB
    /// on the low-snr scene) and the boosted SNR is capped at 8 dB:
    /// beyond ~16 dB a target dominates its own covariance training and
    /// the resulting self-null can cost detections — a real, documented
    /// property of the pipeline (see `truth_gates`) that breaks strict
    /// monotonicity, not a sampling artifact. The step (>= 10 dB) is far
    /// larger than the Pd noise floor of a 4-CPI sample.
    #[test]
    fn pd_is_non_decreasing_in_snr(snr in -20.0f64..-6.0, step in 10.0f64..14.0) {
        let base = find("low-snr").expect("catalog has low-snr");
        let weak = evaluate(&base.clone().with_snr_db(snr)).expect("weak evaluates");
        let strong = evaluate(&base.with_snr_db(snr + step)).expect("strong evaluates");
        let (pd_weak, pd_strong) =
            (weak.pd().expect("has truth"), strong.pd().expect("has truth"));
        prop_assert!(
            pd_strong >= pd_weak,
            "Pd fell from {pd_weak} to {pd_strong} when SNR rose {snr} -> {}",
            snr + step
        );
    }

    /// Whatever the scene seed, the noise-only measured Pfa stays within
    /// a binomial bound of the CFAR design point. The shipped requirement
    /// documents 4 sigmas at the catalog seed; across arbitrary seeds the
    /// bound widens to 6 to keep the false-failure odds negligible
    /// (~1e-6 per draw at 40960 cells) while still catching any real
    /// threshold miscalibration, which shows up tens of sigmas out.
    #[test]
    fn noise_only_pfa_tracks_the_cfar_design_point(seed in 0u64..10_000) {
        let s = find("noise-only").expect("catalog has noise-only").with_seed(seed);
        let e = evaluate(&s).expect("noise-only evaluates");
        prop_assert!(e.pd().is_none(), "no truth on a noise-only scene");
        prop_assert!(
            e.pfa_sigmas() <= 6.0,
            "measured pfa {:.3e} is {:.1} sigmas from the design point {:.3e} ({} cells)",
            e.pfa,
            e.pfa_sigmas(),
            e.design_pfa,
            e.cells
        );
    }

    /// The detection set is invariant across every I/O-strategy axis:
    /// file vs (lossless) stream staging, embedded vs separate I/O
    /// nodes, split vs combined tail, file-system personality, staging
    /// fanout, and ring depth. Only lossless backpressure is drawn —
    /// drop-oldest/reject shed cubes by design.
    #[test]
    fn detections_are_invariant_across_io_strategies(
        io_idx in 0usize..2,
        tail_idx in 0usize..2,
        fs_idx in 0usize..3,
        fanout in 1usize..4,
        stream in any::<bool>(),
        depth in 1usize..6,
    ) {
        let scenario = find("two-target").expect("catalog has two-target");
        let mut base = scenario.config();
        base.cpis = 3;
        base.warmup = 1;
        base.fanout = fanout;

        let mut variant = base.clone();
        variant.io = [IoStrategy::Embedded, IoStrategy::SeparateTask][io_idx];
        variant.tail = [TailStructure::Split, TailStructure::Combined][tail_idx];
        variant.fs = match fs_idx {
            0 => ppstap::pfs::FsConfig::paragon_pfs(16),
            1 => ppstap::pfs::FsConfig::paragon_pfs(64),
            _ => ppstap::pfs::FsConfig::piofs(),
        };
        if stream {
            variant.source =
                SourceSpec::Stream(StreamSettings { depth, ..StreamSettings::default() });
        }

        prop_assert_eq!(
            run_keys(base),
            run_keys(variant),
            "I/O strategy changed the detection set (io={io_idx} tail={tail_idx} \
             fs={fs_idx} fanout={fanout} stream={stream} depth={depth})"
        );
    }
}
