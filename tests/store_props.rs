//! Differential property tests for the smart storage tier (`stap-store`).
//!
//! Whatever the tier is doing — caching extents, prefetching ahead of
//! demand, streaming cubes out-of-core through bounded chunks, or
//! restriping the backing layout under live readers — every byte it
//! serves must be identical to a plain striped-file read. Its statistics
//! must conserve (every demand lookup is exactly one hit or one miss;
//! evictions never exceed inserts), and out-of-core scratch must stay
//! under the configured footprint bound, provably via the meter's peak.

use ppstap::pfs::{FileHandle, FsConfig, OpenMode, Pfs};
use ppstap::pipeline::CpiSource;
use ppstap::store::{CubeAccess, StoreConfig, StoreSource};
use proptest::prelude::*;
use std::sync::Arc;

/// Stages `fanout` round-robin CPI files of pseudo-random bytes and keeps
/// reference handles + the raw bytes for differential comparison.
fn staged(fanout: usize, cube_bytes: usize, seed: u64) -> (Pfs, Vec<FileHandle>, Vec<Vec<u8>>) {
    let fs = Pfs::mount(FsConfig::paragon_pfs(4));
    let mut files = Vec::new();
    let mut cubes = Vec::new();
    for slot in 0..fanout {
        let f = fs.gopen(&format!("cpi_{slot}.dat"), OpenMode::Async);
        let salt = seed.wrapping_add(slot as u64 * 9973);
        let data: Vec<u8> = (0..cube_bytes)
            .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 256) as u8)
            .collect();
        f.write_at(0, &data).unwrap();
        files.push(f);
        cubes.push(data);
    }
    (fs, files, cubes)
}

/// One generated access: which CPI, which quarter-cube window, and
/// whether to go through the synchronous demand path or the async
/// client-prefetch path.
type Access = (u64, usize, bool);

/// The `[offset, len)` window a generated access reads.
fn window(cube_bytes: usize, quarter: usize) -> (u64, usize) {
    if quarter == 0 {
        return (0, cube_bytes);
    }
    let len = (cube_bytes / 4).max(1);
    let off = ((quarter - 1) * len).min(cube_bytes - len);
    (off as u64, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any cache budget × read-ahead depth × access mode × access
    /// sequence: the tier is invisible to correctness. Every read is
    /// bit-identical to the plain file, hits + misses equals the demand
    /// lookups, evictions never exceed inserts, and out-of-core scratch
    /// never passes its bound.
    #[test]
    fn store_reads_are_bit_identical_and_stats_conserve(
        fanout in 1usize..4,
        rows in 4usize..16,
        row_bytes in 16usize..160,
        cache_sel in 0usize..3,
        depth in 0u32..4,
        ooc in any::<bool>(),
        chunk_rows in 1usize..8,
        seed in any::<u64>(),
        reads in proptest::collection::vec((0u64..10, 0usize..5, any::<bool>()), 1..24),
    ) {
        let cube_bytes = rows * row_bytes;
        let (_fs, files, cubes) = staged(fanout, cube_bytes, seed);
        let access = if ooc {
            CubeAccess::OutOfCore { chunk_rows: chunk_rows.min(rows) }
        } else {
            CubeAccess::Resident
        };
        let chunk_bytes = match access {
            CubeAccess::OutOfCore { chunk_rows } => chunk_rows * row_bytes,
            CubeAccess::Resident => cube_bytes,
        };
        let cfg = StoreConfig {
            cache_bytes: [0, cube_bytes + 64, 1 << 20][cache_sel],
            readahead_depth: depth,
            access,
            // Demand reader + background worker: at most two chunks of
            // scratch are ever live, so four is a roomy provable bound.
            footprint_bound: 4 * chunk_bytes as u64,
            row_bytes,
        };
        let src = StoreSource::new(files.clone(), cfg);
        let meter = src.footprint().map(Arc::clone);

        let mut demand_lookups = 0u64;
        for &(cpi, quarter, via_prefetch) in &reads as &Vec<Access> {
            let (off, len) = window(cube_bytes, quarter);
            let got = if via_prefetch {
                match src.prefetch(cpi, off, len).unwrap() {
                    Some(pending) => pending().unwrap(),
                    None => src.fetch(cpi, off, len).unwrap(),
                }
            } else {
                src.fetch(cpi, off, len).unwrap()
            };
            demand_lookups += 1;
            let want = &cubes[(cpi % fanout as u64) as usize][off as usize..off as usize + len];
            prop_assert_eq!(&got[..], want, "cpi {} window ({}, {})", cpi, off, len);
        }

        let (hits, misses, inserts, evictions, _readaheads) = src.stats().snapshot();
        prop_assert_eq!(hits + misses, demand_lookups, "every demand lookup is a hit or a miss");
        prop_assert!(evictions <= inserts, "evicted {evictions} of {inserts} inserts");
        if cfg.cache_bytes == 0 {
            prop_assert_eq!(hits, 0, "no budget, no hits");
        }
        drop(src); // joins the worker: all scratch grants are released
        if let Some(meter) = meter {
            prop_assert!(
                meter.peak() <= meter.bound(),
                "peak {} exceeded the {} bound", meter.peak(), meter.bound()
            );
            prop_assert_eq!(meter.in_use(), 0, "scratch leaked past the run");
        }
    }

    /// Restriping the backing files mid-sequence (any new stripe factor,
    /// any split point) never changes a single served byte — readers are
    /// oblivious to the copy-then-swap.
    #[test]
    fn restripe_mid_sequence_is_byte_invisible(
        fanout in 1usize..3,
        cube_kb in 1usize..5,
        to_sf_idx in 0usize..4,
        split in 1usize..8,
        seed in any::<u64>(),
    ) {
        let to_sf = [2usize, 8, 16, 32][to_sf_idx];
        let cube_bytes = cube_kb * 1024;
        let (_fs, files, cubes) = staged(fanout, cube_bytes, seed);
        let src = StoreSource::new(files, StoreConfig::passthrough());
        let total = 8u64;
        let split = (split as u64).min(total);
        for cpi in 0..split {
            let want = &cubes[(cpi % fanout as u64) as usize];
            prop_assert_eq!(&src.fetch(cpi, 0, cube_bytes).unwrap(), want);
        }
        let dst = Pfs::mount(FsConfig::paragon_pfs(to_sf));
        let reports = src.restripe_to(&dst).unwrap();
        prop_assert_eq!(reports.len(), fanout);
        for r in &reports {
            prop_assert_eq!(r.to_sf, to_sf);
            prop_assert_eq!(r.bytes, cube_bytes as u64);
        }
        for cpi in split..total {
            let want = &cubes[(cpi % fanout as u64) as usize];
            prop_assert_eq!(&src.fetch(cpi, 0, cube_bytes).unwrap(), want);
        }
    }
}
