//! Differential conformance: the closed-form analytic model (Eqs. 1–14)
//! and the discrete-event simulator must tell the same story everywhere the
//! planner can go — both I/O designs, both tail structures, every machine
//! (including restriped and heterogeneous variants), and arbitrary valid
//! node assignments.
//!
//! Three layers:
//! 1. A deterministic grid over the paper's configuration space, which also
//!    writes `target/conformance/tolerance_report.txt` (uploaded as a CI
//!    artifact) recording the worst observed analytic-vs-DES disagreement.
//! 2. Property-based random configurations (proptest): random assignments,
//!    stripe factors, structures, and pools.
//! 3. Planner-score conformance: every plan the planner emits must
//!    re-evaluate to bit-identical analytic metrics from its recorded
//!    (machine, stripe factor, assignment, structure) provenance alone.

use proptest::prelude::*;
use stap_core::desmodel::DesExperiment;
use stap_core::{IoStrategy, TailStructure};
use stap_model::assignment::{assign_nodes, pack_classes, Assignment};
use stap_model::machines::MachineModel;
use stap_model::prediction::{predict_with_assignment, PredictStructure};
use stap_model::workload::{ShapeParams, StapWorkload, TaskId};
use stap_planner::{plan, PlannerConfig};

/// Tolerances for analytic-vs-DES agreement on the deterministic grid
/// (workload-proportional assignments — the planner's operating regime).
/// Throughput is tight: queueing never moves the bottleneck rate. Latency
/// is looser because Eq. 2/4 sums bare task times while the DES charges
/// rendezvous pacing (each stage cycles at the bottleneck period); packed
/// heterogeneous pools see the most of it (~38% at 50 nodes).
const TPUT_TOL_PCT: f64 = 25.0;
const LAT_TOL_PCT: f64 = 45.0;

fn structure_of(io: IoStrategy, tail: TailStructure) -> PredictStructure {
    PredictStructure {
        separate_io: io == IoStrategy::SeparateTask,
        combined_tail: tail == TailStructure::Combined,
    }
}

/// Analytic and DES metrics for one configuration under the same explicit
/// (packed) assignment. Returns (analytic tput, des tput, analytic lat,
/// des lat).
fn evaluate_both(
    m: &MachineModel,
    io: IoStrategy,
    tail: TailStructure,
    a: &Assignment,
) -> (f64, f64, f64, f64) {
    let shape = ShapeParams::paper_default();
    let pred = predict_with_assignment(m, shape, structure_of(io, tail), a);
    let mut exp = DesExperiment::new(m.clone(), io, tail, a.total());
    exp.assignment_override = Some(a.clone());
    let des = exp.run();
    (pred.throughput, des.throughput, pred.latency, des.latency)
}

fn rel_pct(model: f64, sim: f64) -> f64 {
    ((sim - model) / model * 100.0).abs()
}

#[test]
fn grid_conformance_within_tolerance_and_report_written() {
    let machines = vec![
        MachineModel::paragon(16),
        MachineModel::paragon(64),
        MachineModel::paragon_tunable().with_stripe_factor(32),
        MachineModel::paragon_hetero().with_stripe_factor(64),
        MachineModel::sp(),
    ];
    let shape = ShapeParams::paper_default();
    let w = StapWorkload::derive(shape);

    let mut lines = vec![format!(
        "{:<44} {:>3} {:<9} {:<8} {:>9} {:>9} {:>8} {:>8}",
        "machine", "n", "io", "tail", "an CPI/s", "des CPI/s", "tput%", "lat%"
    )];
    let (mut worst_tput, mut worst_lat) = (0.0f64, 0.0f64);
    for m in &machines {
        for &nodes in &[25usize, 50, 100] {
            let budget = m.pool_size().map_or(nodes, |p| p.min(nodes));
            let a = pack_classes(&w, &assign_nodes(&w, &TaskId::SEVEN, budget), &m.classes);
            for io in [IoStrategy::Embedded, IoStrategy::SeparateTask] {
                for tail in [TailStructure::Split, TailStructure::Combined] {
                    let (at, dt, al, dl) = evaluate_both(m, io, tail, &a);
                    let (et, el) = (rel_pct(at, dt), rel_pct(al, dl));
                    worst_tput = worst_tput.max(et);
                    worst_lat = worst_lat.max(el);
                    let io_s = if io == IoStrategy::Embedded { "embedded" } else { "separate" };
                    let tail_s = if tail == TailStructure::Split { "split" } else { "combined" };
                    lines.push(format!(
                        "{:<44} {:>3} {:<9} {:<8} {:>9.3} {:>9.3} {:>7.2}% {:>7.2}%",
                        m.name, budget, io_s, tail_s, at, dt, et, el
                    ));
                    assert!(
                        et < TPUT_TOL_PCT,
                        "{} n={budget} {:?}/{:?}: throughput diverges {et:.1}% (an {at:.3}, des {dt:.3})",
                        m.name, io, tail
                    );
                    assert!(
                        el < LAT_TOL_PCT,
                        "{} n={budget} {:?}/{:?}: latency diverges {el:.1}% (an {al:.4}, des {dl:.4})",
                        m.name, io, tail
                    );
                }
            }
        }
    }
    lines.push(format!(
        "worst-case disagreement: throughput {worst_tput:.2}% (tol {TPUT_TOL_PCT}%), \
         latency {worst_lat:.2}% (tol {LAT_TOL_PCT}%)"
    ));
    std::fs::create_dir_all("target/conformance").expect("create report dir");
    std::fs::write("target/conformance/tolerance_report.txt", lines.join("\n") + "\n")
        .expect("write tolerance report");
}

/// Builds a valid seven-task assignment from sampled per-task node counts.
fn assignment_from(counts: &[usize]) -> Assignment {
    Assignment::new(TaskId::SEVEN.to_vec(), counts.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_configs_agree_within_tolerance(
        counts in proptest::collection::vec(1usize..18, 7),
        machine_pick in 0usize..4,
        sf_pick in 0usize..5,
        io_pick in 0usize..2,
        tail_pick in 0usize..2,
    ) {
        let sf = [8usize, 16, 32, 64, 128][sf_pick];
        let m = match machine_pick {
            0 => MachineModel::paragon_tunable().with_stripe_factor(sf),
            1 => MachineModel::paragon_hetero().with_stripe_factor(sf),
            2 => MachineModel::paragon(64),
            _ => MachineModel::sp(),
        };
        let io = [IoStrategy::Embedded, IoStrategy::SeparateTask][io_pick];
        let tail = [TailStructure::Split, TailStructure::Combined][tail_pick];
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let a = pack_classes(&w, &assignment_from(&counts), &m.classes);
        let shape = ShapeParams::paper_default();
        let pred = predict_with_assignment(&m, shape, structure_of(io, tail), &a);
        let (at, dt, al, dl) = evaluate_both(&m, io, tail, &a);
        prop_assert!(at > 0.0 && al > 0.0, "degenerate analytic metrics");
        prop_assert!(
            rel_pct(at, dt) < TPUT_TOL_PCT,
            "{} {:?}/{:?} {:?}: throughput an {at:.4} vs des {dt:.4}",
            m.name, io, tail, counts
        );
        // Latency on arbitrary (unbalanced) assignments: the DES charges
        // rendezvous pacing the closed form sums away, so a fixed
        // percentage cannot hold. The structural envelope does: per-CPI
        // latency is at least the bare task-time sum and at most that sum
        // plus one bottleneck period of wait per pipeline stage.
        let t_bot = 1.0 / at;
        let stages = pred.task_times.len() as f64;
        prop_assert!(
            dl >= al * 0.95,
            "{} {:?}/{:?} {:?}: DES latency {dl:.4} beats the task-time sum {al:.4}",
            m.name, io, tail, counts
        );
        prop_assert!(
            dl <= al + stages * t_bot,
            "{} {:?}/{:?} {:?}: DES latency {dl:.4} exceeds the pacing envelope {:.4}",
            m.name, io, tail, counts, al + stages * t_bot
        );
    }

    #[test]
    fn random_restriping_only_moves_the_read_bound(
        counts in proptest::collection::vec(2usize..16, 7),
        sf_pick in 0usize..4,
    ) {
        // Restriping wider can only shorten the steady read; everything
        // else in the prediction must be untouched, so throughput is
        // monotone and the non-Doppler task times are bit-identical.
        let sf = [8usize, 16, 32, 64][sf_pick];
        let narrow = MachineModel::paragon_tunable().with_stripe_factor(sf);
        let wide = narrow.with_stripe_factor(sf * 2);
        let a = assignment_from(&counts);
        let shape = ShapeParams::paper_default();
        let s = structure_of(IoStrategy::Embedded, TailStructure::Split);
        let pn = predict_with_assignment(&narrow, shape, s, &a);
        let pw = predict_with_assignment(&wide, shape, s, &a);
        prop_assert!(pw.read_time <= pn.read_time);
        prop_assert!(pw.throughput >= pn.throughput - 1e-12);
        for (tn, tw) in pn.task_times.iter().zip(&pw.task_times).skip(1) {
            prop_assert_eq!(tn.time, tw.time, "non-Doppler task time moved");
        }
    }
}

#[test]
fn planner_scores_match_reevaluation_of_the_emitted_plan() {
    // Every plan's recorded provenance (machine family, stripe factor,
    // packed assignment, structure) must reproduce its analytic score
    // bit-exactly — the report is a complete, trustworthy artifact.
    let mut cfg = PlannerConfig::new(
        vec![MachineModel::paragon_tunable(), MachineModel::paragon_hetero()],
        40,
    )
    .without_des();
    cfg.beam_width = 16;
    cfg.per_structure = 8;
    let report = plan(&cfg);
    assert!(!report.plans.is_empty());
    for p in &report.plans {
        let base = if p.machine.contains("hetero") {
            MachineModel::paragon_hetero()
        } else {
            MachineModel::paragon_tunable()
        };
        let m = base.with_stripe_factor(p.stripe_factor);
        assert_eq!(m.name, p.machine, "plan #{} names a machine we cannot rebuild", p.id);
        let pred = predict_with_assignment(
            &m,
            ShapeParams::paper_default(),
            structure_of(p.io, p.tail),
            &p.assignment,
        );
        assert_eq!(
            pred.throughput, p.analytic.throughput,
            "plan #{} throughput is not reproducible",
            p.id
        );
        assert_eq!(pred.latency, p.analytic.latency, "plan #{} latency is not reproducible", p.id);
    }
}
