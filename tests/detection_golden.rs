//! Golden-file regression for the detection plane: the truth-matched
//! detection lists and the angle-Doppler surface of six catalog
//! scenarios, locked byte-for-byte against checked-in goldens.
//!
//! The pipeline's arithmetic is deterministic (seeded scenes, virtual
//! clock, no reductions whose order depends on thread timing) and powers
//! render with `{}` (shortest round-trip), so the text is bit-stable
//! across runs **and across debug/release profiles** — a profile-induced
//! diff here means a kernel stopped being bit-reproducible.
//!
//! To regenerate after an intentional change to the scenes or kernels:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test detection_golden
//! ```

use ppstap::scenario::{evaluate, find};
use std::path::{Path, PathBuf};

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares against the checked-in golden, reporting the first divergent
/// line instead of dumping both multi-kilobyte documents.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test --test detection_golden`",
            path.display()
        )
    });
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{name} diverges at line {}; if intended, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test detection_golden`",
            i + 1
        );
    }
    panic!(
        "{name}: output length changed ({} vs {} lines); if intended, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test detection_golden`",
        actual.lines().count(),
        expected.lines().count()
    );
}

fn check_scenario(name: &str) {
    let s = find(name).unwrap_or_else(|| panic!("catalog has {name}"));
    let e = evaluate(&s).unwrap_or_else(|err| panic!("{name} evaluates: {err}"));
    check_golden(&format!("detection_{}.txt", name.replace('-', "_")), &e.golden_text());
}

#[test]
fn two_target_detection_map_is_stable() {
    check_scenario("two-target");
}

#[test]
fn benchmark_detection_map_is_stable() {
    check_scenario("benchmark");
}

#[test]
fn noise_only_detection_map_is_stable() {
    check_scenario("noise-only");
}

#[test]
fn maneuvering_detection_map_is_stable() {
    check_scenario("maneuvering");
}

#[test]
fn jammer_blink_detection_map_is_stable() {
    check_scenario("jammer-blink");
}

#[test]
fn clutter_steep_detection_map_is_stable() {
    check_scenario("clutter-steep");
}
