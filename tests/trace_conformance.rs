//! Trace conformance: the phase spans the tracer records must reconcile
//! with the wall totals they claim to decompose, and the phase fractions
//! the DES predicts must match the fractions the real traced pipeline
//! measures.
//!
//! Three layers:
//! 1. Exact bookkeeping under the virtual clock: spans tile their CPI
//!    records (no overlap, no negative residue), and the per-phase sums
//!    recorded in `CpiRecord::phase_secs` equal the span durations they
//!    were accumulated from.
//! 2. Wall-clock reconciliation within a documented epsilon: phases are
//!    timed with the same single-timestamp transition, so the only
//!    unattributed time inside a CPI is the sliver between `start_cpi` and
//!    the first phase entry plus scheduler noise.
//! 3. Differential phase prediction: a DES calibrated from the traced
//!    run's own compute/send rates must predict the Doppler task's
//!    read/compute/send split within the PR 2 tolerance band, and the CLI's
//!    `--trace chrome:PATH` artifact must validate as a Chrome trace.
//!
//! Layer 3 also writes `target/conformance/trace_tolerance_report.txt`
//! (uploaded as a CI artifact) recording the observed disagreement.

use ppstap::core::config::StapConfig;
use ppstap::core::desmodel::DesExperiment;
use ppstap::core::{IoStrategy, StapSystem, TailStructure};
use ppstap::kernels::covariance::TrainingConfig;
use ppstap::model::assignment::Assignment;
use ppstap::model::machines::MachineModel;
use ppstap::model::workload::{ShapeParams, StapWorkload, TaskId};
use ppstap::pipeline::timing::{Phase, PipelineReport};
use ppstap::pipeline::topology::StageId;
use ppstap::pipeline::ClockSpec;
use ppstap::trace::json::validate_chrome_trace;

/// Tolerance for DES-predicted vs traced phase agreement, matching the
/// analytic-vs-DES throughput band of the differential conformance suite
/// (`tests/conformance.rs`): the calibrated model and the paced run share
/// the same per-server queueing constants, so 25% absorbs scheduler noise
/// and the real kernels' non-modeled memory traffic.
const PHASE_TOL_PCT: f64 = 25.0;

/// Wall-clock reconciliation epsilon, per CPI record: the residue
/// `total − Σ phases` may not exceed `EPS_FRAC` of the record's span plus
/// `EPS_ABS` of fixed scheduler/bookkeeping noise (a descheduled thread
/// between `start_cpi` and the first phase entry charges the gap to no
/// phase — a rare, bounded event on a loaded CI box). The tracer hands the
/// closing timestamp of one phase to the opening of the next, so residue
/// cannot accrue *between* phases; exactness is pinned separately under
/// the virtual clock.
const EPS_FRAC: f64 = 0.05;
const EPS_ABS: f64 = 10e-3;

fn rel_pct(model: f64, measured: f64) -> f64 {
    ((measured - model) / model * 100.0).abs()
}

fn small_config(cpis: u64) -> StapConfig {
    StapConfig { cpis, warmup: 1, ..StapConfig::default() }
}

/// Collects every span of one `(stage, node)` track, in recording order.
fn track(report: &PipelineReport, stage: usize, node: usize) -> Vec<ppstap::trace::Span> {
    report.spans.iter().filter(|s| s.stage == stage && s.node == node).copied().collect()
}

#[test]
fn virtual_clock_spans_tile_cpi_records_exactly() {
    let sys = StapSystem::prepare(small_config(3)).expect("prepare");
    let out = sys.run_with_clock(ClockSpec::virtual_default()).expect("run");
    let report = &out.timing;
    assert!(!report.spans.is_empty(), "traced run produced no spans");

    for (stage, nodes) in report.records.iter().enumerate() {
        for (node, recs) in nodes.iter().enumerate() {
            assert!(!recs.is_empty(), "stage {stage} node {node} recorded no CPIs");
            let spans = track(report, stage, node);
            // Monotone, non-overlapping along the track.
            for w in spans.windows(2) {
                assert!(
                    w[1].start >= w[0].end - 1e-12,
                    "overlapping spans on stage {stage} node {node}: {:?} then {:?}",
                    w[0],
                    w[1]
                );
            }
            for r in recs {
                // Every span of this CPI sits inside the record's interval,
                // and the per-phase sums equal the span durations.
                let mut by_phase = [0.0f64; Phase::COUNT];
                for s in spans.iter().filter(|s| s.cpi == r.cpi) {
                    assert!(
                        s.start >= r.start - 1e-12 && s.end <= r.end + 1e-12,
                        "span outside its CPI record on stage {stage} node {node}: {s:?} vs [{}, {}]",
                        r.start,
                        r.end
                    );
                    by_phase[s.phase.index()] += s.secs();
                }
                for p in Phase::ALL {
                    assert!(
                        (by_phase[p.index()] - r.phase(p)).abs() < 1e-9,
                        "stage {stage} node {node} cpi {}: span sum {} != record {} for {p:?}",
                        r.cpi,
                        by_phase[p.index()],
                        r.phase(p)
                    );
                }
                // Virtual time only advances on clock observations, so the
                // unattributed residue is a handful of ticks (observations
                // between `start_cpi` and the first phase entry).
                let resid = r.unaccounted();
                assert!(
                    (-1e-9..=0.032).contains(&resid),
                    "stage {stage} node {node} cpi {}: unaccounted {resid}",
                    r.cpi
                );
            }
        }
    }
}

#[test]
fn virtual_clock_traces_are_reproducible() {
    let run = || {
        let sys = StapSystem::prepare(small_config(3)).expect("prepare");
        sys.run_with_clock(ClockSpec::virtual_default()).expect("run").timing.chrome_trace()
    };
    assert_eq!(run(), run(), "virtual-clock Chrome traces differ between runs");
}

#[test]
fn wall_clock_phase_sums_reconcile_within_documented_epsilon() {
    let sys = StapSystem::prepare(small_config(4)).expect("prepare");
    let out = sys.run().expect("run");
    let mut worst = 0.0f64;
    for (stage, nodes) in out.timing.records.iter().enumerate() {
        for (node, recs) in nodes.iter().enumerate() {
            for r in recs {
                let resid = r.unaccounted();
                assert!(
                    resid >= -1e-6,
                    "stage {stage} node {node} cpi {}: phases over-attribute by {resid}",
                    r.cpi
                );
                let bound = EPS_FRAC * r.total() + EPS_ABS;
                assert!(
                    resid <= bound,
                    "stage {stage} node {node} cpi {}: unaccounted {resid} > {bound} \
                     (total {}, phases {})",
                    r.cpi,
                    r.total(),
                    r.total() - resid
                );
                worst = worst.max(resid);
            }
        }
    }
    // The registry's per-stage sums are derived from the same spans, so
    // they can never exceed the summed wall totals.
    let reg = out.timing.registry();
    for (stage, nodes) in out.timing.records.iter().enumerate() {
        let wall: f64 = nodes.iter().flatten().map(|r| r.total()).sum();
        let attributed: f64 = Phase::ALL.iter().map(|&p| reg.phase_sum(stage, p)).sum();
        assert!(
            attributed <= wall + 1e-6,
            "stage {stage}: attributed {attributed} exceeds wall {wall}"
        );
    }
    eprintln!("worst per-CPI unaccounted residue: {worst:.6} s");
}

/// Mirrors the shape derivation the system itself uses for watchdog
/// deadlines, so the calibrated DES models exactly the executed workload.
fn shape_of(cfg: &StapConfig, sys: &StapSystem) -> ShapeParams {
    ShapeParams {
        pulses: cfg.dims.pulses,
        channels: cfg.dims.channels,
        ranges: cfg.dims.ranges,
        hard_fraction: sys.plan().hard_bins.len() as f64 / cfg.nbins() as f64,
        beams: cfg.beams.len(),
        training_stride: TrainingConfig::default().range_stride,
        waveform_len: cfg.waveform_len,
    }
}

#[test]
fn des_predicted_phase_fractions_match_traced_fractions() {
    // Pace reads at PACE× the queueing model and force synchronous reads,
    // so the traced Read phase carries the full modeled service time
    // instead of hiding behind `iread` overlap. The pace multiplier keeps
    // the un-modeled real cost of a read (byte shuffling through the
    // user-space servers, scheduler noise — milliseconds in a debug build)
    // small relative to the modeled part; the DES prediction is scaled by
    // the same factor before comparing.
    const PACE: f64 = 8.0;
    let mut config = small_config(6).with_read_pacing(PACE);
    config.fs.supports_async = false;
    let sys = StapSystem::prepare(config.clone()).expect("prepare");
    let out = sys.run().expect("run");

    // Stage 0 is the Doppler task (embedded I/O: it carries the read).
    let d = StageId(0);
    let read_meas = out.timing.phase_time(d, Phase::Read);
    let comp_meas = out.timing.phase_time(d, Phase::Compute);
    let send_meas = out.timing.phase_time(d, Phase::Send);
    assert!(read_meas > 0.0 && comp_meas > 0.0, "read {read_meas}, compute {comp_meas}");

    // Calibrate a machine model from the traced run itself: compute rate
    // and link bandwidth from the measured compute/send phases (zero
    // message latency, zero parallelization overhead), the file system
    // taken verbatim. The read phase is then a genuine *prediction* of the
    // per-server queueing model, not a fit.
    let shape = shape_of(&config, &sys);
    let w = StapWorkload::derive(shape);
    let n = config.nodes;
    let dn = n.doppler;
    let mut m = MachineModel::paragon(config.fs.stripe_factor);
    m.fs = config.fs.clone();
    m.net_latency = 0.0;
    m.v0 = 0.0;
    m.node_flops = w.flops(TaskId::Doppler) / (dn as f64 * comp_meas.max(1e-9));
    m.net_bandwidth = w.output_bytes(TaskId::Doppler) as f64 / (dn as f64 * send_meas.max(1e-9));

    let nodes_vec =
        vec![n.doppler, n.easy_weight, n.hard_weight, n.easy_bf, n.hard_bf, n.pulse, n.cfar];
    let total: usize = nodes_vec.iter().sum();
    let mut exp = DesExperiment::new(m, IoStrategy::Embedded, TailStructure::Split, total);
    exp.shape = shape;
    exp.assignment_override = Some(Assignment::new(TaskId::SEVEN.to_vec(), nodes_vec));
    let r = exp.run();
    let pred = r.tasks[0].phases; // Doppler is the first task when I/O is embedded
    let pred_read = PACE * pred.read; // the run paces reads at PACE x the model

    let meas_total = read_meas + comp_meas + send_meas;
    let pred_total = pred_read + pred.compute + pred.send;
    let mut lines = vec![format!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>12} {:>10}",
        "phase", "traced(s)", "DES(s)", "err%", "traced frac", "DES frac", "frac err%"
    )];
    for (label, meas, model) in [
        ("read", read_meas, pred_read),
        ("compute", comp_meas, pred.compute),
        ("send", send_meas, pred.send),
    ] {
        let (fm, fp) = (meas / meas_total, model / pred_total);
        let (e_abs, e_frac) = (rel_pct(model, meas), rel_pct(fp, fm));
        lines.push(format!(
            "{label:<10} {meas:>12.6} {model:>12.6} {e_abs:>9.2}% {fm:>12.4} {fp:>12.4} {e_frac:>9.2}%"
        ));
        assert!(
            e_frac <= PHASE_TOL_PCT,
            "{label}: traced fraction {fm:.4} vs DES {fp:.4} disagree by {e_frac:.2}% \
             (> {PHASE_TOL_PCT}%)\n{}",
            lines.join("\n")
        );
    }
    // The read phase is the only un-calibrated quantity; hold it to the
    // band in absolute seconds too.
    assert!(
        rel_pct(pred_read, read_meas) <= PHASE_TOL_PCT,
        "read seconds: traced {read_meas:.6} vs DES {pred_read:.6}"
    );

    let report = format!(
        "Trace conformance: DES-predicted vs traced Doppler phase split\n\
         (embedded I/O, paced synchronous reads at {PACE}x, {} CPIs, tolerance {}%)\n\n{}\n",
        config.cpis,
        PHASE_TOL_PCT,
        lines.join("\n")
    );
    let dir = std::path::Path::new("target/conformance");
    std::fs::create_dir_all(dir).expect("create target/conformance");
    std::fs::write(dir.join("trace_tolerance_report.txt"), report).expect("write report");
}

#[test]
fn cli_chrome_trace_validates() {
    let path = std::env::temp_dir().join(format!("ppstap_trace_{}.json", std::process::id()));
    let path_str = path.to_str().expect("utf-8 temp path");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_ppstap"))
        .args(["run", "--cpis", "3", "--virtual-clock", "--trace", &format!("chrome:{path_str}")])
        .output()
        .expect("spawn ppstap");
    assert!(
        output.status.success(),
        "ppstap run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("read trace file");
    let _ = std::fs::remove_file(&path);
    let summary = validate_chrome_trace(&text).expect("trace must validate");
    assert!(summary.complete > 0, "no complete events: {summary:?}");
    assert!(summary.metadata > 0, "no track metadata: {summary:?}");
    // One track per (stage, node): the default topology runs 11 nodes.
    assert_eq!(summary.tracks, 11, "unexpected track count: {summary:?}");
}
