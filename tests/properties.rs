//! Cross-crate property-based tests (proptest) on the system's invariants.

use proptest::prelude::*;
use stap_kernels::cube::{partition_even, CubeDims, DataCube};
use stap_math::fft::{dft_naive, FftPlan};
use stap_math::{CMat, CholeskyFactor, C64};
use stap_model::machines::MachineModel;
use stap_model::tasktime::{combined_task_time, task_time};
use stap_model::workload::{ShapeParams, StapWorkload, TaskId};
use stap_pfs::{FsConfig, OpenMode, Pfs, StripeLayout};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT forward/inverse round trip is the identity for arbitrary signals.
    #[test]
    fn fft_round_trip(log2n in 0u32..9, samples in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 256)) {
        let n = 1usize << log2n;
        let plan = FftPlan::<f64>::new(n);
        let input: Vec<C64> = samples.iter().take(n).map(|&(re, im)| C64::new(re, im)).collect();
        let mut buf = input.clone();
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&input) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Fast FFT equals the naive DFT.
    #[test]
    fn fft_matches_dft(log2n in 0u32..7, seed in 0u64..1000) {
        let n = 1usize << log2n;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let input: Vec<C64> = (0..n).map(|_| C64::new(next(), next())).collect();
        let mut fast = input.clone();
        FftPlan::new(n).forward(&mut fast);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * (n as f64));
        }
    }

    /// Cholesky solve leaves a tiny residual for any generated HPD system.
    #[test]
    fn cholesky_solve_residual(n in 1usize..12, seed in 0u64..1000) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b_mat = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        let mut a = b_mat.mul(&b_mat.hermitian()).unwrap();
        a.load_diagonal(0.5);
        let chol = CholeskyFactor::new(&a).unwrap();
        let rhs: Vec<C64> = (0..n).map(|_| C64::new(next(), next())).collect();
        let x = chol.solve(&rhs).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (p, q) in ax.iter().zip(&rhs) {
            prop_assert!((*p - *q).abs() < 1e-8);
        }
    }

    /// Striping: any extent maps to requests that exactly tile it, each
    /// within one stripe unit, on the right server.
    #[test]
    fn stripe_layout_tiles_extents(
        unit_log in 4usize..16,
        factor in 1usize..100,
        offset in 0u64..1_000_000,
        len in 0usize..500_000,
    ) {
        let unit = 1usize << unit_log;
        let layout = StripeLayout::new(unit, factor);
        let reqs = layout.map_extent(offset, len);
        let total: usize = reqs.iter().map(|r| r.len).sum();
        prop_assert_eq!(total, len);
        let mut cursor = offset;
        for r in &reqs {
            prop_assert_eq!(r.file_offset, cursor);
            prop_assert!(r.offset_in_unit + r.len <= unit);
            prop_assert_eq!(r.server, (r.unit % factor as u64) as usize);
            prop_assert_eq!(r.unit, r.file_offset / unit as u64);
            cursor += r.len as u64;
        }
    }

    /// PFS write/read-back equality for arbitrary offsets and contents,
    /// across stripe boundaries.
    #[test]
    fn pfs_write_read_back(
        factor in 1usize..9,
        offset in 0u64..10_000,
        data in proptest::collection::vec(any::<u8>(), 1..5_000),
    ) {
        let mut cfg = FsConfig::paragon_pfs(factor);
        cfg.stripe_unit = 256;
        let fs = Pfs::mount(cfg);
        let f = fs.gopen("prop.dat", OpenMode::Async);
        f.write_at(offset, &data).unwrap();
        let back = f.read_at(offset, data.len()).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Cube disk serialization round-trips through the range-major layout
    /// and arbitrary slab partitions reassemble the original cube.
    #[test]
    fn cube_range_major_partition_round_trip(
        pulses in 1usize..6,
        channels in 1usize..5,
        ranges in 1usize..20,
        parts in 1usize..6,
        seed in 0u64..500,
    ) {
        let dims = CubeDims::new(pulses, channels, ranges);
        let mut cube = DataCube::zeros(dims);
        let mut state = seed | 1;
        for z in cube.as_mut_slice() {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            *z = stap_math::C32::new((state as f32 / u32::MAX as f32).fract(), -((state >> 32) as f32 / u32::MAX as f32).fract());
        }
        let disk = cube.to_range_major_bytes();
        for (r0, r1) in partition_even(ranges, parts) {
            if r0 == r1 { continue; }
            let off = DataCube::range_major_offset(dims, r0) as usize;
            let end = DataCube::range_major_offset(dims, r1) as usize;
            let slab = DataCube::slab_from_range_major_bytes(dims, r0, r1, &disk[off..end]);
            prop_assert_eq!(slab, cube.range_slab(r0, r1));
        }
    }

    /// partition_even always covers [0, total) with parts differing by ≤1.
    #[test]
    fn partition_even_properties(total in 0usize..10_000, parts in 1usize..64) {
        let ps = partition_even(total, parts);
        prop_assert_eq!(ps.len(), parts);
        let mut cursor = 0;
        for &(a, b) in &ps {
            prop_assert_eq!(a, cursor);
            prop_assert!(b >= a);
            cursor = b;
        }
        prop_assert_eq!(cursor, total);
        let sizes: Vec<usize> = ps.iter().map(|&(a, b)| b - a).collect();
        let mx = sizes.iter().max().unwrap();
        let mn = sizes.iter().min().unwrap();
        prop_assert!(mx - mn <= 1);
    }

    /// Paper Eq. 11: `T_{5+6} < T_5 + T_6` for any node split and machine —
    /// the task-combination theorem holds across the whole parameter space.
    #[test]
    fn task_combination_theorem(
        p5 in 1usize..24,
        p6 in 1usize..24,
        pred in 1usize..32,
        machine_pick in 0usize..3,
        ranges in 128usize..1024,
    ) {
        let machine = match machine_pick {
            0 => MachineModel::paragon(16),
            1 => MachineModel::paragon(64),
            _ => MachineModel::sp(),
        };
        let shape = ShapeParams { ranges, ..ShapeParams::paper_default() };
        let w = StapWorkload::derive(shape);
        let t5 = task_time(&machine, &w, TaskId::PulseCompression, p5, pred, p6);
        let t6 = task_time(&machine, &w, TaskId::Cfar, p6, p5, 1);
        let t56 = combined_task_time(&machine, &w, TaskId::PulseCompression, TaskId::Cfar, p5, p6, pred, 1);
        prop_assert!(
            t56.total() < t5.total() + t6.total(),
            "T56={} T5+T6={}", t56.total(), t5.total() + t6.total()
        );
    }

    /// Hermitian eigendecomposition reconstructs its input and produces an
    /// orthonormal basis, for arbitrary Hermitian matrices.
    #[test]
    fn eigh_reconstructs(n in 1usize..10, seed in 0u64..500) {
        use stap_math::Eigh;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13; state ^= state >> 7; state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let b = CMat::from_fn(n, n, |_, _| C64::new(next(), next()));
        let a = b.add(&b.hermitian()).unwrap().scale(0.5);
        let e = Eigh::new(&a).unwrap();
        let r = e.reconstruct();
        for i in 0..n {
            for j in 0..n {
                prop_assert!((r[(i, j)] - a[(i, j)]).abs() < 1e-9);
            }
        }
        // Ascending eigenvalues.
        for w in e.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    /// FCFS resources conserve work: total busy time never exceeds
    /// servers × horizon, and jobs never start before arrival.
    #[test]
    fn fcfs_resource_conservation(
        servers in 1usize..8,
        jobs in proptest::collection::vec((0u64..1000, 1u64..200), 1..40),
    ) {
        use stap_des::{FcfsResource, SimTime};
        let mut r = FcfsResource::new("prop", servers);
        let mut sorted = jobs.clone();
        sorted.sort();
        for &(arrive, service) in &sorted {
            let (start, done) = r.submit(SimTime::from_millis(arrive), SimTime::from_millis(service));
            prop_assert!(start >= SimTime::from_millis(arrive));
            prop_assert_eq!(done, start + SimTime::from_millis(service));
        }
        let horizon = r.all_idle_at();
        let total_service: u64 = sorted.iter().map(|&(_, s)| s).sum();
        prop_assert!((r.total_busy_secs() - total_service as f64 / 1000.0).abs() < 1e-9);
        prop_assert!(r.total_busy_secs() <= horizon.as_secs_f64() * servers as f64 + 1e-9);
    }

    /// Message delivery: every (src, tag) stream arrives exactly once and
    /// in order, regardless of how streams interleave.
    #[test]
    fn comm_per_stream_fifo(streams in 1usize..5, per_stream in 1usize..20) {
        use stap_comm::CommWorld;
        let mut eps = CommWorld::create(2);
        let mut rx = eps.pop().unwrap();
        let mut tx = eps.pop().unwrap();
        // Interleave the streams round-robin on the send side.
        for k in 0..per_stream {
            for t in 0..streams {
                tx.send(1, t as u32, (t, k)).unwrap();
            }
        }
        // Drain each stream independently; order within a stream must hold.
        for t in (0..streams).rev() {
            for k in 0..per_stream {
                let (st, sk): (usize, usize) = rx.recv(Some(0), Some(t as u32)).unwrap();
                prop_assert_eq!((st, sk), (t, k));
            }
        }
        prop_assert_eq!(rx.try_recv::<(usize, usize)>(None, None).unwrap(), None);
    }

    /// Detection reports survive binary serialization for arbitrary content.
    #[test]
    fn report_bytes_round_trip(
        cpi in 0u64..1_000_000,
        dets in proptest::collection::vec((0usize..8, 0usize..256, 0usize..4096, 0.1f64..1e6), 0..40),
    ) {
        use stap_kernels::cfar::Detection;
        use stap_kernels::report::DetectionReport;
        let mut r = DetectionReport::new(cpi);
        for (beam, bin, range, power) in dets {
            r.detections.push(Detection {
                beam, bin, range, power,
                noise: 1.0,
                snr_db: 10.0 * power.log10(),
            });
        }
        let back = DetectionReport::from_bytes(&r.to_bytes()).expect("round trip");
        prop_assert_eq!(back.cpi, r.cpi);
        prop_assert_eq!(back.detections, r.detections);
    }

    /// Throughput never decreases after combining (Eq. 14): max task time
    /// does not grow.
    #[test]
    fn combining_never_slows_max_task(
        p5 in 1usize..16,
        p6 in 1usize..16,
        pred in 1usize..16,
    ) {
        let machine = MachineModel::paragon(64);
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let t5 = task_time(&machine, &w, TaskId::PulseCompression, p5, pred, p6).total();
        let t6 = task_time(&machine, &w, TaskId::Cfar, p6, p5, 1).total();
        let t56 = combined_task_time(&machine, &w, TaskId::PulseCompression, TaskId::Cfar, p5, p6, pred, 1).total();
        prop_assert!(t56 <= t5.max(t6) + 1e-9, "T56={} max={}", t56, t5.max(t6));
    }

    /// Node assignment is exhaustive and total: the per-task counts sum to
    /// the requested total and every task gets at least one node.
    #[test]
    fn assign_nodes_sums_and_covers(total in 7usize..600) {
        use stap_model::assignment::assign_nodes;
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let a = assign_nodes(&w, &TaskId::SEVEN, total);
        prop_assert_eq!(a.total(), total);
        prop_assert_eq!(a.tasks.len(), TaskId::SEVEN.len());
        prop_assert!(a.nodes.iter().all(|&n| n >= 1));
    }

    /// The assignment is house-monotone: growing the machine never takes a
    /// node away from any task (no Alabama paradox).
    #[test]
    fn assign_nodes_monotone_in_total(total in 7usize..600, grow in 1usize..40) {
        use stap_model::assignment::assign_nodes;
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let a = assign_nodes(&w, &TaskId::SEVEN, total);
        let b = assign_nodes(&w, &TaskId::SEVEN, total + grow);
        for ((&t, &na), &nb) in a.tasks.iter().zip(&a.nodes).zip(&b.nodes) {
            prop_assert!(nb >= na, "{t:?} shrank {na} -> {nb} when total grew {total} -> {}", total + grow);
        }
    }

    /// Heavier tasks never receive fewer nodes than lighter ones.
    #[test]
    fn assign_nodes_ordered_by_workload(total in 7usize..600) {
        use stap_model::assignment::assign_nodes;
        let w = StapWorkload::derive(ShapeParams::paper_default());
        let a = assign_nodes(&w, &TaskId::SEVEN, total);
        let mut by_weight: Vec<(f64, usize)> = a
            .tasks
            .iter()
            .zip(&a.nodes)
            .map(|(&t, &n)| (w.flops(t), n))
            .collect();
        by_weight.sort_by(|x, y| x.0.partial_cmp(&y.0).unwrap());
        for pair in by_weight.windows(2) {
            // Allow equality plus one node of slack for near-equal weights.
            prop_assert!(pair[1].1 + 1 >= pair[0].1, "{pair:?}");
        }
    }
}
