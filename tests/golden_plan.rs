//! Golden-file regression for `ppstap plan --json`: the planner's JSON
//! report is a machine-readable artifact other tooling parses, so its
//! exact bytes — field order, float formatting, plan numbering — are
//! locked against checked-in goldens. The planner is pure f64 arithmetic
//! with no randomness, so the output is bit-stable across runs and
//! profiles.
//!
//! To regenerate after an intentional format or model change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_plan
//! ```

use std::path::{Path, PathBuf};
use std::process::Command;

fn run_plan(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_ppstap")).args(args).output().expect("run ppstap");
    assert!(
        out.status.success(),
        "ppstap {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn golden_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares against the checked-in golden, reporting the first divergent
/// line instead of dumping both multi-kilobyte documents.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("create golden dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); generate it with `UPDATE_GOLDEN=1 cargo test --test golden_plan`",
            path.display()
        )
    });
    if actual == expected {
        return;
    }
    for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            a,
            e,
            "{name} diverges at line {}; if intended, regenerate with \
             `UPDATE_GOLDEN=1 cargo test --test golden_plan`",
            i + 1
        );
    }
    panic!(
        "{name}: output length changed ({} vs {} lines); if intended, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test golden_plan`",
        actual.lines().count(),
        expected.lines().count()
    );
}

#[test]
fn plan_json_paragon64_is_stable() {
    let out = run_plan(&["plan", "--machine", "paragon64", "--nodes", "25", "--no-des", "--json"]);
    assert!(out.starts_with("{\"budget\":25,"), "unexpected JSON preamble");
    assert!(out.contains("\"sla\":null"), "no SLA requested, field must be null");
    check_golden("plan_paragon64_n25.json", &out);
}

#[test]
fn plan_json_auto_stripe_with_sla_is_stable() {
    // Locks the new surfaces together: the searched stripe axis
    // (--stripe-factor auto) and the SLA block (--max-latency) in one
    // artifact.
    let out = run_plan(&[
        "plan",
        "--machine",
        "paragon",
        "--stripe-factor",
        "auto",
        "--max-latency",
        "0.5",
        "--nodes",
        "50",
        "--no-des",
        "--json",
    ]);
    assert!(out.contains("\"sla\":{\"max_latency\":0.5,"), "SLA block missing");
    check_golden("plan_auto_sla_n50.json", &out);
}
