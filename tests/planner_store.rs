//! Planner regression for the smart storage tier: `--io auto` grows the
//! searched menu with `cached:{MB}` and `prefetch:{depth}` strategies,
//! priced through the same `stap_model::cachetier` model the exact
//! evaluator uses (so the DP bounds stay admissible). The classic
//! two-strategy menu stays the default — golden plan artifacts must not
//! move unless the user opts into the wider search.

use ppstap::cli::auto_io_menu;
use stap_core::IoStrategy;
use stap_model::machines::MachineModel;
use stap_planner::{plan, PlannerConfig};

fn auto_cfg(machines: Vec<MachineModel>, nodes: usize) -> PlannerConfig {
    let mut cfg = PlannerConfig::new(machines, nodes).without_des();
    cfg.ios = auto_io_menu();
    cfg
}

#[test]
fn default_menu_stays_classic_so_goldens_cannot_drift() {
    // The golden-plan artifacts (tests/golden_plan.rs) are byte-locked
    // against the default search; the store-tier strategies must stay
    // opt-in behind `--io auto`.
    let cfg = PlannerConfig::new(vec![MachineModel::paragon(64)], 25).without_des();
    assert_eq!(cfg.ios, vec![IoStrategy::Embedded, IoStrategy::SeparateTask]);
    let report = plan(&cfg);
    assert!(
        report.plans.iter().all(|p| !p.io.uses_store_tier()),
        "a store-tier plan leaked into the default search"
    );
}

#[test]
fn auto_menu_sweeps_store_strategies_and_a_cached_plan_wins_somewhere() {
    // Acceptance: `ppstap plan --io auto` searches
    // {embedded, separate, cached:MB, prefetch:D}, every strategy is
    // actually evaluated, and a cached strategy lands on the Pareto front
    // of at least one swept configuration. The SP's synchronous PIOFS is
    // where the tier shines — the client has no `iread`, so only the
    // server-side cache/prefetcher can hide the read — but every swept
    // machine must at least score the whole menu.
    let mut cached_won = false;
    for nodes in [25usize, 50, 100] {
        for machine in [MachineModel::paragon(16), MachineModel::paragon(64), MachineModel::sp()] {
            let report = plan(&auto_cfg(vec![machine], nodes));
            for io in auto_io_menu() {
                assert!(
                    report.plans.iter().any(|p| p.io == io),
                    "strategy {io:?} was never evaluated at {nodes} nodes"
                );
            }
            cached_won |= report.front().iter().any(|p| matches!(p.io, IoStrategy::Cached { .. }));
        }
    }
    assert!(cached_won, "no cached plan reached any Pareto front");
}

#[test]
fn warm_cache_pareto_dominates_restriping_where_the_working_set_fits() {
    // PIOFS is already striped over 80 servers — restriping has no
    // headroom left — yet every classic read still costs `read + core`
    // because the SP has no `iread`. A warm cache (the 4-cube working
    // set fits `cached:128`) serves repeat reads at copy bandwidth and
    // must strictly dominate the best classic plan on both criteria.
    let report = plan(&auto_cfg(vec![MachineModel::sp()], 50));
    let warm = report
        .plans
        .iter()
        .filter(|p| matches!(p.io, IoStrategy::Cached { mb } if mb >= 128))
        .max_by(|a, b| a.analytic.throughput.total_cmp(&b.analytic.throughput))
        .expect("cached:128 candidates were scored");
    let classic = report
        .plans
        .iter()
        .filter(|p| !p.io.uses_store_tier())
        .max_by(|a, b| a.analytic.throughput.total_cmp(&b.analytic.throughput))
        .expect("classic candidates were scored");
    assert!(
        warm.analytic.throughput > classic.analytic.throughput,
        "warm cache ({:.3} CPI/s) must out-run the maximally striped classic plan ({:.3} CPI/s)",
        warm.analytic.throughput,
        classic.analytic.throughput
    );
    assert!(
        warm.analytic.latency < classic.analytic.latency,
        "warm cache ({:.4} s) must also undercut classic latency ({:.4} s)",
        warm.analytic.latency,
        classic.analytic.latency
    );
    // On the Paragon's narrow stripe the same story holds against the
    // paper's sf=16 read ceiling: caching removes it without migration.
    let narrow = plan(&auto_cfg(vec![MachineModel::paragon(16)], 100));
    let best_cached = narrow
        .plans
        .iter()
        .filter(|p| matches!(p.io, IoStrategy::Cached { mb } if mb >= 64))
        .map(|p| p.analytic.throughput)
        .fold(0.0f64, f64::max);
    let best_classic_narrow = narrow
        .plans
        .iter()
        .filter(|p| !p.io.uses_store_tier())
        .map(|p| p.analytic.throughput)
        .fold(0.0f64, f64::max);
    assert!(
        best_cached > best_classic_narrow,
        "cached ({best_cached:.3}) must beat classic ({best_classic_narrow:.3}) on sf=16"
    );
}
