//! Property tests for the streaming staging tier (`stap-ingest`).
//!
//! Across producer/consumer rate ratios and all three backpressure
//! policies, the ring must never deadlock (the producer owns
//! end-of-stream, so a draining consumer always sees a typed close),
//! must conserve every offered cube (accepted = delivered + dropped,
//! with rejects counted at admission), and must deliver cubes that are
//! bit-identical to the file-staged sequence — the property that makes
//! `--source stream` interchangeable with the paper's staging files.

use ppstap::ingest::{BackpressurePolicy, CpiRing, Frontend, FrontendConfig};
use ppstap::kernels::cube::CubeDims;
use ppstap::radar::{CubeGenerator, Scene};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// The fanout every case cycles through (matches file staging's default
/// round-robin file count in spirit: a small set of distinct cubes).
const FANOUT: usize = 2;

fn frontend_cfg(count: u64, rate: f64) -> FrontendConfig {
    FrontendConfig {
        dims: CubeDims::new(8, 2, 16),
        scene: Scene::benchmark_small(),
        motion: Default::default(),
        waveform_len: 4,
        seed: 11,
        fanout: FANOUT,
        count,
        rate,
    }
}

/// The cube bytes file staging would serve: cube `seq % FANOUT` of the
/// seeded generator.
fn expected_cubes() -> Vec<Vec<u8>> {
    let cfg = frontend_cfg(0, 0.0);
    let mut generator = CubeGenerator::new(cfg.dims, cfg.scene, cfg.waveform_len, cfg.seed);
    (0..FANOUT).map(|_| generator.next_cube().to_range_major_bytes()).collect()
}

/// Pops until the ring closes and empties, pausing `pause` between pops
/// to emulate a slow consumer.
fn drain(ring: &CpiRing, pause: Duration) -> Vec<(u64, Arc<Vec<u8>>)> {
    let mut out = Vec::new();
    while let Ok((cube, _lag)) = ring.pop() {
        out.push((cube.seq, cube.bytes));
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any rate ratio x any policy: the run terminates, every offered
    /// cube is accounted for, and whatever arrives is bit-identical to
    /// its file-staged twin, in strictly increasing sequence order.
    #[test]
    fn rings_never_deadlock_and_conserve_cubes(
        policy_idx in 0usize..3,
        depth in 1usize..6,
        count in 8u64..32,
        rate_idx in 0usize..3,
        consumer_pause_us in 0u64..400,
    ) {
        // 0 = unpaced, else cubes/second: spans slower and faster than
        // the consumer across the pause range.
        let producer_rate = [0.0, 2_000.0, 20_000.0][rate_idx];
        let policy = BackpressurePolicy::ALL[policy_idx];
        let ring = Arc::new(CpiRing::new("prop", depth, policy));
        let fe = Frontend::spawn(Arc::clone(&ring), frontend_cfg(count, producer_rate));
        let delivered = drain(&ring, Duration::from_micros(consumer_pause_us));
        // Terminates: the frontend closes the ring after its last offer,
        // so `drain` saw a typed close rather than blocking forever.
        let report = fe.join();
        prop_assert!(!report.closed_early, "nobody closed the ring under the producer");
        prop_assert_eq!(report.pushed + report.rejected, count, "every offer accounted");

        let stats = ring.stats();
        prop_assert!(stats.conserves(), "ring counters conserve: {:?}", stats);
        prop_assert_eq!(stats.depth, 0, "consumer drained the buffered tail");
        prop_assert_eq!(stats.accepted, report.pushed);
        prop_assert_eq!(stats.delivered as usize, delivered.len());
        prop_assert_eq!(stats.accepted, stats.delivered + stats.dropped);
        if policy == BackpressurePolicy::Block {
            prop_assert_eq!(delivered.len() as u64, count, "block never sheds");
        }

        // Bit-parity with file staging, cube by cube; drop-oldest may
        // gap the sequence but never reorders or corrupts it.
        let expect = expected_cubes();
        for (seq, bytes) in &delivered {
            prop_assert_eq!(
                &***bytes,
                &expect[(seq % FANOUT as u64) as usize][..],
                "cube {} differs from its file-staged twin",
                seq
            );
        }
        for w in delivered.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "sequence order preserved");
        }
    }

    /// Lossless (block) runs replay bit-identically from the same seed:
    /// same sequence numbers, same bytes, run after run.
    #[test]
    fn block_policy_replays_bit_identically(depth in 1usize..5, count in 4u64..20) {
        let run = || {
            let ring = Arc::new(CpiRing::new("replay", depth, BackpressurePolicy::Block));
            let fe = Frontend::spawn(Arc::clone(&ring), frontend_cfg(count, 0.0));
            let out: Vec<(u64, Vec<u8>)> =
                drain(&ring, Duration::ZERO).into_iter().map(|(s, b)| (s, b.to_vec())).collect();
            fe.join();
            out
        };
        let first = run();
        let second = run();
        prop_assert_eq!(first.len() as u64, count);
        prop_assert_eq!(first, second, "same seed, same depth: bit-identical replay");
    }
}

/// End-to-end phase attribution: a file-fed run spends read time and no
/// ingest time; the stream-fed run of the same configuration moves that
/// wait wholesale into the ingest phase while producing bit-equal
/// detection records.
#[test]
fn stream_runs_attribute_staging_to_the_ingest_phase() {
    use ppstap::core::config::StapConfig;
    use ppstap::core::{SourceSpec, StapSystem, StreamSettings};
    use ppstap::pipeline::timing::Phase;
    use ppstap::pipeline::topology::StageId;
    use ppstap::pipeline::ClockSpec;

    fn phase_total(sys: &StapSystem, out: &ppstap::core::StapRunOutput, phase: Phase) -> f64 {
        (0..sys.topology().stage_count()).map(|i| out.timing.phase_time(StageId(i), phase)).sum()
    }
    type DetectionKeys = Vec<(u64, Vec<(usize, usize, usize, u64)>)>;
    fn keys(out: &ppstap::core::StapRunOutput) -> DetectionKeys {
        out.reports
            .iter()
            .map(|r| {
                let mut dets: Vec<_> = r
                    .detections
                    .iter()
                    .map(|d| (d.beam, d.bin, d.range, d.power.to_bits()))
                    .collect();
                dets.sort_unstable();
                (r.cpi, dets)
            })
            .collect()
    }

    let tiny = StapConfig { cpis: 3, warmup: 1, ..StapConfig::default() };
    let file_sys = StapSystem::prepare(tiny.clone()).expect("file system prepares");
    let file_out = file_sys.run_with_clock(ClockSpec::virtual_default()).expect("file run");
    assert!(phase_total(&file_sys, &file_out, Phase::Read) > 0.0, "file runs read");
    assert_eq!(phase_total(&file_sys, &file_out, Phase::Ingest), 0.0, "file runs never ingest");

    let stream_cfg = StapConfig { source: SourceSpec::Stream(StreamSettings::default()), ..tiny };
    let stream_sys = StapSystem::prepare(stream_cfg).expect("stream system prepares");
    let stream_out = stream_sys.run_with_clock(ClockSpec::virtual_default()).expect("stream run");
    assert!(
        phase_total(&stream_sys, &stream_out, Phase::Ingest) > 0.0,
        "stream runs pull from the staging ring"
    );
    assert_eq!(keys(&file_out), keys(&stream_out), "bit-equal detection records");
}
