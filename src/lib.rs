#![warn(missing_docs)]

//! # ppstap — Parallel Pipelined STAP with Parallel-I/O Strategies
//!
//! Umbrella crate re-exporting every subsystem of the IPPS 2000 reproduction
//! *"Design and Evaluation of I/O Strategies for Parallel Pipelined STAP
//! Applications"* (Liao, Choudhary, Weiner, Varshney).
//!
//! The workspace contains:
//! - [`math`] — from-scratch complex numerics, FFT, linear algebra;
//! - [`kernels`] — the STAP signal-processing kernels;
//! - [`radar`] — synthetic radar scene / CPI cube generation;
//! - [`comm`] — an in-process MPI-like message-passing substrate;
//! - [`pfs`] — a striped parallel file system (Paragon PFS / IBM PIOFS models);
//! - [`ingest`] — the streaming CPI staging tier: bounded per-mission rings
//!   with backpressure fed by synthetic radar frontends;
//! - [`des`] — a discrete-event simulation engine;
//! - [`model`] — machine/cost models and the paper's analytic equations;
//! - [`trace`] — phase spans, trace clocks, metrics, Chrome-trace export;
//! - [`pipeline`] — the generic parallel pipeline runtime;
//! - [`store`] — the smart storage tier: server-side read cache, pattern
//!   prefetcher, out-of-core cube streaming, and online restriping;
//! - [`core`] — the paper's STAP pipeline system and experiment drivers;
//! - [`planner`] — bi-criteria configuration search over node assignments,
//!   I/O strategies, and task combining (`ppstap plan`);
//! - [`serve`] — multi-tenant mission scheduler: admission, placement, and
//!   execution of concurrent pipelines over a shared pool (`ppstap serve`);
//! - [`scenario`] — the scenario catalog and requirements-driven
//!   detection-quality verification (`ppstap verify`).

pub mod cli;

pub use stap_comm as comm;
pub use stap_core as core;
pub use stap_des as des;
pub use stap_ingest as ingest;
pub use stap_kernels as kernels;
pub use stap_math as math;
pub use stap_model as model;
pub use stap_pfs as pfs;
pub use stap_pipeline as pipeline;
pub use stap_planner as planner;
pub use stap_radar as radar;
pub use stap_scenario as scenario;
pub use stap_serve as serve;
pub use stap_store as store;
pub use stap_trace as trace;
