//! Command-line interface of the `ppstap` driver binary.
//!
//! A small hand-rolled parser (no external dependencies) covering what a
//! user does with this repository: run the real pipeline, simulate a
//! paper-scale configuration, regenerate the evaluation tables, sweep the
//! stripe factor, search plans, and serve multi-mission fleets.

use stap_core::{FailurePolicy, IoStrategy, KernelPath, ScheduleMode, SourceSpec, TailStructure};
use stap_model::machines::MachineModel;
use stap_pfs::FaultPlan;
use stap_serve::{ArrivalSpec, FleetFault};
use stap_store::CubeAccess;

/// Parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `ppstap run` — the real threaded pipeline on a small cube.
    Run(RunArgs),
    /// `ppstap sim` — one virtual-time cell on a machine model.
    Sim(SimArgs),
    /// `ppstap tables` — regenerate the full evaluation.
    Tables {
        /// Output directory for `*.txt` artifacts (stdout only when absent).
        out: Option<String>,
    },
    /// `ppstap sweep` — stripe-factor sweep at a node count.
    Sweep {
        /// Compute nodes.
        nodes: usize,
    },
    /// `ppstap plan` — search configurations for the Pareto front.
    Plan(PlanArgs),
    /// `ppstap serve` — run (or simulate) a multi-mission fleet from a
    /// workload script.
    Serve(ServeArgs),
    /// `ppstap submit` — one-shot: admit and run a single mission now.
    Submit(SubmitArgs),
    /// `ppstap verify` — detection-quality verification of a catalog
    /// scenario against its requirements.
    Verify(VerifyArgs),
    /// `ppstap help` or `--help`.
    Help,
}

/// Arguments of `ppstap verify`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VerifyArgs {
    /// Catalog scenario to verify (empty with `--list`).
    pub scenario: String,
    /// List the catalog instead of verifying.
    pub list: bool,
    /// Requirements file overriding the scenario's built-in requirement.
    pub requirements: Option<String>,
    /// Single-axis sweep spec (`AXIS=v1,v2,...` with AXIS one of
    /// snr|jnr|cnr|seed), validated at parse time.
    pub sweep: Option<String>,
    /// CPI source spec (`file` or `stream[:opts]`), validated at parse
    /// time; `None` means file staging.
    pub source: Option<String>,
    /// Emit the machine-readable requirement report instead of the table.
    pub json: bool,
}

/// Arguments of `ppstap serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeArgs {
    /// Path of the workload script (`at <secs> submit …` lines). Empty
    /// when the workload comes from `--arrivals` instead.
    pub script: String,
    /// Elastic workload: generate the script from this arrival process
    /// instead of reading `--script`.
    pub arrivals: Option<ArrivalSpec>,
    /// Arrival-window length in seconds (`--arrivals` only).
    pub duration: f64,
    /// Seed of the deterministic arrival draw (`--arrivals` only).
    pub arrival_seed: u64,
    /// Mission source spec applied to every generated mission
    /// (`file` or `stream[:opts]`, the `ppstap run --source` grammar).
    pub source: Option<String>,
    /// Staging-tier capacity in cubes shared by all stream missions.
    pub staging: usize,
    /// Predict in DES capacity mode instead of executing pipelines.
    pub sim: bool,
    /// Concurrent missions the worker pool executes.
    pub workers: usize,
    /// Nodes in the shared pool.
    pub pool_nodes: usize,
    /// Bounded submission-queue capacity.
    pub queue_capacity: usize,
    /// Emit the machine-readable fleet report instead of the table.
    pub json: bool,
    /// Write the merged mission-tagged Chrome trace here (real mode only).
    pub trace: Option<String>,
    /// Injected fleet-level fault (`server-loss:IDX@T`), applied to both
    /// real execution and `--sim`.
    pub fault: Option<FleetFault>,
}

impl Default for ServeArgs {
    fn default() -> Self {
        Self {
            script: String::new(),
            arrivals: None,
            duration: 10.0,
            arrival_seed: 7,
            source: None,
            staging: 256,
            sim: false,
            workers: 2,
            pool_nodes: 128,
            queue_capacity: 16,
            json: false,
            trace: None,
            fault: None,
        }
    }
}

/// Arguments of `ppstap submit`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitArgs {
    /// The mission's `key=value` tokens, in the workload-script submit
    /// grammar (`name=…`, `nodes=…`, `max-latency=…`, …).
    pub kvs: Vec<String>,
    /// Emit the machine-readable mission report instead of the table.
    pub json: bool,
}

impl SubmitArgs {
    /// The equivalent one-event workload script.
    pub fn script_text(&self) -> String {
        format!("at 0 submit {}\n", self.kvs.join(" "))
    }
}

/// Arguments of `ppstap plan`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanArgs {
    /// Machine family: "paragon" (both stripe factors unless narrowed by
    /// `--stripe-factor`), "paragon16", "paragon64", "paragon-het", "sp",
    /// or "all".
    pub machine: String,
    /// Narrows "paragon" to one stripe factor (16 or 64).
    pub stripe_factor: Option<usize>,
    /// `--stripe-factor auto`: the planner searches the full sweep range
    /// (8..128) as a first-class axis instead of fixing a factor up front.
    pub stripe_auto: bool,
    /// `--io` narrowing: `None` searches the paper's classic pair
    /// {embedded, separate}; `auto` expands to the full store-tier menu
    /// ([`auto_io_menu`]); a single strategy pins the axis.
    pub ios: Option<Vec<IoStrategy>>,
    /// Compute-node budget for the seven pipeline tasks.
    pub nodes: usize,
    /// Emit the report as JSON instead of the text table.
    pub json: bool,
    /// Skip stage-2 DES validation (analytic metrics only).
    pub no_des: bool,
    /// Latency SLA in seconds: report the max-throughput front plan that
    /// meets the bound (or why none does).
    pub max_latency: Option<f64>,
    /// Per-node per-CPI failure rate enabling tri-criteria (throughput x
    /// latency x reliability) planning.
    pub fault_rate: Option<f64>,
    /// Mission-failure-probability SLA: report the max-delivered-throughput
    /// front plan whose failure probability meets the bound.
    pub max_failure_prob: Option<f64>,
}

impl Default for PlanArgs {
    fn default() -> Self {
        Self {
            machine: "paragon".into(),
            stripe_factor: None,
            stripe_auto: false,
            ios: None,
            nodes: 100,
            json: false,
            no_des: false,
            max_latency: None,
            fault_rate: None,
            max_failure_prob: None,
        }
    }
}

impl PlanArgs {
    /// Resolves the machine family + stripe factor into concrete models.
    pub fn machines(&self) -> Result<Vec<MachineModel>, ParseError> {
        if self.stripe_auto && !["paragon", "paragon-het"].contains(&self.machine.as_str()) {
            return Err(ParseError(format!(
                "--stripe-factor auto only applies to --machine paragon|paragon-het, not '{}'",
                self.machine
            )));
        }
        match (self.machine.as_str(), self.stripe_factor) {
            ("paragon", None) if self.stripe_auto => Ok(vec![MachineModel::paragon_tunable()]),
            ("paragon", None) => Ok(vec![MachineModel::paragon(16), MachineModel::paragon(64)]),
            ("paragon", Some(sf)) if sf == 16 || sf == 64 => Ok(vec![MachineModel::paragon(sf)]),
            ("paragon", Some(sf)) => {
                Err(ParseError(format!("--stripe-factor must be 16 or 64, got {sf}")))
            }
            // The heterogeneous pool always searches its stripe candidates.
            ("paragon-het", None) => Ok(vec![MachineModel::paragon_hetero()]),
            ("all", None) => Ok(MachineModel::paper_machines()),
            (key, None) => Ok(vec![machine_for(key)?]),
            (key, Some(_)) => Err(ParseError(format!(
                "--stripe-factor only applies to --machine paragon, not '{key}'"
            ))),
        }
    }
}

/// Where `ppstap run` sends its structured phase trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceMode {
    /// Write a Chrome trace-event JSON file (`chrome://tracing`,
    /// Perfetto) to this path.
    Chrome(String),
    /// Print the full per-stage phase-statistics table to stdout.
    Text,
}

fn parse_trace(v: &str) -> Result<TraceMode, ParseError> {
    if v == "text" {
        return Ok(TraceMode::Text);
    }
    if let Some(path) = v.strip_prefix("chrome:") {
        if path.is_empty() {
            return Err(ParseError("--trace chrome: needs a file path".into()));
        }
        return Ok(TraceMode::Chrome(path.to_string()));
    }
    Err(ParseError(format!("--trace must be text|chrome:PATH, got '{v}'")))
}

/// Arguments of `ppstap run`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// I/O design.
    pub io: IoStrategy,
    /// Cube access mode (`--access resident|ooc:ROWS`): out-of-core
    /// streams demand reads through footprint-bounded chunks.
    pub access: CubeAccess,
    /// Tail structure.
    pub tail: TailStructure,
    /// CPIs to execute.
    pub cpis: u64,
    /// File-system personality: "pfs16", "pfs64" or "piofs".
    pub fs: String,
    /// Write detection reports back to the file system.
    pub record_reports: bool,
    /// Injected fault schedule (`--fault-plan` grammar; seeded by
    /// `--fault-seed`).
    pub fault_plan: Option<FaultPlan>,
    /// Seed recorded into the fault plan (0 when unset).
    pub fault_seed: u64,
    /// How the pipeline reacts to read failures.
    pub failure_policy: FailurePolicy,
    /// Enable stage watchdogs (deadline factor over predicted task times).
    pub watchdog: bool,
    /// Structured trace output (`--trace text|chrome:PATH`).
    pub trace: Option<TraceMode>,
    /// Time phases on a deterministic virtual clock (timestamps count
    /// clock observations), making trace output bit-reproducible.
    pub virtual_clock: bool,
    /// CPI source spec (`file` or `stream[:opts]`), validated at parse
    /// time; `None` means the default file staging.
    pub source: Option<String>,
    /// Kernel implementation (`--kernels scalar|blocked|simd|auto`).
    pub kernels: KernelPath,
    /// Intra-stage scheduling (`--schedule static|steal`).
    pub schedule: ScheduleMode,
    /// Disable the zero-copy slab data plane: allocate fresh buffers and
    /// deep-copy every message at the send boundary (the A/B baseline).
    pub copy_comm: bool,
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            io: IoStrategy::Embedded,
            access: CubeAccess::Resident,
            tail: TailStructure::Split,
            cpis: 6,
            fs: "pfs16".into(),
            record_reports: false,
            fault_plan: None,
            fault_seed: 0,
            failure_policy: FailurePolicy::Abort,
            watchdog: false,
            trace: None,
            virtual_clock: false,
            source: None,
            kernels: KernelPath::Auto,
            schedule: ScheduleMode::Static,
            copy_comm: false,
        }
    }
}

/// Arguments of `ppstap sim`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimArgs {
    /// Machine key: "paragon16", "paragon64" or "sp".
    pub machine: String,
    /// I/O design.
    pub io: IoStrategy,
    /// Tail structure.
    pub tail: TailStructure,
    /// Compute nodes.
    pub nodes: usize,
    /// Print the execution Gantt chart.
    pub trace: bool,
    /// Per-CPI read-fault probability for the virtual-time fault model
    /// (0 = fault-free).
    pub fault_rate: f64,
    /// Seed of the deterministic per-CPI fault draw.
    pub fault_seed: u64,
}

impl Default for SimArgs {
    fn default() -> Self {
        Self {
            machine: "paragon64".into(),
            io: IoStrategy::Embedded,
            tail: TailStructure::Split,
            nodes: 50,
            trace: false,
            fault_rate: 0.0,
            fault_seed: 0,
        }
    }
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_io(v: &str) -> Result<IoStrategy, ParseError> {
    IoStrategy::parse(v).map_err(|e| ParseError(format!("--io: {e}")))
}

/// The strategy menu `--io auto` hands the planner: the paper's two
/// designs plus the store-tier strategies at a few cache sizes and
/// read-ahead depths.
pub fn auto_io_menu() -> Vec<IoStrategy> {
    vec![
        IoStrategy::Embedded,
        IoStrategy::SeparateTask,
        IoStrategy::Cached { mb: 32 },
        IoStrategy::Cached { mb: 64 },
        IoStrategy::Cached { mb: 128 },
        IoStrategy::Prefetch { depth: 2 },
        IoStrategy::Prefetch { depth: 4 },
    ]
}

fn parse_tail(v: &str) -> Result<TailStructure, ParseError> {
    match v {
        "split" => Ok(TailStructure::Split),
        "combined" => Ok(TailStructure::Combined),
        other => Err(ParseError(format!("--tail must be split|combined, got '{other}'"))),
    }
}

/// Resolves a machine key to its model.
pub fn machine_for(key: &str) -> Result<MachineModel, ParseError> {
    match key {
        "paragon16" => Ok(MachineModel::paragon(16)),
        "paragon64" => Ok(MachineModel::paragon(64)),
        "paragon-het" => Ok(MachineModel::paragon_hetero()),
        "sp" => Ok(MachineModel::sp()),
        other => Err(ParseError(format!(
            "--machine must be paragon16|paragon64|paragon-het|sp, got '{other}'"
        ))),
    }
}

fn take_value<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a str>,
) -> Result<&'a str, ParseError> {
    it.next().ok_or_else(|| ParseError(format!("{flag} needs a value")))
}

/// Parses the argument list (without the program name).
pub fn parse(args: &[&str]) -> Result<Command, ParseError> {
    let mut it = args.iter().copied();
    let cmd = match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    match cmd {
        "run" => {
            let mut a = RunArgs::default();
            let mut fault_spec: Option<String> = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--io" => a.io = parse_io(take_value(flag, &mut it)?)?,
                    "--access" => {
                        a.access = CubeAccess::parse(take_value(flag, &mut it)?)
                            .map_err(|e| ParseError(format!("--access: {e}")))?;
                    }
                    "--tail" => a.tail = parse_tail(take_value(flag, &mut it)?)?,
                    "--cpis" => {
                        a.cpis = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--cpis must be a number".into()))?;
                        if a.cpis < 2 {
                            return Err(ParseError("--cpis must be at least 2".into()));
                        }
                    }
                    "--fs" => {
                        let v = take_value(flag, &mut it)?;
                        if !["pfs16", "pfs64", "piofs"].contains(&v) {
                            return Err(ParseError(format!(
                                "--fs must be pfs16|pfs64|piofs, got '{v}'"
                            )));
                        }
                        a.fs = v.to_string();
                    }
                    "--record-reports" => a.record_reports = true,
                    "--fault-plan" => fault_spec = Some(take_value(flag, &mut it)?.to_string()),
                    "--fault-seed" => {
                        a.fault_seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--fault-seed must be a number".into()))?;
                    }
                    "--failure-policy" => {
                        a.failure_policy =
                            FailurePolicy::parse(take_value(flag, &mut it)?).map_err(ParseError)?;
                    }
                    "--watchdog" => a.watchdog = true,
                    "--trace" => a.trace = Some(parse_trace(take_value(flag, &mut it)?)?),
                    "--virtual-clock" => a.virtual_clock = true,
                    "--source" => {
                        let v = take_value(flag, &mut it)?;
                        SourceSpec::parse(v).map_err(ParseError)?; // validate now
                        a.source = Some(v.to_string());
                    }
                    "--kernels" => {
                        a.kernels =
                            KernelPath::parse(take_value(flag, &mut it)?).map_err(ParseError)?;
                    }
                    "--schedule" => {
                        a.schedule =
                            ScheduleMode::parse(take_value(flag, &mut it)?).map_err(ParseError)?;
                    }
                    "--copy-comm" => a.copy_comm = true,
                    other => return Err(ParseError(format!("unknown flag '{other}' for run"))),
                }
            }
            // The plan is seeded, so it can only be built once both
            // `--fault-plan` and `--fault-seed` have been consumed.
            if let Some(spec) = fault_spec {
                a.fault_plan = Some(FaultPlan::parse(&spec, a.fault_seed).map_err(ParseError)?);
            }
            Ok(Command::Run(a))
        }
        "sim" => {
            let mut a = SimArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--machine" => {
                        let v = take_value(flag, &mut it)?;
                        machine_for(v)?; // validate now
                        a.machine = v.to_string();
                    }
                    "--io" => a.io = parse_io(take_value(flag, &mut it)?)?,
                    "--tail" => a.tail = parse_tail(take_value(flag, &mut it)?)?,
                    "--nodes" => {
                        a.nodes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--nodes must be a number".into()))?;
                        if a.nodes < 7 {
                            return Err(ParseError(
                                "--nodes must be at least 7 (one per task)".into(),
                            ));
                        }
                    }
                    "--trace" => a.trace = true,
                    "--fault-rate" => {
                        let v: f64 = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--fault-rate must be a probability".into()))?;
                        if !(0.0..=1.0).contains(&v) {
                            return Err(ParseError("--fault-rate must be in [0, 1]".into()));
                        }
                        a.fault_rate = v;
                    }
                    "--fault-seed" => {
                        a.fault_seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--fault-seed must be a number".into()))?;
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}' for sim"))),
                }
            }
            Ok(Command::Sim(a))
        }
        "tables" => {
            let mut out = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--out" => out = Some(take_value(flag, &mut it)?.to_string()),
                    other => return Err(ParseError(format!("unknown flag '{other}' for tables"))),
                }
            }
            Ok(Command::Tables { out })
        }
        "sweep" => {
            let mut nodes = 100usize;
            while let Some(flag) = it.next() {
                match flag {
                    "--nodes" => {
                        nodes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--nodes must be a number".into()))?;
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}' for sweep"))),
                }
            }
            Ok(Command::Sweep { nodes })
        }
        "plan" => {
            let mut a = PlanArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--machine" => {
                        let v = take_value(flag, &mut it)?;
                        let known =
                            ["paragon", "paragon16", "paragon64", "paragon-het", "sp", "all"];
                        if !known.contains(&v) {
                            return Err(ParseError(format!(
                                "--machine must be paragon|paragon16|paragon64|paragon-het|sp|all, got '{v}'"
                            )));
                        }
                        a.machine = v.to_string();
                    }
                    "--io" => {
                        let v = take_value(flag, &mut it)?;
                        a.ios = Some(if v == "auto" { auto_io_menu() } else { vec![parse_io(v)?] });
                    }
                    "--stripe-factor" => {
                        let v = take_value(flag, &mut it)?;
                        if v == "auto" {
                            a.stripe_auto = true;
                            a.stripe_factor = None;
                        } else {
                            a.stripe_auto = false;
                            a.stripe_factor = Some(v.parse().map_err(|_| {
                                ParseError("--stripe-factor must be a number or 'auto'".into())
                            })?);
                        }
                    }
                    "--max-latency" => {
                        let v: f64 = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--max-latency must be a number of seconds".into())
                        })?;
                        if !(v > 0.0 && v.is_finite()) {
                            return Err(ParseError("--max-latency must be positive".into()));
                        }
                        a.max_latency = Some(v);
                    }
                    "--nodes" => {
                        a.nodes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--nodes must be a number".into()))?;
                        if a.nodes < 7 {
                            return Err(ParseError(
                                "--nodes must be at least 7 (one per task)".into(),
                            ));
                        }
                    }
                    "--json" => a.json = true,
                    "--no-des" => a.no_des = true,
                    "--fault-rate" => {
                        let v: f64 = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--fault-rate must be a per-node per-CPI rate".into())
                        })?;
                        if !(v > 0.0 && v < 1.0) {
                            return Err(ParseError("--fault-rate must be in (0, 1)".into()));
                        }
                        a.fault_rate = Some(v);
                    }
                    "--max-failure-prob" => {
                        let v: f64 = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--max-failure-prob must be a probability".into())
                        })?;
                        if !(0.0..=1.0).contains(&v) {
                            return Err(ParseError("--max-failure-prob must be in [0, 1]".into()));
                        }
                        a.max_failure_prob = Some(v);
                    }
                    other => return Err(ParseError(format!("unknown flag '{other}' for plan"))),
                }
            }
            if a.max_failure_prob.is_some() && a.fault_rate.is_none() {
                return Err(ParseError(
                    "--max-failure-prob needs --fault-rate to define the fault model".into(),
                ));
            }
            a.machines()?; // validate the combination now
            Ok(Command::Plan(a))
        }
        "serve" => {
            let mut a = ServeArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--script" => a.script = take_value(flag, &mut it)?.to_string(),
                    "--arrivals" => {
                        a.arrivals = Some(
                            ArrivalSpec::parse(take_value(flag, &mut it)?).map_err(ParseError)?,
                        );
                    }
                    "--duration" => {
                        let v: f64 = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--duration must be a number of seconds".into())
                        })?;
                        if !(v > 0.0 && v.is_finite()) {
                            return Err(ParseError("--duration must be positive".into()));
                        }
                        a.duration = v;
                    }
                    "--arrival-seed" => {
                        a.arrival_seed = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--arrival-seed must be a number".into()))?;
                    }
                    "--source" => {
                        let v = take_value(flag, &mut it)?;
                        SourceSpec::parse(v).map_err(ParseError)?; // validate now
                        a.source = Some(v.to_string());
                    }
                    "--staging" => {
                        a.staging = take_value(flag, &mut it)?.parse().map_err(|_| {
                            ParseError("--staging must be a number of cubes".into())
                        })?;
                        if a.staging == 0 {
                            return Err(ParseError("--staging must be at least 1".into()));
                        }
                    }
                    "--sim" => a.sim = true,
                    "--workers" => {
                        a.workers = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--workers must be a number".into()))?;
                        if a.workers == 0 {
                            return Err(ParseError("--workers must be at least 1".into()));
                        }
                    }
                    "--pool-nodes" => {
                        a.pool_nodes = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--pool-nodes must be a number".into()))?;
                        if a.pool_nodes < 7 {
                            return Err(ParseError(
                                "--pool-nodes must be at least 7 (one per task)".into(),
                            ));
                        }
                    }
                    "--queue-capacity" => {
                        a.queue_capacity = take_value(flag, &mut it)?
                            .parse()
                            .map_err(|_| ParseError("--queue-capacity must be a number".into()))?;
                        if a.queue_capacity == 0 {
                            return Err(ParseError("--queue-capacity must be at least 1".into()));
                        }
                    }
                    "--json" => a.json = true,
                    "--fault-plan" => {
                        a.fault = Some(
                            FleetFault::parse(take_value(flag, &mut it)?).map_err(ParseError)?,
                        );
                    }
                    "--trace" => match parse_trace(take_value(flag, &mut it)?)? {
                        TraceMode::Chrome(path) => a.trace = Some(path),
                        TraceMode::Text => {
                            return Err(ParseError(
                                "serve --trace must be chrome:PATH (the fleet table already \
                                 prints to stdout)"
                                    .into(),
                            ))
                        }
                    },
                    other => return Err(ParseError(format!("unknown flag '{other}' for serve"))),
                }
            }
            if a.script.is_empty() && a.arrivals.is_none() {
                return Err(ParseError("serve needs --script FILE or --arrivals SPEC".into()));
            }
            if !a.script.is_empty() && a.arrivals.is_some() {
                return Err(ParseError(
                    "--script and --arrivals both name a workload; pick one".into(),
                ));
            }
            if a.sim && a.trace.is_some() {
                return Err(ParseError(
                    "--trace applies to real execution; --sim predicts without running \
                     pipelines"
                        .into(),
                ));
            }
            Ok(Command::Serve(a))
        }
        "submit" => {
            let mut a = SubmitArgs { kvs: Vec::new(), json: false };
            for word in it {
                match word {
                    "--json" => a.json = true,
                    kv if kv.contains('=') => a.kvs.push(kv.to_string()),
                    other => {
                        return Err(ParseError(format!(
                            "submit takes key=value tokens (and --json), got '{other}'"
                        )))
                    }
                }
            }
            // Validate the mission grammar now so errors surface at parse
            // time, not mid-fleet.
            stap_serve::WorkloadScript::parse(&a.script_text())
                .map_err(|e| ParseError(format!("submit: {e}")))?;
            Ok(Command::Submit(a))
        }
        "verify" => {
            let mut a = VerifyArgs::default();
            while let Some(flag) = it.next() {
                match flag {
                    "--scenario" => {
                        let v = take_value(flag, &mut it)?;
                        if stap_scenario::find(v).is_none() {
                            let names: Vec<String> =
                                stap_scenario::catalog().into_iter().map(|s| s.name).collect();
                            return Err(ParseError(format!(
                                "unknown scenario '{v}' (catalog: {})",
                                names.join(", ")
                            )));
                        }
                        a.scenario = v.to_string();
                    }
                    "--list" => a.list = true,
                    "--requirements" => {
                        a.requirements = Some(take_value(flag, &mut it)?.to_string());
                    }
                    "--sweep" => {
                        let v = take_value(flag, &mut it)?;
                        stap_scenario::Sweep::parse(v).map_err(ParseError)?; // validate now
                        a.sweep = Some(v.to_string());
                    }
                    "--source" => {
                        let v = take_value(flag, &mut it)?;
                        SourceSpec::parse(v).map_err(ParseError)?; // validate now
                        a.source = Some(v.to_string());
                    }
                    "--json" => a.json = true,
                    other => return Err(ParseError(format!("unknown flag '{other}' for verify"))),
                }
            }
            if a.scenario.is_empty() && !a.list {
                return Err(ParseError("verify needs --scenario NAME or --list".into()));
            }
            if a.list && (a.sweep.is_some() || a.requirements.is_some()) {
                return Err(ParseError(
                    "--list only lists the catalog; drop the other flags".into(),
                ));
            }
            Ok(Command::Verify(a))
        }
        other => Err(ParseError(format!("unknown command '{other}' (try 'ppstap help')"))),
    }
}

/// The help text.
pub const HELP: &str = "\
ppstap — parallel pipelined STAP with parallel-I/O strategies (IPPS 2000 reproduction)

USAGE:
    ppstap run   [--io embedded|separate|cached:MB|prefetch:D]
                 [--access resident|ooc:ROWS]
                 [--tail split|combined] [--cpis N]
                 [--fs pfs16|pfs64|piofs] [--record-reports]
                 [--fault-plan SPEC] [--fault-seed N] [--watchdog]
                 [--failure-policy abort|retry:A:MS|skip:A:MS:MAXC]
                 [--trace text|chrome:PATH] [--virtual-clock]
                 [--source file|stream[:depth=N,policy=P,rate=R,strict-lag]]
                 [--kernels scalar|blocked|simd|auto] [--schedule static|steal]
                 [--copy-comm]
        Run the real threaded pipeline on a small cube and print timings,
        detections, throughput and latency. --source stream replaces the
        file-staging read path with the in-memory staging tier: a seeded
        radar frontend pushes the same cube sequence into a bounded ring
        (depth=N cubes) the pipeline pulls from, with backpressure policy
        block (default), drop-oldest, or reject, paced at rate=R cubes/s
        (0 = unpaced); detections are bit-identical to the file run, with
        read time re-attributed to the ingest phase. --fault-plan injects a seeded,
        reproducible fault schedule into the CPI read path; SPEC is a
        comma-separated list of:
            file:NAME@A..B       NAME unavailable for CPIs [A, B)
            server:IDX@A..B      stripe server IDX down for the window
            transient:NAME:K@A..B   first K attempts of each read fail
            flaky:NAME:P@A..B    each attempt fails with probability P
            slow:NAME:MS@A..B    reads take an extra MS milliseconds
        --failure-policy decides what a failed read does: abort the run
        (default), retry A times with exponential backoff from MS ms, or
        skip — retry then drop the CPI as a gap bubble, aborting only
        after MAXC consecutive drops. --watchdog arms per-stage deadlines
        derived from the predicted task times. --trace text prints the
        per-stage phase-statistics table (count/sum/min/max/p50/p99 per
        phase); --trace chrome:PATH writes a Chrome trace-event JSON file
        (load in chrome://tracing or Perfetto; one track per stage node,
        retries linked by flow arrows). --virtual-clock times phases on a
        deterministic virtual clock so trace output is bit-reproducible.
        --kernels picks the kernel implementation: scalar is the naive
        reference loop nest, blocked the cache-blocked panels, simd adds
        explicit SSE3/AVX inner loops (runtime-detected), auto (default)
        the fastest available — all paths are bit-identical. --schedule
        steal splits each CPI's kernels into sub-CPI items run by a
        work-stealing pool (traced as the steal phase); outputs stay
        bit-identical to static. --copy-comm disables the zero-copy slab
        data plane, deep-copying every inter-stage message — the A/B
        baseline for the arena-backed default. --io cached:MB puts the
        stap-store tier (an MB-MiB LRU read cache plus a one-deep pattern
        prefetcher) in front of the embedded reads; --io prefetch:D runs
        the tier cacheless-warm with D cubes of server-side read-ahead.
        The run then prints a greppable 'cache hit-rate' line and traces
        hits as the cachehit phase. --access ooc:ROWS streams demand
        misses through ROWS-row chunks charged against a hard footprint
        meter (the run prints the 'ooc footprint' peak-vs-bound line);
        detections stay bit-identical to resident access.

    ppstap sim   [--machine paragon16|paragon64|sp] [--io embedded|separate]
                 [--tail split|combined] [--nodes N] [--trace]
                 [--fault-rate P] [--fault-seed N]
        Simulate one paper-scale configuration in virtual time.
        --fault-rate P drops each CPI's read with probability P under the
        skip policy's virtual-time analogue (deterministic per seed),
        reporting dropped CPIs and delivered throughput.

    ppstap tables [--out DIR]
        Regenerate Tables 1-4 and Figures 5-8 (plus ablations and the
        validation grid), optionally writing DIR/*.txt.

    ppstap sweep [--nodes N]
        Stripe-factor sweep at N compute nodes.

    ppstap plan  [--machine paragon|paragon16|paragon64|paragon-het|sp|all]
                 [--io embedded|separate|cached:MB|prefetch:D|auto]
                 [--stripe-factor 16|64|auto] [--nodes N] [--max-latency S]
                 [--fault-rate R] [--max-failure-prob P] [--json] [--no-des]
        Search node assignments x I/O strategies x task combining for the
        throughput/latency Pareto front (DES-validated unless --no-des),
        printing every pruned candidate with the reason it lost.
        --io auto widens the strategy axis beyond the paper's pair with
        the stap-store strategies (cached:32|64|128, prefetch:2|4),
        searched under the same admissible DP bounds; a single --io value
        pins the axis. --stripe-factor auto adds the PFS stripe factor (8..128) as a search
        axis; paragon-het plans a mixed 96+32-node pool, packing fast nodes
        onto the heaviest tasks. --max-latency S filters the front to plans
        meeting the latency SLA and names the max-throughput survivor.
        --fault-rate R enables tri-criteria planning: each node fails with
        per-CPI rate R, the search space gains stage replication and
        checkpoint/restart placements, plans are scored on *delivered*
        throughput and mission-survival probability, and the front becomes
        throughput x latency x reliability. --max-failure-prob P (requires
        --fault-rate) names the max-delivered-throughput survivor whose
        mission-failure probability meets the bound.

    ppstap serve (--script FILE | --arrivals SPEC) [--sim] [--workers N]
                 [--pool-nodes N] [--queue-capacity N] [--staging N]
                 [--duration S] [--arrival-seed N] [--source SPEC]
                 [--fault-plan server-loss:IDX@T] [--json] [--trace chrome:PATH]
        Run a multi-mission fleet from a workload script: each line is
            at <secs> submit name=<id> [machine=KEY] [nodes=N] [cpis=C]
                     [priority=P] [max-latency=S] [io=embedded|separate]
                     [tail=split|combined] [source=file|stream]
                     [staging=N] [backpressure=POLICY] [rate=R]
            at <secs> cancel name=<id>
        source=stream feeds the mission from the in-memory staging tier
        (a per-mission ring of staging=N cubes under backpressure=block|
        drop-oldest|reject, frontend paced at rate=R cubes/s); the
        scheduler charges each stream mission's ring against one shared
        staging tier of --staging cubes. --arrivals SPEC replaces the
        script with an elastic arrival process over [0, --duration):
            poisson:RATE          memoryless arrivals at RATE missions/s
            bursty:LO:HI:DWELL    MMPP-2 switching between LO and HI
                                  missions/s with mean dwell DWELL s
            diurnal:MEAN:PERIOD   sinusoidal rate around MEAN with
                                  period PERIOD s
        drawn deterministically from --arrival-seed; --source SPEC (the
        run --source grammar) sets every generated mission's source.
        Admission re-plans each mission inside the currently-free node
        budget (typed rejections: pool exceeded, no feasible plan, queue
        full); admitted missions wait in a bounded priority queue and run
        on a bounded worker pool under watchdogs. Prints the per-mission
        fleet table (queue wait, plan, throughput, drops, SLA verdict);
        --json emits the machine-readable fleet report; --trace chrome:PATH
        writes one merged Chrome trace with a mission-tagged track per
        mission. --sim predicts the same script in DES capacity mode
        (shared FCFS stripe servers; stream missions gate on a virtual
        staging ring instead of the store) and reports per-mission queue
        wait, slowdown, SLA hit-rate, and fleet store utilization.
        --fault-plan server-loss:IDX@T permanently kills stripe server IDX
        once a mission reaches CPI T: in-flight missions fail over (the
        store is re-striped over the survivors, the mission re-planned
        inside its reserved nodes and completed degraded, the event visible
        as a failover span in the trace), and the report grades SLA
        hit-rate with and without the failover path; --sim predicts the
        same fault schedule in capacity mode.

    ppstap submit name=<id> [key=value ...] [--json]
        One-shot serve: admit and run a single mission now, printing its
        mission report (same key=value grammar as the script's submit).

    ppstap verify (--scenario NAME | --list) [--requirements FILE]
                  [--sweep AXIS=v1,v2,...] [--source file|stream[:opts]]
                  [--json]
        Run the real seven-task pipeline over a catalog scenario and check
        the measured detection quality — Pd/Pfa from truth-matched CFAR
        detections, SINR loss against optimal weights — against the
        scenario's requirements, printing a pass/fail table with margins
        (greppable 'result: PASS'/'result: FAIL' line; exit code 1 on
        FAIL). --list prints the catalog. --requirements FILE overrides
        the built-in bounds with 'key = value' lines (min_pd, max_pfa,
        max_sinr_loss_db, pfa_within_sigmas). --sweep re-evaluates the
        scenario once per value along one axis (snr|jnr|cnr|seed).
        --source stream feeds the pipeline from the staging tier instead
        of files (detections are identical by construction — that
        invariance is itself under test). --json emits the machine-
        readable requirement report.

    ppstap help
        Show this text.
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_help_forms() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults_and_flags() {
        assert_eq!(parse(&["run"]).unwrap(), Command::Run(RunArgs::default()));
        let c = parse(&[
            "run",
            "--io",
            "separate",
            "--tail",
            "combined",
            "--cpis",
            "9",
            "--fs",
            "piofs",
            "--record-reports",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Run(RunArgs {
                io: IoStrategy::SeparateTask,
                tail: TailStructure::Combined,
                cpis: 9,
                fs: "piofs".into(),
                record_reports: true,
                ..RunArgs::default()
            })
        );
    }

    #[test]
    fn run_trace_flags() {
        let c = parse(&["run", "--trace", "text", "--virtual-clock"]).unwrap();
        assert_eq!(
            c,
            Command::Run(RunArgs {
                trace: Some(TraceMode::Text),
                virtual_clock: true,
                ..RunArgs::default()
            })
        );
        let c = parse(&["run", "--trace", "chrome:out.json"]).unwrap();
        assert_eq!(
            c,
            Command::Run(RunArgs {
                trace: Some(TraceMode::Chrome("out.json".into())),
                ..RunArgs::default()
            })
        );
        assert!(parse(&["run", "--trace", "chrome:"]).unwrap_err().0.contains("file path"));
        assert!(parse(&["run", "--trace", "xml"]).unwrap_err().0.contains("text|chrome:PATH"));
        assert!(parse(&["run", "--trace"]).unwrap_err().0.contains("needs a value"));
    }

    #[test]
    fn run_data_plane_flags() {
        let c =
            parse(&["run", "--kernels", "scalar", "--schedule", "steal", "--copy-comm"]).unwrap();
        assert_eq!(
            c,
            Command::Run(RunArgs {
                kernels: KernelPath::Reference,
                schedule: ScheduleMode::Steal,
                copy_comm: true,
                ..RunArgs::default()
            })
        );
        let c = parse(&["run", "--kernels", "blocked"]).unwrap();
        assert_eq!(c, Command::Run(RunArgs { kernels: KernelPath::Blocked, ..RunArgs::default() }));
        assert!(parse(&["run", "--kernels", "mmx"])
            .unwrap_err()
            .0
            .contains("scalar|blocked|simd|auto"));
        assert!(parse(&["run", "--schedule", "gang"]).unwrap_err().0.contains("static|steal"));
        assert!(parse(&["run", "--schedule"]).unwrap_err().0.contains("needs a value"));
    }

    #[test]
    fn sim_flags() {
        let c = parse(&["sim", "--machine", "sp", "--nodes", "25", "--trace"]).unwrap();
        assert_eq!(
            c,
            Command::Sim(SimArgs {
                machine: "sp".into(),
                nodes: 25,
                trace: true,
                ..SimArgs::default()
            })
        );
    }

    #[test]
    fn tables_and_sweep() {
        assert_eq!(parse(&["tables"]).unwrap(), Command::Tables { out: None });
        assert_eq!(
            parse(&["tables", "--out", "results"]).unwrap(),
            Command::Tables { out: Some("results".into()) }
        );
        assert_eq!(parse(&["sweep", "--nodes", "50"]).unwrap(), Command::Sweep { nodes: 50 });
    }

    #[test]
    fn run_fault_flags() {
        let c = parse(&[
            "run",
            "--fault-plan",
            "transient:cpi_0.dat:1@2..4",
            "--fault-seed",
            "7",
            "--failure-policy",
            "skip:2:5:3",
            "--watchdog",
        ])
        .unwrap();
        let Command::Run(a) = c else { panic!("expected run") };
        let plan = a.fault_plan.expect("plan parsed");
        assert_eq!(plan.seed(), 7, "seed applies even when given after the plan");
        assert_eq!(plan.faults().len(), 1);
        assert_eq!(a.fault_seed, 7);
        assert!(a.watchdog);
        assert!(a.failure_policy.skips());
        assert_eq!(a.failure_policy.max_consecutive(), Some(3));
    }

    #[test]
    fn sim_fault_flags() {
        let c = parse(&["sim", "--fault-rate", "0.25", "--fault-seed", "11"]).unwrap();
        assert_eq!(
            c,
            Command::Sim(SimArgs { fault_rate: 0.25, fault_seed: 11, ..SimArgs::default() })
        );
    }

    #[test]
    fn fault_flag_errors_are_specific() {
        assert!(parse(&["run", "--fault-plan", "bogus:x"])
            .unwrap_err()
            .0
            .contains("unknown fault kind"));
        assert!(parse(&["run", "--failure-policy", "panic"])
            .unwrap_err()
            .0
            .contains("bad failure policy"));
        assert!(parse(&["run", "--fault-seed", "many"]).unwrap_err().0.contains("number"));
        assert!(parse(&["sim", "--fault-rate", "1.5"]).unwrap_err().0.contains("[0, 1]"));
        assert!(parse(&["sim", "--fault-rate", "often"]).unwrap_err().0.contains("probability"));
    }

    #[test]
    fn errors_are_specific() {
        assert!(parse(&["run", "--io", "sideways"]).unwrap_err().0.contains("embedded|separate"));
        assert!(parse(&["run", "--cpis"]).unwrap_err().0.contains("needs a value"));
        assert!(parse(&["run", "--cpis", "1"]).unwrap_err().0.contains("at least 2"));
        assert!(parse(&["sim", "--machine", "cray"]).unwrap_err().0.contains("paragon16"));
        assert!(parse(&["sim", "--nodes", "3"]).unwrap_err().0.contains("at least 7"));
        assert!(parse(&["launch"]).unwrap_err().0.contains("unknown command"));
        assert!(parse(&["run", "--frobnicate"]).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn plan_flags() {
        assert_eq!(parse(&["plan"]).unwrap(), Command::Plan(PlanArgs::default()));
        let c = parse(&[
            "plan",
            "--machine",
            "paragon",
            "--stripe-factor",
            "64",
            "--nodes",
            "100",
            "--json",
            "--no-des",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Plan(PlanArgs {
                machine: "paragon".into(),
                stripe_factor: Some(64),
                nodes: 100,
                json: true,
                no_des: true,
                ..PlanArgs::default()
            })
        );
    }

    #[test]
    fn plan_auto_stripe_and_sla_flags() {
        let c = parse(&["plan", "--stripe-factor", "auto", "--max-latency", "0.25"]).unwrap();
        assert_eq!(
            c,
            Command::Plan(PlanArgs {
                stripe_auto: true,
                max_latency: Some(0.25),
                ..PlanArgs::default()
            })
        );
        // A later numeric factor overrides auto (last flag wins).
        let c = parse(&["plan", "--stripe-factor", "auto", "--stripe-factor", "16"]).unwrap();
        assert_eq!(c, Command::Plan(PlanArgs { stripe_factor: Some(16), ..PlanArgs::default() }));
    }

    #[test]
    fn plan_reliability_flags() {
        let c = parse(&["plan", "--fault-rate", "0.0005", "--max-failure-prob", "0.1"]).unwrap();
        assert_eq!(
            c,
            Command::Plan(PlanArgs {
                fault_rate: Some(0.0005),
                max_failure_prob: Some(0.1),
                ..PlanArgs::default()
            })
        );
        // A failure-probability SLA without a fault model is meaningless.
        assert!(parse(&["plan", "--max-failure-prob", "0.1"])
            .unwrap_err()
            .0
            .contains("needs --fault-rate"));
        assert!(parse(&["plan", "--fault-rate", "0"]).unwrap_err().0.contains("(0, 1)"));
        assert!(parse(&["plan", "--fault-rate", "1.0"]).unwrap_err().0.contains("(0, 1)"));
        assert!(parse(&["plan", "--fault-rate", "often"]).unwrap_err().0.contains("rate"));
        assert!(parse(&["plan", "--fault-rate", "0.001", "--max-failure-prob", "1.5"])
            .unwrap_err()
            .0
            .contains("[0, 1]"));
    }

    #[test]
    fn serve_fault_plan_flag() {
        let c = parse(&["serve", "--script", "f.txt", "--fault-plan", "server-loss:3@5"]).unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeArgs {
                script: "f.txt".into(),
                fault: Some(FleetFault { server: 3, at_cpi: 5 }),
                ..ServeArgs::default()
            })
        );
        // The fleet fault applies to --sim capacity predictions too.
        let c = parse(&["serve", "--script", "f.txt", "--sim", "--fault-plan", "server-loss:0@1"])
            .unwrap();
        let Command::Serve(a) = c else { panic!("expected serve") };
        assert!(a.sim);
        assert_eq!(a.fault, Some(FleetFault { server: 0, at_cpi: 1 }));
        // Per-mission fault kinds are rejected with a pointer to `run`.
        assert!(parse(&["serve", "--script", "f.txt", "--fault-plan", "node:3@1..4"])
            .unwrap_err()
            .0
            .contains("server-loss"));
        assert!(parse(&["serve", "--script", "f.txt", "--fault-plan", "bogus:x"])
            .unwrap_err()
            .0
            .contains("unknown fault kind"));
    }

    #[test]
    fn plan_auto_and_hetero_machine_resolution() {
        let auto = PlanArgs { stripe_auto: true, ..PlanArgs::default() }.machines().unwrap();
        assert_eq!(auto.len(), 1);
        assert!(auto[0].stripe_options().len() > 1, "auto searches several factors");
        let het =
            PlanArgs { machine: "paragon-het".into(), ..PlanArgs::default() }.machines().unwrap();
        assert!(het[0].pool_size().is_some(), "hetero pool is bounded");
        assert!(het[0].stripe_options().len() > 1);
    }

    #[test]
    fn plan_machine_resolution() {
        let both = PlanArgs::default().machines().unwrap();
        assert_eq!(both.len(), 2, "bare paragon searches both stripe factors");
        let one = PlanArgs { stripe_factor: Some(16), ..PlanArgs::default() }.machines().unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].fs.stripe_factor, 16);
        let all = PlanArgs { machine: "all".into(), ..PlanArgs::default() }.machines().unwrap();
        assert_eq!(all.len(), 3);
        let sp = PlanArgs { machine: "sp".into(), ..PlanArgs::default() }.machines().unwrap();
        assert_eq!(sp[0].fs.stripe_factor, 80);
    }

    #[test]
    fn plan_errors_are_specific() {
        assert!(parse(&["plan", "--machine", "cray"]).unwrap_err().0.contains("paragon|"));
        assert!(parse(&["plan", "--stripe-factor", "32"]).unwrap_err().0.contains("16 or 64"));
        assert!(parse(&["plan", "--machine", "sp", "--stripe-factor", "64"])
            .unwrap_err()
            .0
            .contains("only applies"));
        assert!(parse(&["plan", "--nodes", "3"]).unwrap_err().0.contains("at least 7"));
        assert!(parse(&["plan", "--machine", "sp", "--stripe-factor", "auto"])
            .unwrap_err()
            .0
            .contains("auto only applies"));
        assert!(parse(&["plan", "--max-latency", "-1"]).unwrap_err().0.contains("positive"));
        assert!(parse(&["plan", "--max-latency", "soon"]).unwrap_err().0.contains("seconds"));
    }

    #[test]
    fn serve_flags() {
        let c = parse(&[
            "serve",
            "--script",
            "fleet.txt",
            "--workers",
            "3",
            "--pool-nodes",
            "200",
            "--queue-capacity",
            "4",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeArgs {
                script: "fleet.txt".into(),
                workers: 3,
                pool_nodes: 200,
                queue_capacity: 4,
                json: true,
                ..ServeArgs::default()
            })
        );
        let c = parse(&["serve", "--script", "f.txt", "--sim"]).unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeArgs { script: "f.txt".into(), sim: true, ..ServeArgs::default() })
        );
        let c = parse(&["serve", "--script", "f.txt", "--trace", "chrome:fleet.json"]).unwrap();
        let Command::Serve(a) = c else { panic!("expected serve") };
        assert_eq!(a.trace, Some("fleet.json".into()));
    }

    #[test]
    fn run_source_flag() {
        let c = parse(&["run", "--source", "stream:depth=8,policy=drop-oldest,rate=4"]).unwrap();
        assert_eq!(
            c,
            Command::Run(RunArgs {
                source: Some("stream:depth=8,policy=drop-oldest,rate=4".into()),
                ..RunArgs::default()
            })
        );
        assert!(parse(&["run", "--source", "tape"]).unwrap_err().0.contains("file|stream"));
        assert!(parse(&["run", "--source", "stream:depth=0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
    }

    #[test]
    fn serve_arrival_flags() {
        let c = parse(&[
            "serve",
            "--arrivals",
            "poisson:2",
            "--duration",
            "30",
            "--arrival-seed",
            "11",
            "--source",
            "stream",
            "--staging",
            "64",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Serve(ServeArgs {
                arrivals: Some(ArrivalSpec::Poisson { rate: 2.0 }),
                duration: 30.0,
                arrival_seed: 11,
                source: Some("stream".into()),
                staging: 64,
                ..ServeArgs::default()
            })
        );
        let c = parse(&["serve", "--arrivals", "bursty:0.5:4:5", "--sim"]).unwrap();
        let Command::Serve(a) = c else { panic!("expected serve") };
        assert!(a.sim);
        assert_eq!(a.arrivals, Some(ArrivalSpec::Bursty { lo: 0.5, hi: 4.0, dwell: 5.0 }));
    }

    #[test]
    fn serve_arrival_errors_are_specific() {
        assert!(parse(&["serve", "--arrivals", "weibull:2"])
            .unwrap_err()
            .0
            .contains("poisson:RATE"));
        assert!(parse(&["serve", "--arrivals", "poisson:2", "--duration", "0"])
            .unwrap_err()
            .0
            .contains("positive"));
        assert!(parse(&["serve", "--arrivals", "poisson:2", "--staging", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(&["serve", "--arrivals", "poisson:2", "--source", "tape"])
            .unwrap_err()
            .0
            .contains("file|stream"));
        assert!(parse(&["serve", "--script", "f.txt", "--arrivals", "poisson:2"])
            .unwrap_err()
            .0
            .contains("pick one"));
    }

    #[test]
    fn serve_errors_are_specific() {
        assert!(parse(&["serve"]).unwrap_err().0.contains("needs --script"));
        assert!(parse(&["serve", "--script", "f", "--workers", "0"])
            .unwrap_err()
            .0
            .contains("at least 1"));
        assert!(parse(&["serve", "--script", "f", "--pool-nodes", "3"])
            .unwrap_err()
            .0
            .contains("at least 7"));
        assert!(parse(&["serve", "--script", "f", "--trace", "text"])
            .unwrap_err()
            .0
            .contains("chrome:PATH"));
        assert!(parse(&["serve", "--script", "f", "--sim", "--trace", "chrome:t.json"])
            .unwrap_err()
            .0
            .contains("real execution"));
        assert!(parse(&["serve", "--script", "f", "--frob"]).unwrap_err().0.contains("serve"));
    }

    #[test]
    fn submit_builds_a_one_event_script() {
        let c = parse(&["submit", "name=recon", "nodes=25", "priority=2", "--json"]).unwrap();
        let Command::Submit(a) = c else { panic!("expected submit") };
        assert!(a.json);
        assert_eq!(a.script_text(), "at 0 submit name=recon nodes=25 priority=2\n");
        let parsed = stap_serve::WorkloadScript::parse(&a.script_text()).unwrap();
        assert_eq!(parsed.submissions(), 1);
    }

    #[test]
    fn submit_errors_surface_at_parse_time() {
        assert!(parse(&["submit", "nodes=25"]).unwrap_err().0.contains("needs name="));
        assert!(parse(&["submit", "name=a", "cpis=1"]).unwrap_err().0.contains("at least 2"));
        assert!(parse(&["submit", "name=a", "--verbose"]).unwrap_err().0.contains("key=value"));
        assert!(parse(&["submit", "name=a", "frob=1"]).unwrap_err().0.contains("unknown submit"));
    }

    #[test]
    fn verify_flags() {
        let c = parse(&["verify", "--scenario", "two-target"]).unwrap();
        assert_eq!(
            c,
            Command::Verify(VerifyArgs { scenario: "two-target".into(), ..VerifyArgs::default() })
        );
        let c = parse(&[
            "verify",
            "--scenario",
            "noise-only",
            "--sweep",
            "seed=1,2,3",
            "--source",
            "stream:depth=2",
            "--json",
        ])
        .unwrap();
        assert_eq!(
            c,
            Command::Verify(VerifyArgs {
                scenario: "noise-only".into(),
                sweep: Some("seed=1,2,3".into()),
                source: Some("stream:depth=2".into()),
                json: true,
                ..VerifyArgs::default()
            })
        );
        let c = parse(&["verify", "--list"]).unwrap();
        assert_eq!(c, Command::Verify(VerifyArgs { list: true, ..VerifyArgs::default() }));
        let c = parse(&["verify", "--scenario", "benchmark", "--requirements", "req.txt"]).unwrap();
        let Command::Verify(a) = c else { panic!("expected verify") };
        assert_eq!(a.requirements, Some("req.txt".into()));
    }

    #[test]
    fn verify_errors_are_specific() {
        assert!(parse(&["verify"]).unwrap_err().0.contains("--scenario NAME or --list"));
        let e = parse(&["verify", "--scenario", "area51"]).unwrap_err().0;
        assert!(e.contains("unknown scenario"), "{e}");
        assert!(e.contains("two-target"), "the error lists the catalog: {e}");
        assert!(parse(&["verify", "--scenario", "two-target", "--sweep", "prf=1"])
            .unwrap_err()
            .0
            .contains("unknown sweep axis"));
        assert!(parse(&["verify", "--scenario", "two-target", "--source", "tape"])
            .unwrap_err()
            .0
            .contains("file|stream"));
        assert!(parse(&["verify", "--list", "--sweep", "snr=1"])
            .unwrap_err()
            .0
            .contains("only lists"));
        assert!(parse(&["verify", "--frob"]).unwrap_err().0.contains("unknown flag"));
    }

    #[test]
    fn machine_keys_resolve() {
        assert!(machine_for("paragon16").is_ok());
        assert!(machine_for("paragon64").is_ok());
        assert!(machine_for("sp").is_ok());
        assert!(machine_for("enigma").is_err());
    }
}
