//! `ppstap` — the command-line driver.
//!
//! See `ppstap help` (or [`ppstap::cli::HELP`]) for usage.

use ppstap::cli::{
    machine_for, parse, Command, PlanArgs, RunArgs, ServeArgs, SimArgs, SubmitArgs, TraceMode,
    VerifyArgs, HELP,
};
use ppstap::core::config::StapConfig;
use ppstap::core::desmodel::{render_gantt, DesExperiment};
use ppstap::core::experiments::ablation::sweep_stripe_factor;
use ppstap::core::StapSystem;
use ppstap::pfs::FsConfig;
use ppstap::pipeline::timing::Phase;
use ppstap::pipeline::topology::StageId;
use ppstap::pipeline::ClockSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    match parse(&arg_refs) {
        Ok(Command::Help) => print!("{HELP}"),
        Ok(Command::Run(a)) => run(a),
        Ok(Command::Sim(a)) => sim(a),
        Ok(Command::Tables { out }) => tables(out),
        Ok(Command::Sweep { nodes }) => sweep(nodes),
        Ok(Command::Plan(a)) => plan_cmd(a),
        Ok(Command::Serve(a)) => serve_cmd(a),
        Ok(Command::Submit(a)) => submit_cmd(a),
        Ok(Command::Verify(a)) => verify_cmd(a),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{HELP}");
            std::process::exit(2);
        }
    }
}

fn fs_for(key: &str) -> FsConfig {
    match key {
        "pfs16" => FsConfig::paragon_pfs(16),
        "pfs64" => FsConfig::paragon_pfs(64),
        "piofs" => FsConfig::piofs(),
        _ => unreachable!("validated by the parser"),
    }
}

fn run(a: RunArgs) {
    let source = a
        .source
        .as_deref()
        .map(|s| ppstap::core::SourceSpec::parse(s).expect("validated by the parser"))
        .unwrap_or_default();
    let config = StapConfig {
        io: a.io,
        access: a.access,
        tail: a.tail,
        cpis: a.cpis,
        warmup: (a.cpis / 3).max(1),
        fs: fs_for(&a.fs),
        record_reports: a.record_reports,
        fault_plan: a.fault_plan.clone(),
        failure_policy: a.failure_policy,
        watchdog: a.watchdog.then(ppstap::core::WatchdogPolicy::default),
        source,
        kernel_path: a.kernels,
        schedule: a.schedule,
        copy_comm: a.copy_comm,
        ..StapConfig::default()
    };
    println!("structure : {} / {}", config.io.label(), config.tail.label());
    if config.io.uses_store_tier() || config.access != ppstap::store::CubeAccess::Resident {
        println!("store tier: io={} access={}", config.io.describe(), config.access.label());
    }
    println!(
        "data plane: kernels={} schedule={} comm={}",
        config.kernel_path,
        config.schedule.label(),
        if config.copy_comm { "copy" } else { "zero-copy" }
    );
    println!(
        "files     : {} x {} KiB on {}",
        config.fanout,
        config.dims.bytes() / 1024,
        config.fs.name
    );
    let system = match StapSystem::prepare(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let clocks = if a.virtual_clock { ClockSpec::virtual_default() } else { ClockSpec::Wall };
    let out = match system.run_with_clock(clocks) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "\n{:<16}{:>7}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "task",
        "nodes",
        "read",
        "recv",
        "wwait",
        "compute",
        "send",
        "backoff",
        "ingest",
        "failover",
        "steal",
        "cachehit",
        "total"
    );
    for (i, stage) in system.topology().stages().iter().enumerate() {
        let id = StageId(i);
        print!("{:<16}{:>7}", stage.name, stage.nodes);
        for phase in Phase::ALL {
            print!("{:>10.4}", out.timing.phase_time(id, phase));
        }
        println!("{:>10.4}", out.timing.task_time(id));
    }
    if let Some(ing) = &out.ingest {
        println!(
            "\ningest ({})  : {} accepted, {} delivered, {} dropped, {} rejected, peak depth {}",
            ing.policy.label(),
            ing.ring.accepted,
            ing.ring.delivered,
            ing.ring.dropped,
            ing.ring.rejected,
            ing.ring.peak_depth
        );
    }
    if let Some(st) = &out.store {
        println!(
            "\ncache hit-rate : {:>8.0}%  ({} hits, {} misses, {} readaheads, {} evictions)",
            st.hit_rate * 100.0,
            st.hits,
            st.misses,
            st.readaheads,
            st.evictions
        );
        if let Some((peak, bound)) = st.footprint {
            println!("ooc footprint  : peak {peak} B within the {bound} B bound");
        }
    }
    println!("\nthroughput     : {:>9.2} CPIs/s", out.throughput());
    println!("latency (mean) : {:>9.4} s", out.latency());
    println!(
        "latency (p95)  : {:>9.4} s",
        out.timing.latency_percentile(out.source, out.sink, 95.0)
    );
    if a.fault_plan.is_some() || !out.dropped.is_empty() || out.retries > 0 {
        println!("delivered      : {:>9.2} CPIs/s", out.delivered_throughput());
        println!("read retries   : {:>9}", out.retries);
        for g in &out.dropped {
            println!("dropped CPI {} at {}: {}", g.cpi, g.origin, g.reason);
        }
    }
    for r in &out.reports {
        println!("CPI {}: {} detections", r.cpi, r.cluster(4).len());
    }
    if a.record_reports {
        println!("\nreports written to report_<cpi>.dat on the parallel file system");
    }
    match &a.trace {
        Some(TraceMode::Text) => {
            println!("\nphase statistics (all nodes, all CPIs):");
            print!("{}", out.timing.phase_table_text());
        }
        Some(TraceMode::Chrome(path)) => {
            if let Err(e) = std::fs::write(path, out.timing.chrome_trace()) {
                eprintln!("error: writing trace to {path}: {e}");
                std::process::exit(1);
            }
            println!("\nChrome trace written to {path} (load in chrome://tracing or Perfetto)");
        }
        None => {}
    }
}

fn sim(a: SimArgs) {
    let machine = machine_for(&a.machine).expect("validated by the parser");
    let mut exp = DesExperiment::new(machine, a.io, a.tail, a.nodes);
    if a.fault_rate > 0.0 {
        exp.faults = Some(ppstap::core::DesFaultModel::transient(
            ppstap::core::FaultSource::Random { rate: a.fault_rate, seed: a.fault_seed },
            u32::MAX,
            0.002,
            2,
            0.002,
        ));
    }
    if a.trace {
        exp.cpis = 24;
        let (result, trace) = exp.run_traced();
        print_result(&result);
        let horizon = trace
            .iter()
            .map(|e| e.end)
            .fold(0.0, f64::max)
            .min(3.0 * result.latency + 1.0 / result.throughput * 10.0);
        println!("\n{}", render_gantt(&result, &trace, horizon));
    } else {
        print_result(&exp.run());
    }
}

fn print_result(r: &ppstap::core::DesResult) {
    println!("{} — {} total nodes", r.machine, r.total_nodes);
    println!("{:<16}{:>7}{:>12}", "task", "nodes", "T_i (s)");
    for t in &r.tasks {
        println!("{:<16}{:>7}{:>12.4}", t.label, t.nodes, t.time);
    }
    println!(
        "\nthroughput       : {:>8.3} CPIs/s  (analytic {:>8.3})",
        r.throughput,
        r.analytic_throughput()
    );
    println!(
        "latency          : {:>8.4} s       (analytic {:>8.4})",
        r.latency,
        r.analytic_latency()
    );
    println!("I/O utilization  : {:>8.2}", r.io_utilization);
    if !r.dropped.is_empty() || r.retries > 0 {
        println!("delivered        : {:>8.3} CPIs/s", r.delivered_throughput);
        println!("read retries     : {:>8}", r.retries);
        let cpis: Vec<String> = r.dropped.iter().map(u64::to_string).collect();
        println!("dropped CPIs     : [{}]", cpis.join(", "));
    }
}

fn tables(out: Option<String>) {
    if let Some(dir) = &out {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    for artifact in stap_bench_shim::regenerate_all() {
        println!("{}", "=".repeat(100));
        println!("{}", artifact.1);
        if let Some(dir) = &out {
            let path = format!("{dir}/{}.txt", artifact.0);
            std::fs::write(&path, &artifact.1).expect("write artifact");
            eprintln!("wrote {path}");
        }
    }
}

/// Local re-implementation of the bench crate's artifact list (the umbrella
/// crate does not depend on `stap-bench`, which is a leaf).
mod stap_bench_shim {
    use ppstap::core::experiments::degradation::{
        fault_degradation, recoverable_degradation, render_degradation,
    };
    use ppstap::core::experiments::phases::phase_breakdown_report;
    use ppstap::core::experiments::render::{
        render_fig8, render_figure, render_table, render_table4,
    };
    use ppstap::core::experiments::validation::{render_validation, validate_embedded_grid};
    use ppstap::core::experiments::{fig8_from, table1, table2, table3, table4_from};

    pub fn regenerate_all() -> Vec<(&'static str, String)> {
        let t1 = table1();
        let t2 = table2();
        let t3 = table3();
        let t4 = table4_from(&t1, &t3);
        let mut out = vec![
            ("table1", render_table(&t1)),
            ("fig5", render_figure("Figure 5. Results corresponding to Table 1.", &t1)),
            ("table2", render_table(&t2)),
            ("fig6", render_figure("Figure 6. Results corresponding to Table 2.", &t2)),
            ("table3", render_table(&t3)),
            ("fig7", render_figure("Figure 7. Results corresponding to Table 3.", &t3)),
            ("table4", render_table4(&t4)),
        ];
        let f8 = fig8_from(t1, t3);
        out.push(("fig8", render_fig8(&f8)));
        out.push(("validation", render_validation(&validate_embedded_grid())));
        let rates = [0.0, 0.05, 0.1, 0.2, 0.3];
        out.push((
            "fault_degradation",
            render_degradation(&fault_degradation(&rates), &recoverable_degradation(&rates)),
        ));
        out.push(("phase_breakdown", phase_breakdown_report()));
        out.push(("serve_contention", ppstap::serve::experiments::contention_report()));
        out.push(("ingest_backpressure", ppstap::core::experiments::ingest::backpressure_report()));
        out.push(("detection_quality", ppstap::scenario::experiments::detection_quality()));
        out.push(("store_cache", ppstap::core::experiments::store::store_cache_report()));
        // Same rates as stap-bench's RELIABILITY_RATES (the umbrella crate
        // cannot depend on the leaf bench crate).
        out.push((
            "reliability_tradeoff",
            ppstap::planner::reliability::tradeoff_report(&[1e-5, 1e-4, 5e-4, 1e-3, 5e-3]),
        ));
        out
    }
}

fn plan_cmd(a: PlanArgs) {
    let machines = a.machines().expect("validated by the parser");
    let mut cfg = ppstap::planner::PlannerConfig::new(machines, a.nodes);
    if let Some(ios) = a.ios.clone() {
        cfg.ios = ios;
    }
    if a.no_des {
        cfg.validate_des = false;
    }
    cfg.max_latency = a.max_latency;
    if let Some(rate) = a.fault_rate {
        cfg = cfg.with_fault_rate(rate);
    }
    if let Some(bound) = a.max_failure_prob {
        cfg = cfg.with_max_failure_prob(bound);
    }
    let report = ppstap::planner::plan(&cfg);
    if a.json {
        println!("{}", ppstap::planner::to_json(&report));
    } else {
        print!("{}", ppstap::planner::render_text(&report));
    }
}

fn serve_config_from(a: &ServeArgs) -> ppstap::serve::ServeConfig {
    ppstap::serve::ServeConfig {
        pool_nodes: a.pool_nodes,
        workers: a.workers,
        queue_capacity: a.queue_capacity,
        staging_capacity: a.staging,
        fault: a.fault,
        ..ppstap::serve::ServeConfig::default()
    }
}

/// Maps a validated `--source` spec to the mission-script source.
fn mission_source_from(spec: &str) -> ppstap::serve::MissionSource {
    match ppstap::core::SourceSpec::parse(spec).expect("validated by the parser") {
        ppstap::core::SourceSpec::File => ppstap::serve::MissionSource::File,
        ppstap::core::SourceSpec::Stream(s) => {
            ppstap::serve::MissionSource::Stream { depth: s.depth, policy: s.policy, rate: s.rate }
        }
    }
}

fn serve_cmd(a: ServeArgs) {
    let script = if let Some(spec) = &a.arrivals {
        let mut template = ppstap::serve::MissionSpec::new("template");
        if let Some(src) = &a.source {
            template.source = mission_source_from(src);
        }
        let script = ppstap::serve::generate_script(spec, a.duration, a.arrival_seed, &template);
        eprintln!(
            "arrivals {}: {} missions over {} s (seed {})",
            spec.label(),
            script.submissions(),
            a.duration,
            a.arrival_seed
        );
        script
    } else {
        let text = match std::fs::read_to_string(&a.script) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {}: {e}", a.script);
                std::process::exit(1);
            }
        };
        match ppstap::serve::WorkloadScript::parse(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {}: {e}", a.script);
                std::process::exit(1);
            }
        }
    };
    let cfg = serve_config_from(&a);
    if a.sim {
        let sim = ppstap::serve::sim::SimConfig {
            serve: cfg,
            read_model: ppstap::serve::sim::ReadModel::Planned,
        };
        let report = ppstap::serve::simulate_fleet(&script, &sim);
        if a.json {
            println!("{}", report.to_json());
        } else {
            print!("{}", report.render_text());
        }
        return;
    }
    let out = ppstap::serve::run_fleet(&script, &cfg);
    if a.json {
        println!("{}", out.fleet_json());
    } else {
        print!("{}", out.fleet_table());
        for (name, why) in &out.rejected {
            println!("rejected {name}: {why}");
        }
        for name in &out.cancelled {
            println!("cancelled {name} while queued");
        }
        for m in &out.missions {
            if let Some(note) = &m.failover {
                println!("failover {}: {note}", m.name);
            }
        }
        println!("makespan       : {:>9.3} s", out.makespan);
        match out.sla_hit_rate() {
            Some(rate) => println!("SLA hit-rate   : {:>8.0}%", rate * 100.0),
            None => println!("SLA hit-rate   : n/a (no bounded missions)"),
        }
        if out.failovers() > 0 {
            if let Some(rate) = out.sla_hit_rate_no_failover() {
                println!("SLA hit-rate (no failover) : {:>8.0}% counterfactual", rate * 100.0);
            }
        }
    }
    if let Some(path) = &a.trace {
        if let Err(e) = std::fs::write(path, out.chrome_trace()) {
            eprintln!("error: writing trace to {path}: {e}");
            std::process::exit(1);
        }
        println!("fleet trace written to {path} (one mission-tagged track per mission)");
    }
    if out.missions.iter().any(|m| matches!(m.outcome, ppstap::serve::MissionOutcome::Failed(_))) {
        std::process::exit(1);
    }
}

fn submit_cmd(a: SubmitArgs) {
    let script = match ppstap::serve::WorkloadScript::parse(&a.script_text()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let out = ppstap::serve::run_fleet(&script, &ppstap::serve::ServeConfig::default());
    if let Some((name, why)) = out.rejected.first() {
        eprintln!("rejected {name}: {why}");
        std::process::exit(1);
    }
    if a.json {
        match out.missions.first() {
            Some(m) => println!("{}", m.to_json()),
            None => println!("{}", out.fleet_json()),
        }
    } else {
        print!("{}", out.fleet_table());
    }
    if out.missions.iter().any(|m| matches!(m.outcome, ppstap::serve::MissionOutcome::Failed(_))) {
        std::process::exit(1);
    }
}

fn verify_cmd(a: VerifyArgs) {
    use ppstap::scenario as sc;
    if a.list {
        println!("{:<14} {:<8} summary", "scenario", "targets");
        for s in sc::catalog() {
            println!("{:<14} {:<8} {}", s.name, s.scene.targets.len(), s.summary);
        }
        return;
    }
    let mut scenario = sc::find(&a.scenario).expect("validated by the parser");
    if let Some(path) = &a.requirements {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(1);
            }
        };
        match sc::Requirement::parse(&text) {
            Ok(req) => scenario.requirement = req,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let source = a
        .source
        .as_deref()
        .map(|s| ppstap::core::SourceSpec::parse(s).expect("validated by the parser"))
        .unwrap_or_default();
    if let Some(spec) = &a.sweep {
        let sweep = sc::Sweep::parse(spec).expect("validated by the parser");
        let points = match sc::sweep::run(&scenario, &sweep, &source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let passed = points.iter().all(|p| p.report.passed());
        if a.json {
            let body: Vec<String> = points
                .iter()
                .map(|p| format!("{{\"value\": {}, \"report\": {}}}", p.value, p.report.to_json()))
                .collect();
            println!(
                "{{\"scenario\": \"{}\", \"axis\": \"{}\", \"passed\": {passed}, \
                 \"points\": [{}]}}",
                scenario.name,
                sweep.axis.name(),
                body.join(", ")
            );
        } else {
            print!("{}", sc::sweep::table(&scenario.name, &sweep, &points));
        }
        if !passed {
            std::process::exit(1);
        }
        return;
    }
    let evaluation = match sc::evaluate_with_source(&scenario, source) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let report = sc::check(&scenario.name, &scenario.requirement, &evaluation);
    if a.json {
        println!("{}", report.to_json());
    } else {
        println!("{}", evaluation.summary());
        print!("{}", report.table());
    }
    if !report.passed() {
        std::process::exit(1);
    }
}

fn sweep(nodes: usize) {
    println!("Paragon PFS stripe-factor sweep, {nodes} compute nodes, embedded I/O:\n");
    println!("{:<6}{:>12}{:>12}{:>10}", "sf", "CPI/s", "latency", "io util");
    for (sf, r) in sweep_stripe_factor(&[2, 4, 8, 16, 32, 64, 128], nodes) {
        println!("{:<6}{:>12.3}{:>12.4}{:>10.2}", sf, r.throughput, r.latency, r.io_utilization);
    }
}
