//! Quickstart: build, run, and inspect a small parallel pipelined STAP
//! system in under a minute.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This stages synthetic radar CPI files on a striped parallel file system,
//! runs the real seven-task pipeline on threads (I/O embedded in the
//! Doppler task, the paper's first design), and prints per-task phase
//! timings plus the detection reports.

use ppstap::core::config::StapConfig;
use ppstap::core::StapSystem;
use ppstap::pipeline::timing::Phase;
use ppstap::pipeline::topology::StageId;

fn main() {
    // The default configuration: a 32×8×128 CPI cube, benchmark scene
    // (two targets + jammer + clutter), Paragon-style PFS with 16 stripe
    // directories, embedded I/O, split tail.
    let config = StapConfig::default();
    println!("pipeline structure : {}", config.io.label());
    println!("tail structure     : {}", config.tail.label());
    println!(
        "CPI cube           : {} pulses x {} channels x {} ranges ({} KiB)",
        config.dims.pulses,
        config.dims.channels,
        config.dims.ranges,
        config.dims.bytes() / 1024
    );

    let system = StapSystem::prepare(config).expect("prepare system");
    println!(
        "file system        : {} ({} files staged)",
        system.fs().config().name,
        system.plan().files.len()
    );
    println!("total nodes        : {}\n", system.topology().total_nodes());

    let out = system.run().expect("pipeline run");

    // Per-task timing table from real measurements.
    println!(
        "{:<16}{:>8}{:>10}{:>10}{:>10}{:>10}{:>10}",
        "task", "nodes", "read", "recv", "compute", "send", "total"
    );
    for (i, stage) in system.topology().stages().iter().enumerate() {
        let id = StageId(i);
        print!("{:<16}{:>8}", stage.name, stage.nodes);
        for phase in Phase::ALL {
            print!("{:>10.4}", out.timing.phase_time(id, phase));
        }
        println!("{:>10.4}", out.timing.task_time(id));
    }
    println!("\nthroughput : {:.2} CPIs/s (measured at the sink)", out.throughput());
    println!("latency    : {:.4} s (source start -> sink finish)", out.latency());

    // Detection reports.
    for report in &out.reports {
        let clustered = report.cluster(4);
        println!(
            "\nCPI {}: {} detections ({} clustered)",
            report.cpi,
            report.len(),
            clustered.len()
        );
        for d in clustered.detections.iter().take(8) {
            println!(
                "  beam {} bin {:>3} range {:>4}  snr {:>5.1} dB",
                d.beam, d.bin, d.range, d.snr_db
            );
        }
    }
}
