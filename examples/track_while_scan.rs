//! Track-while-scan: the full downstream story — a moving target crosses
//! the range window while the real pipeline runs CPI after CPI, and an
//! alpha-beta tracker forms a confirmed track from the detection reports.
//!
//! ```text
//! cargo run --example track_while_scan --release
//! ```

use ppstap::core::config::StapConfig;
use ppstap::core::StapSystem;
use ppstap::kernels::report::DetectionReport;
use ppstap::kernels::tracking::{TrackState, Tracker, TrackerConfig};
use ppstap::pfs::OpenMode;
use ppstap::radar::{CubeGenerator, Scene, Target, TargetDrift};
use stap_kernels::cube::DataCube;

/// Collapses a report to one detection per physical object: greedily keeps
/// the strongest detections that are at least `sep` gates apart (the same
/// target lights up several Doppler bins and both beams).
fn collapse(report: &DetectionReport, sep: usize) -> DetectionReport {
    let mut dets = report.detections.clone();
    dets.sort_by(|a, b| b.snr_db.partial_cmp(&a.snr_db).expect("finite"));
    let mut kept: Vec<ppstap::kernels::cfar::Detection> = Vec::new();
    for mut d in dets {
        if kept.iter().all(|k| k.range.abs_diff(d.range) >= sep) {
            d.beam = 0; // unify beams for association
            kept.push(d);
        }
    }
    DetectionReport { cpi: report.cpi, detections: kept }
}

fn main() {
    // A 25 dB target launching at gate 20, closing at 6 gates per CPI.
    let scene = Scene {
        targets: vec![Target { range_gate: 20, doppler: 0.25, spatial_freq: 0.15, snr_db: 25.0 }],
        jammers: vec![],
        clutter: None,
        noise_power: 1.0,
    };
    let cfg = StapConfig { scene: scene.clone(), cpis: 8, warmup: 1, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg.clone()).expect("prepare");

    // Stage drifting cubes: slot k holds CPI k's world state. With 4 slots
    // and 8 CPIs the radar would rewrite the files mid-run; for this demo
    // we use 8 slots so every CPI sees its own instant.
    let mut gen = CubeGenerator::new(cfg.dims, scene, cfg.waveform_len, cfg.seed)
        .with_drift(vec![TargetDrift { gates_per_cpi: 6.0, doppler_per_cpi: 0.0 }]);
    for slot in 0..cfg.fanout {
        let f = sys.fs().open(&StapConfig::file_name(slot), OpenMode::Async).expect("staged");
        let cube: DataCube = gen.next_cube();
        f.write_at(0, &cube.to_range_major_bytes()).expect("staging write");
    }

    let out = sys.run().expect("run");

    let mut tracker = Tracker::new(TrackerConfig { gate: 8.0, ..Default::default() });
    println!("{:<6}{:>12}{:>14}{:>12}{:>12}", "CPI", "detections", "track state", "range", "rate");
    for report in &out.reports {
        let clustered = collapse(&report.cluster(4), 6);
        tracker.update(&clustered);
        let best = tracker.tracks().iter().max_by_key(|t| t.hits);
        match best {
            Some(t) => println!(
                "{:<6}{:>12}{:>14}{:>12.1}{:>12.2}",
                report.cpi,
                clustered.len(),
                match t.state {
                    TrackState::Confirmed => "confirmed",
                    TrackState::Tentative => "tentative",
                },
                t.range,
                t.rate
            ),
            None => println!("{:<6}{:>12}{:>14}", report.cpi, clustered.len(), "-"),
        }
    }
    let confirmed: Vec<_> = tracker.confirmed().collect();
    println!(
        "\n{} confirmed track(s); strongest: range {:.1} gates, rate {:.2} gates/CPI (truth: 6.0 within a 4-slot window)",
        confirmed.len(),
        confirmed.first().map(|t| t.range).unwrap_or(0.0),
        confirmed.first().map(|t| t.rate).unwrap_or(0.0),
    );
}
