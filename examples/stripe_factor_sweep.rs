//! Where exactly does the I/O bottleneck release? A full stripe-factor
//! sweep generalizing the paper's two-point (16 vs 64) comparison.
//!
//! ```text
//! cargo run --example stripe_factor_sweep --release
//! ```

use ppstap::core::experiments::ablation::{async_toggle, sweep_cube_size, sweep_stripe_factor};

fn bar(v: f64, max: f64) -> String {
    "#".repeat(((v / max) * 40.0).round() as usize)
}

fn main() {
    println!("Paragon PFS stripe-factor sweep, 100 compute nodes, embedded I/O:\n");
    let sweep = sweep_stripe_factor(&[2, 4, 8, 16, 32, 64, 128], 100);
    let max = sweep.iter().map(|(_, r)| r.throughput).fold(0.0, f64::max);
    println!("{:<6}{:>12}{:>12}{:>10}", "sf", "CPI/s", "latency", "io util");
    for (sf, r) in &sweep {
        println!(
            "{:<6}{:>12.3}{:>12.4}{:>10.2}  |{}",
            sf,
            r.throughput,
            r.latency,
            r.io_utilization,
            bar(r.throughput, max)
        );
    }
    println!(
        "\nThe throughput curve saturates once the aggregate stripe bandwidth\n\
         exceeds one CPI per pipeline period — the bottleneck the paper found at\n\
         stripe factor 16 with 100 nodes releases by stripe factor ~32.\n"
    );

    println!("CPI cube-size sweep at stripe factor 16 (range gates per cube):\n");
    for (rg, r) in sweep_cube_size(&[128, 256, 512, 1024], 100) {
        println!(
            "  {:>5} gates ({:>3} MiB): {:>7.3} CPI/s, io util {:.2}",
            rg,
            rg * 128 * 32 * 8 / (1024 * 1024),
            r.throughput,
            r.io_utilization
        );
    }

    println!("\nAsync (iread) vs sync reads, Paragon sf=64, 100 nodes:");
    let (a, s) = async_toggle(100);
    println!("  async: {:>7.3} CPI/s, latency {:.4} s", a.throughput, a.latency);
    println!("  sync : {:>7.3} CPI/s, latency {:.4} s", s.throughput, s.latency);
    println!(
        "\n(The sync penalty is the SP's story: PIOFS has no asynchronous reads, so\n\
         the Doppler task pays the full read on its critical path every CPI.)"
    );
}
