//! Task combination (paper §6): merging pulse compression and CFAR into a
//! single task improves latency without adding nodes or hurting throughput.
//!
//! ```text
//! cargo run --example task_combining --release
//! ```

use ppstap::core::config::StapConfig;
use ppstap::core::desmodel::DesExperiment;
use ppstap::core::{IoStrategy, StapSystem, TailStructure};
use ppstap::model::machines::MachineModel;
use ppstap::model::tasktime::{combined_task_time, task_time};
use ppstap::model::workload::{ShapeParams, StapWorkload, TaskId};

fn main() {
    // The algebra first (Eqs. 6-11): T_{5+6} < T_5 + T_6.
    let machine = MachineModel::paragon(64);
    let w = StapWorkload::derive(ShapeParams::paper_default());
    let (p5, p6, pred) = (3usize, 2usize, 5usize);
    let t5 = task_time(&machine, &w, TaskId::PulseCompression, p5, pred, p6);
    let t6 = task_time(&machine, &w, TaskId::Cfar, p6, p5, 1);
    let t56 =
        combined_task_time(&machine, &w, TaskId::PulseCompression, TaskId::Cfar, p5, p6, pred, 1);
    println!("Eq. 11 check (P5={p5}, P6={p6}):");
    println!(
        "  T5          = {:.4} s  (compute {:.4} + comm {:.4} + overhead {:.4})",
        t5.total(),
        t5.compute,
        t5.comm(),
        t5.overhead
    );
    println!(
        "  T6          = {:.4} s  (compute {:.4} + comm {:.4} + overhead {:.4})",
        t6.total(),
        t6.compute,
        t6.comm(),
        t6.overhead
    );
    println!("  T5 + T6     = {:.4} s", t5.total() + t6.total());
    println!(
        "  T(5+6)      = {:.4} s  -> combined is {:.1}% cheaper\n",
        t56.total(),
        (1.0 - t56.total() / (t5.total() + t6.total())) * 100.0
    );

    // Paper-scale effect on the whole pipeline (Table 4).
    println!("Virtual-time pipeline (Paragon PFS sf=64, embedded I/O):");
    println!(
        "{:<12}{:>14}{:>14}{:>14}{:>14}{:>12}",
        "nodes", "lat 7-task", "lat 6-task", "tput 7-task", "tput 6-task", "improve"
    );
    for nodes in [25usize, 50, 100] {
        let split =
            DesExperiment::new(machine.clone(), IoStrategy::Embedded, TailStructure::Split, nodes)
                .run();
        let comb = DesExperiment::new(
            machine.clone(),
            IoStrategy::Embedded,
            TailStructure::Combined,
            nodes,
        )
        .run();
        println!(
            "{:<12}{:>14.4}{:>14.4}{:>14.2}{:>14.2}{:>11.1}%",
            nodes,
            split.latency,
            comb.latency,
            split.throughput,
            comb.throughput,
            (split.latency - comb.latency) / split.latency * 100.0
        );
    }

    // And on the real threaded pipeline.
    println!("\nReal execution (threads, small cube):");
    for tail in [TailStructure::Split, TailStructure::Combined] {
        let cfg = StapConfig { tail, cpis: 8, warmup: 2, ..StapConfig::default() };
        let sys = StapSystem::prepare(cfg).expect("prepare");
        let out = sys.run().expect("run");
        println!(
            "  {:<22} throughput {:>6.2} CPIs/s   latency {:>8.4} s   ({} stages)",
            tail.label(),
            out.throughput(),
            out.latency(),
            sys.topology().stage_count()
        );
    }
}
