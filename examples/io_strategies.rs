//! The paper's core experiment, in miniature and for real: compare the two
//! I/O designs — embedded vs separate task — on the real threaded pipeline
//! AND on the virtual-time machine models.
//!
//! ```text
//! cargo run --example io_strategies --release
//! ```

use ppstap::core::config::StapConfig;
use ppstap::core::desmodel::DesExperiment;
use ppstap::core::{IoStrategy, StapSystem, TailStructure};
use ppstap::model::machines::MachineModel;

fn real_run(io: IoStrategy) -> (f64, f64) {
    let cfg = StapConfig { io, cpis: 8, warmup: 2, ..StapConfig::default() };
    let sys = StapSystem::prepare(cfg).expect("prepare");
    let out = sys.run().expect("run");
    (out.throughput(), out.latency())
}

fn main() {
    println!("== Real execution (threads, small cube, measured wall-clock) ==\n");
    for io in [IoStrategy::Embedded, IoStrategy::SeparateTask] {
        let (tput, lat) = real_run(io);
        println!("{:<40} throughput {:>7.2} CPIs/s   latency {:>8.4} s", io.label(), tput, lat);
    }

    println!("\n== Virtual time (paper-scale: 16 MiB CPIs, 25/50/100 nodes) ==\n");
    for machine in MachineModel::paper_machines() {
        println!("{}", machine.name);
        for nodes in [25usize, 50, 100] {
            let emb = DesExperiment::new(
                machine.clone(),
                IoStrategy::Embedded,
                TailStructure::Split,
                nodes,
            )
            .run();
            let sep = DesExperiment::new(
                machine.clone(),
                IoStrategy::SeparateTask,
                TailStructure::Split,
                nodes,
            )
            .run();
            println!(
                "  {nodes:>3} nodes: embedded {:>6.2} CPI/s, {:>7.4} s   |   separate {:>6.2} CPI/s, {:>7.4} s   (latency {:+.1}%)",
                emb.throughput,
                emb.latency,
                sep.throughput,
                sep.latency,
                (sep.latency - emb.latency) / emb.latency * 100.0
            );
        }
    }
    println!(
        "\nThe paper's finding holds: the separate I/O task leaves throughput nearly\n\
         unchanged but always worsens latency — Eq. 4 has one more term than Eq. 2."
    );
}
