//! Visualize the pipeline's virtual-time execution as a Gantt chart —
//! watch the I/O bottleneck appear when the stripe factor shrinks.
//!
//! ```text
//! cargo run --example pipeline_trace --release
//! ```

use ppstap::core::desmodel::{render_gantt, DesExperiment};
use ppstap::core::{IoStrategy, TailStructure};
use ppstap::model::machines::MachineModel;

fn main() {
    for sf in [64usize, 16] {
        let mut exp = DesExperiment::new(
            MachineModel::paragon(sf),
            IoStrategy::Embedded,
            TailStructure::Split,
            100,
        );
        exp.cpis = 24;
        let (result, trace) = exp.run_traced();
        println!(
            "{}\n  throughput {:.2} CPIs/s | latency {:.4} s | I/O server utilization {:.2}\n",
            result.machine, result.throughput, result.latency, result.io_utilization
        );
        println!("{}", render_gantt(&result, &trace, 2.2));
        if sf == 64 {
            println!("(Tight stairs: every task busy back-to-back — compute-bound.)\n");
        } else {
            println!(
                "(Stretched stairs: the Doppler lane's iterations lengthen — every CPI now\n\
                 waits on the 16 stripe servers; the paper's Table 1 case-3 bottleneck.)\n"
            );
        }
    }
}
