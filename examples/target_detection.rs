//! Target detection under jamming and clutter — the workload the paper's
//! introduction motivates.
//!
//! ```text
//! cargo run --example target_detection --release
//! ```
//!
//! Builds a hostile scene (barrage jammer, clutter ridge, two targets — one
//! in the clutter notch where the *hard* PRI-staggered processing is
//! required), runs the full pipeline, and scores the detections against
//! ground truth per CPI, showing the adaptive weights converging after the
//! first CPI (whose weights are the non-adaptive cold start).

use ppstap::core::config::StapConfig;
use ppstap::core::StapSystem;
use ppstap::kernels::report::DetectionReport;
use ppstap::radar::{Clutter, Jammer, Scene, Target};

struct Truth {
    name: &'static str,
    gate: usize,
}

fn score(report: &DetectionReport, truths: &[Truth]) {
    let clustered = report.cluster(4);
    print!(
        "CPI {}: {:>3} raw / {:>2} clustered detections | ",
        report.cpi,
        report.len(),
        clustered.len()
    );
    for t in truths {
        let hit = clustered
            .detections
            .iter()
            .filter(|d| d.range.abs_diff(t.gate) <= 3)
            .map(|d| d.snr_db)
            .fold(f64::NEG_INFINITY, f64::max);
        if hit.is_finite() {
            print!("{}: HIT ({:>5.1} dB)  ", t.name, hit);
        } else {
            print!("{}: miss          ", t.name);
        }
    }
    let false_alarms = clustered
        .detections
        .iter()
        .filter(|d| truths.iter().all(|t| d.range.abs_diff(t.gate) > 3))
        .count();
    println!("| {false_alarms} false alarms");
}

fn main() {
    let scene = Scene {
        targets: vec![
            // An easy-bin target, well away from the clutter ridge.
            Target { range_gate: 40, doppler: 0.28, spatial_freq: 0.12, snr_db: 12.0 },
            // A hard-bin target inside the clutter notch: only the
            // two-stagger adaptive processing can dig it out.
            Target { range_gate: 90, doppler: 0.03, spatial_freq: -0.18, snr_db: 16.0 },
        ],
        jammers: vec![Jammer { spatial_freq: 0.35, jnr_db: 30.0 }],
        clutter: Some(Clutter { cnr_db: 30.0, slope: 1.0, patches: 24, jitter: 0.0 }),
        noise_power: 1.0,
    };
    println!("scene: 2 targets, 30 dB jammer, 30 dB clutter ridge\n");

    let config = StapConfig { scene, cpis: 8, warmup: 2, ..StapConfig::default() };
    let system = StapSystem::prepare(config).expect("prepare");
    let out = system.run().expect("run");

    let truths = [Truth { name: "easy target", gate: 40 }, Truth { name: "hard target", gate: 90 }];
    for report in &out.reports {
        score(report, &truths);
    }
    println!(
        "\n(CPI 0 uses non-adaptive cold-start weights; from CPI 1 on, weights are\n\
         trained on the previous CPI — the paper's temporal data dependency.)"
    );
    println!("\nthroughput {:.2} CPIs/s, latency {:.4} s", out.throughput(), out.latency());
}
