//! Drive the configuration planner across the paper's node cases and show
//! how the searched Pareto front relates to the hand-picked configurations:
//! the combined PC+CFAR tail is always on the front, the separate-I/O
//! design never is (its extra pipeline stage buys throughput headroom, not
//! latency), and at 100 nodes the sf=16 file system is dominated outright.
//!
//! ```text
//! cargo run --example plan_search --release
//! ```

use ppstap::model::machines::MachineModel;
use ppstap::planner::{plan, render_text, PlanOrigin, PlannerConfig};

fn main() {
    for nodes in [25usize, 50, 100] {
        println!("== Paragon (sf 16 and 64), {nodes} compute nodes ==\n");
        let cfg =
            PlannerConfig::new(vec![MachineModel::paragon(16), MachineModel::paragon(64)], nodes);
        let report = plan(&cfg);
        print!("{}", render_text(&report));

        let best = report.best_throughput().expect("non-empty front");
        let heuristic_best = report
            .plans
            .iter()
            .filter(|p| p.origin == PlanOrigin::Heuristic)
            .map(|p| p.analytic.throughput)
            .fold(0.0f64, f64::max);
        println!(
            "\nbest searched throughput {:.3} CPIs/s vs proportional heuristic {:.3} CPIs/s ({:+.1}%)\n",
            best.analytic.throughput,
            heuristic_best,
            (best.analytic.throughput / heuristic_best - 1.0) * 100.0,
        );
    }

    println!("== IBM SP (sync I/O), 50 compute nodes ==\n");
    let report = plan(&PlannerConfig::new(vec![MachineModel::sp()], 50));
    print!("{}", render_text(&report));
}
