//! Inspect what the adaptive weights actually learned: the adapted spatial
//! beam pattern, the jammer null, and the SINR improvement factor.
//!
//! ```text
//! cargo run --example adapted_pattern --release
//! ```

use ppstap::kernels::covariance::{estimate_covariance, TrainingConfig};
use ppstap::kernels::diagnostics::{improvement_factor_db, null_depth_db, spatial_pattern};
use ppstap::kernels::doppler::{DopplerConfig, DopplerFilter};
use ppstap::kernels::weights::{BeamSet, WeightComputer};
use ppstap::math::C64;
use ppstap::radar::{CubeGenerator, Jammer, Scene};
use stap_kernels::cube::CubeDims;

fn main() {
    // A jammer at spatial frequency +0.3, no targets: the weights' only job
    // is to null it while keeping gain at broadside.
    let jam_fs = 0.3;
    let scene = Scene {
        jammers: vec![Jammer { spatial_freq: jam_fs, jnr_db: 35.0 }],
        noise_power: 1.0,
        ..Default::default()
    };
    let dims = CubeDims::new(32, 16, 256);
    let mut gen = CubeGenerator::new(dims, scene, 8, 11);
    let cube = gen.next_cube();

    // Doppler filter, then train weights on one easy bin.
    let df = DopplerFilter::new(dims.pulses, DopplerConfig::default());
    let filtered = df.filter_easy(&cube);
    let wc = WeightComputer {
        beams: BeamSet { spatial_freqs: vec![0.0] },
        training: TrainingConfig { range_stride: 1, loading: 0.01 },
        stagger_offset: 1,
        method: Default::default(),
    };
    let bin = 8; // an easy bin away from zero Doppler
    let ws = wc.compute(&filtered, &[bin]).expect("weight solve");
    let w: Vec<C64> = ws.weights[0][0].iter().map(|z| z.cast()).collect();

    // Pattern plot.
    println!(
        "Adapted spatial pattern (bin {bin}, look direction fs=0.0, jammer at fs={jam_fs}):\n"
    );
    let pattern = spatial_pattern(&w, 61);
    let peak = pattern.iter().map(|&(_, p)| p).fold(0.0, f64::max);
    for &(fs, p) in &pattern {
        let db = 10.0 * (p / peak).log10();
        let cols = ((db + 60.0).max(0.0)).round() as usize;
        let marker = if (fs - jam_fs).abs() < 0.009 {
            " <-- jammer"
        } else if fs.abs() < 0.009 {
            " <-- look direction"
        } else {
            ""
        };
        println!("{fs:>6.2}  {db:>7.1} dB |{}{marker}", "#".repeat(cols));
    }

    // Quantitative summary.
    let r = estimate_covariance(&filtered, bin, TrainingConfig { range_stride: 1, loading: 0.01 });
    println!("\nnull depth at the jammer : {:>7.1} dB", null_depth_db(&w, jam_fs));
    println!(
        "SINR improvement factor  : {:>7.1} dB over the conventional beamformer",
        improvement_factor_db(&w, &wc.beams, 0, &r).expect("sinr")
    );
}
