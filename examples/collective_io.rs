//! Two-phase collective I/O — the strided-access optimization the paper's
//! authors went on to build (MTIO/ROMIO lineage), demonstrated on this
//! repository's striped file system.
//!
//! ```text
//! cargo run --example collective_io --release
//! ```
//!
//! Scenario: the CPI cube is stored *pulse-major* (as a radar that writes
//! pulse-by-pulse would), but each Doppler node wants a contiguous block of
//! range gates — a strided access pattern with one small request per
//! (pulse, channel). Independent reads flood the stripe servers; two-phase
//! reads are contiguous, then permute in memory.

use ppstap::pfs::collective::{independent_read, modeled_costs, two_phase_read, ClientRequests};
use ppstap::pfs::{FsConfig, OpenMode, Pfs};

fn main() {
    // Geometry: 128 pulses × 32 channels × 512 ranges, 8 bytes/sample,
    // pulse-major on disk. 8 reader nodes each want 1/8 of the range axis.
    let (pulses, channels, ranges) = (128usize, 32usize, 512usize);
    let elem = 8usize;
    let readers = 8usize;
    let gates_per_reader = ranges / readers;

    let cfg = FsConfig::paragon_pfs(16);
    let fs = Pfs::mount(cfg.clone());
    let f = fs.gopen("cpi_pulse_major.dat", OpenMode::Async);
    let cube_bytes: Vec<u8> =
        (0..pulses * channels * ranges * elem).map(|i| (i % 251) as u8).collect();
    f.write_at(0, &cube_bytes).expect("staging write");

    // Each reader's extents: for every (pulse, channel), its slice of the
    // range axis — pulses·channels small strided requests each.
    let reqs: Vec<ClientRequests> = (0..readers)
        .map(|k| ClientRequests {
            extents: (0..pulses * channels)
                .map(|pc| {
                    let row = pc * ranges * elem;
                    ((row + k * gates_per_reader * elem) as u64, gates_per_reader * elem)
                })
                .collect(),
        })
        .collect();
    println!(
        "access pattern: {} readers x {} requests of {} bytes each",
        readers,
        reqs[0].extents.len(),
        gates_per_reader * elem
    );

    // Functional equivalence.
    let a = independent_read(&f, &reqs).expect("independent");
    let b = two_phase_read(&f, &reqs).expect("two-phase");
    assert_eq!(a, b);
    println!("functional check : two-phase returns byte-identical data\n");

    // Modeled completion times on the Paragon PFS.
    let (naive, two_phase) = modeled_costs(&cfg, &reqs, OpenMode::Async);
    println!("modeled I/O time (Paragon PFS sf=16):");
    println!("  independent reads : {naive:>8.3} s");
    println!("  two-phase reads   : {two_phase:>8.3} s   ({:.1}x faster)", naive / two_phase);
    println!(
        "\n(The win comes from request count: {} strided requests vs {} contiguous\n\
         domain sweeps; per-request seek latency dominates small transfers.)",
        readers * reqs[0].extents.len(),
        readers
    );
}
